"""Bench: regenerate Figure 11 — simplified-model performance curves."""

from repro.experiments import run_experiment

PAPER_ARGMIN = {"6h": 3.0, "12h": 2.5, "18h": 2.0, "24h": 2.0, "30h": 2.0}


def test_bench_fig11(once):
    result = once(run_experiment, "fig11")
    print("\n" + result.render())
    minima = result.findings["argmin_degree_per_mtbf"]
    # Same shape as the paper's model: high degrees win at low MTBF,
    # 2x wins from 18h upward.
    assert minima["6h"] >= 2.5
    for key in ("18h", "24h", "30h"):
        assert minima[key] == PAPER_ARGMIN[key]
    # Magnitudes: the 6h/1x cell is within 2x of the paper's 275 min
    # measurement (the model predicted ~220).
    six_hour_r1 = float(result.rows[0][1])
    assert 140 <= six_hour_r1 <= 550
