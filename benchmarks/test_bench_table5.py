"""Bench: regenerate Table 5 / Figure 10 — failure-free overhead vs r."""

from repro.experiments import run_experiment


def test_bench_table5(once):
    result = once(run_experiment, "table5")
    print("\n" + result.render())
    observed = [float(x) for x in result.rows[0][1:]]
    expected = [float(x) for x in result.rows[1][1:]]

    # Observation (4): the observed overhead is super-linear, with the
    # first step (1x -> 1.25x) the largest relative jump.
    assert result.findings["first_step_is_largest"]
    assert result.findings["observed_super_linear_somewhere"]

    # Observed times are monotone non-decreasing in r.
    assert all(a <= b + 1e-9 for a, b in zip(observed, observed[1:]))

    # The paper's 1.25x jump was ~19.6%; ours must be the same scale.
    assert 0.05 <= result.findings["first_step_relative_jump"] <= 0.40

    # Expected-linear row is exactly Eq. 1 with alpha=0.2:
    # t_Red(3x) / t = (1 - 0.2) + 0.2 * 3 = 1.4.
    assert abs(expected[-1] / expected[0] - 1.4) < 0.01
