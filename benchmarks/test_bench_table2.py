"""Bench: regenerate Table 2 (168 h job breakdown vs node count)."""

from repro.experiments import run_experiment

PAPER_WORK_SHARES = {100: 96, 1_000: 92, 10_000: 75, 100_000: 35}


def test_bench_table2(once):
    result = once(run_experiment, "table2")
    print("\n" + result.render())
    assert result.findings["work_share_monotone_decreasing"]
    for row in result.rows:
        nodes = row[0]
        ours = float(row[1].rstrip("%"))
        paper = PAPER_WORK_SHARES[nodes]
        # Shape criterion: within 10 percentage points of the paper.
        assert abs(ours - paper) <= 10.0, (nodes, ours, paper)
