"""Bench: regenerate Figure 14 — scaling to 200k and the throughput case."""

from repro.experiments import run_experiment


def test_bench_fig14(once):
    result = once(run_experiment, "fig14")
    print("\n" + result.render())
    break_even = result.findings["two_2x_jobs_fit_in_one_1x_job_at"]
    takeover = result.findings["3x_beats_2x_beyond"]
    # Paper: break-even at 78,536; 3x cheapest beyond 771,251.
    assert 20_000 <= break_even <= 300_000
    assert 200_000 <= takeover <= 3_000_000
    # 1x blows up within the plotted range (paper: "exponential
    # increases ... after ~80,000 nodes").
    blowup = result.findings["1x_blowup_processes"]
    assert blowup is not None and blowup <= 200_000
