"""Bench: regenerate Figures 4-6 (modeled T_total vs r, three configs)."""

from repro.experiments import run_experiment


def test_bench_figs4to6(once):
    result = once(run_experiment, "figs4to6")
    print("\n" + result.render())
    # Paper: "a redundancy level of 2 is the best choice in all cases".
    for name in ("config1", "config2", "config3"):
        assert result.findings[f"{name}/r_at_min"] == 2.0
    # Daly interval scales like sqrt(c): config1 vs config3 is ~sqrt(10).
    assert 2.0 < result.findings["delta_ratio_config1_over_config3"] < 3.5
    # Cheaper checkpoints (config3) shrink the r=1 penalty.
    assert (
        result.findings["config3/T_r1_hours"]
        < result.findings["config1/T_r1_hours"]
    )
