"""Bench: regenerate Figure 12 — observed (simulation) vs modeled."""

from repro.experiments import run_experiment


def test_bench_fig12(once):
    result = once(run_experiment, "fig12")
    print("\n" + result.render())
    # The paper's verdict: trends similar, Q-Q close to the diagonal.
    assert result.findings["pearson_correlation"] > 0.7
    assert result.findings["mean_abs_pct_error"] < 0.6
    assert result.findings["qq_worst_quantile_ratio"] < 3.0
