"""Bench: observability overhead — tracing must be (near) free.

Two timings of the same small failure-prone campaign sweep:

* tracing **off** (the default ``NULL_TRACER`` path) — this is the
  production hot path, and the run must be bit-identical to a traced
  one (the acceptance box from the observability issue);
* tracing **on** (JSONL part files per job, merged at the end) — the
  overhead is printed and must stay within a loose envelope (traced
  <= 2x untraced wall-clock; in practice it is a few percent, but CI
  boxes are noisy and the envelope only guards against accidental
  hot-path work when tracing is off... which the bit-identity check
  catches first anyway).

``REPRO_BENCH_QUICK=1`` shrinks the sweep.
"""

import dataclasses
import os
import time
from functools import partial

from repro.obs import ObsSession, report_from_file
from repro.orchestration import JobConfig, run_redundancy_sweep
from repro.workloads import SyntheticWorkload

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

MTBFS = (2.0, 6.0)
DEGREES = (1.0, 2.0) if QUICK else (1.0, 1.5, 2.0)


def base_config(trace_dir=None):
    return JobConfig(
        workload_factory=partial(
            SyntheticWorkload,
            total_steps=30 if QUICK else 60,
            compute_seconds=0.02,
            message_bytes=2048,
        ),
        virtual_processes=4,
        checkpoint_interval=0.3,
        checkpoint_cost=0.03,
        restart_cost=0.15,
        seed=11,
        trace_dir=trace_dir,
    )


def signatures(cells):
    def fields(report):
        out = dataclasses.asdict(report)
        out.pop("checkpoint_union_time")  # only populated when traced
        return out

    return [fields(cell.report) for cell in cells]


def test_bench_tracing_overhead(once, tmp_path):
    untraced = once(run_redundancy_sweep, base_config(), MTBFS, DEGREES)
    start = time.perf_counter()
    untraced_again = run_redundancy_sweep(base_config(), MTBFS, DEGREES)
    untraced_seconds = time.perf_counter() - start

    trace_path = str(tmp_path / "bench.jsonl")
    obs = ObsSession(trace_path=trace_path)
    obs.stamp("bench-obs", base_seed=11)
    start = time.perf_counter()
    traced = run_redundancy_sweep(
        base_config(trace_dir=obs.parts_dir),
        MTBFS,
        DEGREES,
        tracer=obs.tracer,
    )
    records = obs.finalize(cells=len(traced))
    traced_seconds = time.perf_counter() - start

    overhead = (
        traced_seconds / untraced_seconds - 1.0 if untraced_seconds > 0 else 0.0
    )
    print(
        f"\ntracing overhead over {len(MTBFS) * len(DEGREES)} cells: "
        f"off {untraced_seconds * 1e3:.1f}ms, on {traced_seconds * 1e3:.1f}ms "
        f"({overhead:+.1%}, {records} records)"
    )

    # Tracing must observe, not perturb: identical simulation results.
    assert signatures(untraced) == signatures(traced)
    assert signatures(untraced) == signatures(untraced_again)

    # The trace is complete and internally consistent.
    report = report_from_file(trace_path)
    assert report.ok
    assert len(report.jobs) == len(traced)

    # Loose wall-clock envelope (see module docstring).
    assert traced_seconds <= 2.0 * untraced_seconds + 0.25
