"""Bench: regenerate Table 3 (100k nodes, varied job length / MTBF)."""

from repro.experiments import run_experiment


def test_bench_table3(once):
    result = once(run_experiment, "table3")
    print("\n" + result.render())
    # The 5 y row keeps a meaningful work share; the 1 y row collapses.
    assert 0.25 <= result.findings["five_year_mtbf_work_share"] <= 0.45
    assert result.findings["one_year_mtbf_work_share"] < 0.10
