"""Bench: the performance layer — parallel campaigns, vectorized model.

Records the two headline speedups of the perf work:

* serial vs process-pool execution of the quick Table 4 campaign grid
  (with a bit-identical-results assertion — parallelism must not change
  a single cell);
* scalar ``CombinedModel.evaluate()`` loop vs the vectorized
  ``models.grid`` fast path over a Fig. 13/14-style (degree x count)
  grid (with a 1e-9 relative-error equivalence assertion);
* cold vs memoized ``find_crossover`` search.

Speedup assertions are gated on the host's core count: a ``>= 2x``
parallel speedup is only demanded when at least 4 cores are available
(the acceptance box); timings are always printed.

``REPRO_BENCH_QUICK=1`` shrinks the simulated campaign.
"""

import math
import os
import time

import numpy as np

from repro.experiments.table4 import ScaledSetup
from repro.models import CombinedModel, clear_model_cache, find_crossover
from repro.models.grid import total_time_grid
from repro.orchestration import run_redundancy_sweep
from repro import units

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
CORES = os.cpu_count() or 1
PARALLEL_WORKERS = 4

#: The acceptance grid: quick Table 4 (3 MTBFs x 5 degrees).
MTBF_HOURS = (6.0, 18.0, 30.0)
DEGREES = (1.0, 1.5, 2.0, 2.5, 3.0)


def campaign_inputs():
    setup = ScaledSetup(steps=30 if QUICK else 100)
    base = setup.job_config()
    mtbfs = [setup.mtbf_to_sim(h) for h in MTBF_HOURS]
    return base, mtbfs


def cell_signature(cell):
    report = cell.report
    return (
        cell.node_mtbf,
        cell.redundancy,
        report.completed,
        report.total_time,
        report.attempts,
        report.failures_injected,
        report.rollbacks,
        report.checkpoints_committed,
        tuple(sorted(report.counters.items())),
    )


def test_bench_parallel_campaign(once):
    base, mtbfs = campaign_inputs()

    start = time.perf_counter()
    serial = run_redundancy_sweep(base, mtbfs, DEGREES, workers=1)
    serial_seconds = time.perf_counter() - start

    parallel = once(
        run_redundancy_sweep, base, mtbfs, DEGREES, workers=PARALLEL_WORKERS
    )
    start = time.perf_counter()
    # Timed again outside pytest-benchmark so both legs use one clock.
    parallel_again = run_redundancy_sweep(
        base, mtbfs, DEGREES, workers=PARALLEL_WORKERS
    )
    parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else math.inf
    print(
        f"\ncampaign grid {len(mtbfs)}x{len(DEGREES)}: "
        f"serial {serial_seconds:.2f}s, "
        f"workers={PARALLEL_WORKERS} {parallel_seconds:.2f}s, "
        f"speedup {speedup:.2f}x on {CORES} cores"
    )

    # Parallelism must not change a single cell, bit for bit.
    assert [cell_signature(c) for c in serial] == [
        cell_signature(c) for c in parallel
    ]
    assert [cell_signature(c) for c in serial] == [
        cell_signature(c) for c in parallel_again
    ]
    # The acceptance criterion only binds on a >= 4-core box.
    if CORES >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x parallel speedup on {CORES} cores, got {speedup:.2f}x"
        )


def model_grid_inputs():
    model = CombinedModel(
        virtual_processes=1000,
        redundancy=1.0,
        node_mtbf=units.years(5),
        alpha=0.2,
        base_time=units.hours(128),
        checkpoint_cost=units.minutes(8),
        restart_cost=units.minutes(12),
    )
    counts = np.unique(
        np.round(np.logspace(0.5, 6, 400)).astype(int)
    )
    degrees = np.asarray((1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0))
    return model, counts, degrees


def test_bench_vectorized_model(once):
    model, counts, degrees = model_grid_inputs()

    start = time.perf_counter()
    scalar = np.array(
        [
            [
                model.with_processes(int(n)).with_redundancy(float(r)).total_time_or_inf()
                for n in counts
            ]
            for r in degrees
        ]
    )
    scalar_seconds = time.perf_counter() - start

    vectorized = once(
        total_time_grid, model, processes=counts.astype(float),
        redundancy=degrees[:, None],
    )
    start = time.perf_counter()
    vectorized_again = total_time_grid(
        model, processes=counts.astype(float), redundancy=degrees[:, None]
    )
    vectorized_seconds = time.perf_counter() - start

    cells = scalar.size
    speedup = (
        scalar_seconds / vectorized_seconds if vectorized_seconds > 0 else math.inf
    )
    print(
        f"\nmodel grid {len(degrees)}x{len(counts)} ({cells} cells): "
        f"scalar {scalar_seconds * 1e3:.1f}ms, "
        f"vectorized {vectorized_seconds * 1e3:.2f}ms, speedup {speedup:.0f}x"
    )

    # Equivalence: inf matches inf, finite cells within 1e-9 relative.
    assert np.array_equal(np.isinf(scalar), np.isinf(vectorized))
    finite = np.isfinite(scalar)
    relative = np.abs(vectorized[finite] - scalar[finite]) / np.abs(scalar[finite])
    assert relative.max() < 1e-9
    assert np.array_equal(np.isinf(vectorized), np.isinf(vectorized_again))
    # The fast path must actually be faster.
    assert speedup > 1.0


def test_bench_crossover_cache(once):
    model, _, _ = model_grid_inputs()

    clear_model_cache()
    start = time.perf_counter()
    cold = find_crossover(model, 1.0, 2.0)
    cold_seconds = time.perf_counter() - start

    warm_result = once(find_crossover, model, 1.0, 2.0)
    start = time.perf_counter()
    warm = find_crossover(model, 1.0, 2.0)
    warm_seconds = time.perf_counter() - start

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else math.inf
    print(
        f"\nfind_crossover(1x->2x): cold {cold_seconds * 1e3:.1f}ms, "
        f"memoized {warm_seconds * 1e3:.2f}ms, speedup {speedup:.0f}x"
    )
    assert cold.processes == warm.processes == warm_result.processes
    assert warm_seconds <= cold_seconds
