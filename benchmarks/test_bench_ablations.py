"""Ablation benches for the design decisions DESIGN.md calls out.

Each ablation flips one modeling/implementation choice and quantifies
its effect — the numbers print alongside the main tables so the
trade-offs are visible in every benchmark run.
"""

import math

import pytest

from repro import units
from repro.models import CombinedModel, optimal_interval
from repro.models.simplified import simplified_total_time
from repro.orchestration import JobConfig, ResilientJob
from repro.redundancy import ALL_TO_ALL, MSG_PLUS_HASH
from repro.util import render_table
from repro.workloads import SyntheticWorkload


def paper_model(**overrides):
    params = dict(
        virtual_processes=50_000,
        redundancy=2.0,
        node_mtbf=units.years(5),
        alpha=0.2,
        base_time=units.hours(128),
        checkpoint_cost=units.minutes(8),
        restart_cost=units.minutes(12),
    )
    params.update(overrides)
    return CombinedModel(**params)


def synthetic_job(**overrides):
    params = dict(
        workload_factory=lambda: SyntheticWorkload(
            total_steps=60, compute_seconds=0.04, message_bytes=32 * 1024
        ),
        virtual_processes=8,
        redundancy=2.0,
        node_mtbf=6.0,
        checkpoint_interval=0.4,
        checkpoint_cost=0.05,
        restart_cost=0.25,
        network_bandwidth=5e7,
        seed=21,
    )
    params.update(overrides)
    return JobConfig(**params)


def test_bench_ablation_cr_window(once):
    """Failures during C/R: full Eq. 14 model vs the experiment-matched
    simplified model, and suppression on/off in the simulator."""

    def run():
        full = paper_model(redundancy=1.0).evaluate().total_time
        simplified = simplified_total_time(
            virtual_processes=50_000, redundancy=1.0,
            node_mtbf=units.years(5), alpha=0.2,
            base_time=units.hours(128),
            checkpoint_cost=units.minutes(8), restart_cost=units.minutes(12),
        )
        sim_on = ResilientJob(synthetic_job(suppress_failures_during_cr=True)).run()
        sim_off = ResilientJob(synthetic_job(suppress_failures_during_cr=False)).run()
        return full, simplified, sim_on, sim_off

    full, simplified, sim_on, sim_off = once(run)
    print("\n" + render_table(
        ["variant", "value"],
        [
            ["Eq.14 model (failures anytime) [h]", units.to_hours(full)],
            ["simplified model (CR windows safe) [h]", units.to_hours(simplified)],
            ["simulation, suppression ON [s]", sim_on.total_time],
            ["simulation, suppression OFF [s]", sim_off.total_time],
            ["failures ON/OFF", f"{sim_on.failures_injected}/{sim_off.failures_injected}"],
        ],
        title="Ablation: failures during checkpoint/restart windows",
    ))
    # Allowing failures inside C/R can only raise the expected time.
    assert full >= simplified * 0.95
    assert sim_on.completed and sim_off.completed
    assert sim_off.failures_injected >= sim_on.failures_injected


def test_bench_ablation_interval_rule(once):
    """Daly (Eq. 15) vs Young vs the numeric optimum of Eq. 14."""

    def run():
        daly_result = paper_model().evaluate()
        young_result = paper_model(interval_rule="young").evaluate()
        numeric_delta = optimal_interval(paper_model())
        numeric_result = paper_model(checkpoint_interval=numeric_delta).evaluate()
        return daly_result, young_result, numeric_result

    daly_result, young_result, numeric_result = once(run)
    rows = [
        ["daly", units.to_minutes(daly_result.checkpoint_interval),
         units.to_hours(daly_result.total_time)],
        ["young", units.to_minutes(young_result.checkpoint_interval),
         units.to_hours(young_result.total_time)],
        ["numeric optimum", units.to_minutes(numeric_result.checkpoint_interval),
         units.to_hours(numeric_result.total_time)],
    ]
    print("\n" + render_table(
        ["rule", "delta [min]", "T_total [h]"],
        rows, title="Ablation: checkpoint interval rule",
    ))
    # Daly within 0.1% of the numeric optimum; Young no better than Daly.
    assert daly_result.total_time <= numeric_result.total_time * 1.001
    assert young_result.total_time >= numeric_result.total_time * 0.999


def test_bench_ablation_linearisation(once):
    """The paper's t/theta linearisation vs the exact exponential CDF."""

    def run():
        rows = []
        for years in (5.0, 1.0, 0.2):
            linear = paper_model(node_mtbf=units.years(years))
            exact = paper_model(node_mtbf=units.years(years), exact_reliability=True)
            rows.append(
                [
                    years,
                    units.to_hours(linear.total_time_or_inf()),
                    units.to_hours(exact.total_time_or_inf()),
                ]
            )
        return rows

    rows = once(run)
    print("\n" + render_table(
        ["node MTBF [y]", "linearised T [h]", "exact T [h]"],
        rows, title="Ablation: Eq. 3 linearisation error",
    ))
    # Negligible at 5 y, growing as MTBF shrinks; linearisation is
    # pessimistic (1 - e^-x <= x) so it never underestimates.
    assert rows[0][1] == pytest.approx(rows[0][2], rel=0.01)
    error_good = abs(rows[0][1] - rows[0][2]) / rows[0][2]
    error_bad = abs(rows[2][1] - rows[2][2]) / rows[2][2]
    assert error_bad > error_good
    assert all(linear >= exact * 0.999 for _, linear, exact in rows)


def test_bench_ablation_voting_mode(once):
    """All-to-all vs Msg-PlusHash: traffic volume at equal correctness."""

    def run():
        reports = {}
        for mode in (ALL_TO_ALL, MSG_PLUS_HASH):
            reports[mode] = ResilientJob(
                synthetic_job(mode=mode, node_mtbf=None, checkpointing=False,
                              redundancy=3.0)
            ).run()
        return reports

    reports = once(run)
    rows = [
        [mode, report.counters["p2p_messages"],
         report.counters["p2p_bytes"] / 1e6, report.total_time]
        for mode, report in reports.items()
    ]
    print("\n" + render_table(
        ["mode", "messages", "MB moved", "T [s]"],
        rows, title="Ablation: redundancy voting mode (r=3, failure-free)",
    ))
    full = reports[ALL_TO_ALL]
    hashed = reports[MSG_PLUS_HASH]
    assert full.result == hashed.result  # same answer
    assert hashed.counters["p2p_bytes"] < full.counters["p2p_bytes"] * 0.6
    assert hashed.total_time <= full.total_time


def test_bench_ablation_coordination(once):
    """Bookmark all-to-all exchange on/off: coordination message cost."""

    def run():
        plain = ResilientJob(synthetic_job(bookmark_exchange=False)).run()
        bookmarks = ResilientJob(synthetic_job(bookmark_exchange=True)).run()
        return plain, bookmarks

    plain, bookmarks = once(run)
    print("\n" + render_table(
        ["variant", "messages", "T [s]"],
        [
            ["quiesce only", plain.counters["p2p_messages"], plain.total_time],
            ["bookmark exchange", bookmarks.counters["p2p_messages"],
             bookmarks.total_time],
        ],
        title="Ablation: checkpoint coordination protocol",
    ))
    assert plain.completed and bookmarks.completed
    assert bookmarks.counters["p2p_messages"] > plain.counters["p2p_messages"]


def test_bench_ablation_placement(once):
    """Paper placement (one rank per node) vs doubled-up (Ferreira)."""
    from repro.cluster import Machine, packed_placement, spread_placement
    from repro.mpi import SimMPI, ops
    from repro.simkit import Environment

    def run_placement(policy):
        env = Environment()
        machine = Machine(node_count=16, cores_per_node=8)
        placement = policy(machine, 16)
        world = SimMPI(env, size=16, machine=machine, placement=placement)

        def program(ctx):
            for _ in range(30):
                yield from ctx.comm.allreduce(ctx.rank, ops.SUM)

        world.spawn(program)
        world.run()
        return env.now

    def run():
        return run_placement(spread_placement), run_placement(packed_placement)

    spread_time, packed_time = once(run)
    print("\n" + render_table(
        ["placement", "T [s]"],
        [["spread (paper, 1 rank/node)", spread_time],
         ["packed (doubled-up)", packed_time]],
        title="Ablation: rank placement",
    ))
    # Packed placement benefits from shared-memory loopback transport.
    assert packed_time < spread_time


def test_bench_ablation_failure_distribution(once):
    """Poisson assumption vs Weibull/lognormal field-realistic arrivals.

    The paper's model assumes exponential interarrivals (assumption 3);
    Schroeder & Gibson's field data fits Weibull with shape < 1 better.
    Same mean MTBF, different burstiness — this ablation measures how
    much the distribution shape moves the completion time.
    """

    def run():
        reports = {}
        for distribution in ("exponential", "weibull", "lognormal"):
            reports[distribution] = ResilientJob(
                synthetic_job(failure_distribution=distribution)
            ).run()
        return reports

    reports = once(run)
    rows = [
        [name, report.total_time, report.failures_injected, report.rollbacks]
        for name, report in reports.items()
    ]
    print("\n" + render_table(
        ["distribution", "T [s]", "failures", "rollbacks"],
        rows, title="Ablation: failure interarrival distribution (same mean)",
    ))
    assert all(report.completed for report in reports.values())
    # Same mean rate: failure counts land in the same band.
    counts = [report.failures_injected for report in reports.values()]
    assert max(counts) <= 4 * max(1, min(counts))


def test_bench_ablation_incremental_checkpointing(once):
    """Full images vs incremental deltas vs compression: bytes written."""
    import numpy as np

    from repro.checkpoint import capture_image
    from repro.checkpoint.incremental import IncrementalCheckpointer, compress_image

    def run():
        rng = np.random.default_rng(0)
        # Page-granular state: dirty tracking works per key, mirroring
        # the MMU dirty-bit granularity of real incremental checkpointers.
        pages = {f"page{i}": rng.random(500) for i in range(100)}
        inc = IncrementalCheckpointer(full_every=8)
        full_bytes = delta_bytes = compressed_bytes = 0
        for step in range(8):
            pages[f"page{step}"] = pages[f"page{step}"] + 1.0
            state = dict(pages, step=step)
            image = capture_image(state)
            full_bytes += image.nbytes
            delta_bytes += inc.capture(state).nbytes
            compressed, _cost = compress_image(image.data)
            compressed_bytes += len(compressed)
        restored = inc.restore()
        assert np.array_equal(restored["page3"], pages["page3"])
        return full_bytes, delta_bytes, compressed_bytes

    full_bytes, delta_bytes, compressed_bytes = once(run)
    print("\n" + render_table(
        ["strategy", "bytes written"],
        [["full images", full_bytes],
         ["incremental", delta_bytes],
         ["compressed full", compressed_bytes]],
        title="Ablation: checkpoint size optimisations (8 checkpoints)",
    ))
    assert delta_bytes < full_bytes
