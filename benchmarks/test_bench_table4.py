"""Bench: regenerate Table 4 / Figures 8-9 — the simulation campaign.

This is the repository's flagship benchmark: the full (MTBF x degree)
grid of fault-injected, checkpointed, redundant simulation runs, with
execution times reported in paper-minute equivalents next to the
paper's own Table 4 values.

The full 5x9 grid takes a few minutes of wallclock; set
``REPRO_BENCH_QUICK=1`` to run the 3x5 sub-grid instead.
"""

import os

from repro.experiments import run_experiment
from repro.experiments.table4 import PAPER_MTBF_HOURS

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
MTBFS = (6.0, 18.0, 30.0) if QUICK else PAPER_MTBF_HOURS
DEGREES = (1.0, 1.5, 2.0, 2.5, 3.0) if QUICK else None


def test_bench_table4(once):
    kwargs = {"mtbf_hours": MTBFS}
    if DEGREES is not None:
        kwargs["degrees"] = DEGREES
    result = once(run_experiment, "table4", **kwargs)
    print("\n" + result.render())
    minima = result.findings["argmin_degree_per_mtbf"]

    # Observation (1): low MTBF favours high redundancy degrees.
    assert minima["6h"] >= 2.0
    # Observation (2): high MTBF rows are best at (or near) 2x; extra
    # redundancy buys nothing once failures are rare.
    assert 2.0 <= minima["30h"] <= 3.0

    # 1x is never the winner anywhere on this grid (Fig. 8's gap).
    assert all(best > 1.0 for best in minima.values())

    # Row-wise: 1x is (close to) the worst choice at the lowest MTBF.
    first_row = [float(cell) for cell in result.rows[0][1:]]
    assert first_row[0] >= max(first_row) * 0.8
