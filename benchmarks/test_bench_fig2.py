"""Bench: regenerate Figure 2 (system reliability vs redundancy)."""

from repro.experiments import run_experiment


def test_bench_fig2(once):
    result = once(run_experiment, "fig2")
    print("\n" + result.render())
    assert result.findings["monotone_at_integer_degrees"]
    assert result.findings["lower_mtbf_needs_more_redundancy"]
    # Dual redundancy lifts survival from ~1e-127 to a usable fraction.
    assert result.findings["r2_reliability_theta5"] > 0.1
