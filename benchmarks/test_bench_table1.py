"""Bench: regenerate Table 1 (cluster reliability + implied node MTBF)."""

from repro.experiments import run_experiment


def test_bench_table1(once):
    result = once(run_experiment, "table1")
    print("\n" + result.render())
    implied = [row[3] for row in result.rows]
    assert all(value > 0 for value in implied)
    # Acceptance: the literature systems imply node MTBFs in the
    # regime the paper's studies assume (years, not hours).
    assert sum(1 for value in implied if 1.0 <= value <= 40.0) >= 4
