"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact, prints the same rows
the paper reports (so ``pytest benchmarks/ --benchmark-only -s`` shows
the tables), and asserts the DESIGN.md shape criteria.  Simulation
campaigns are stochastic single runs, exactly like the paper's cells.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Experiments are deterministic given their seeds and often long;
    repeating them adds no statistical value, so every benchmark is a
    single timed round.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
