"""Bench: regenerate Figure 13 — weak scaling to 30k processes."""

from repro.experiments import run_experiment


def test_bench_fig13(once):
    result = once(run_experiment, "fig13")
    print("\n" + result.render())
    c2 = result.findings["crossover_1x_to_2x_processes"]
    c3 = result.findings["crossover_1x_to_3x_processes"]
    # Paper: 1x->2x @ 4,351 and 1x->3x @ 12,551: require same decades
    # and the same ordering.
    assert c2 < c3
    assert 1_000 <= c2 <= 20_000
    assert 5_000 <= c3 <= 50_000
    assert result.findings["partial_redundancy_never_optimal"]
