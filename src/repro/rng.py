"""Named, forkable deterministic random-number streams.

Every stochastic component of the simulator (failure injector, network
jitter, workload data generation) draws from its **own** named stream
derived from a single campaign seed.  This gives two properties the
experiments need:

* **Reproducibility** — a (seed, stream-name) pair always yields the
  same sequence, independent of how many draws other components made.
* **Variance isolation** — changing, say, the redundancy degree does not
  perturb the failure times injected for unrelated processes, so sweeps
  compare like with like (common random numbers).

Streams are ``numpy.random.Generator`` instances seeded via
``SeedSequence.spawn``-style keying on the stream name.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator

import numpy as np

from .errors import ConfigurationError


def _key_for(name: str) -> int:
    """Stable 32-bit key for a stream name (crc32 is version-stable)."""
    return zlib.crc32(name.encode("utf-8"))


class StreamRegistry:
    """Factory for named deterministic random streams.

    >>> reg = StreamRegistry(seed=42)
    >>> a = reg.stream("faults/node-0")
    >>> b = reg.stream("faults/node-1")
    >>> a is reg.stream("faults/node-0")
    True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise ConfigurationError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The campaign-level base seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence(entropy=self._seed, spawn_key=(_key_for(name),))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "StreamRegistry":
        """Derive an independent child registry (e.g. per simulated job).

        The child's streams do not overlap the parent's even for equal
        stream names.
        """
        child_seed = int(self.stream(f"__fork__/{name}").integers(0, 2**63 - 1))
        return StreamRegistry(seed=child_seed)

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))


def exponential_interarrivals(
    rng: np.random.Generator, mean: float, count: int
) -> np.ndarray:
    """Draw ``count`` exponential interarrival times with the given mean.

    This is the Poisson-process interarrival model the paper assumes for
    node failures (Section 4, assumption 3).
    """
    if mean <= 0:
        raise ConfigurationError(f"mean interarrival must be > 0, got {mean}")
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    return rng.exponential(scale=mean, size=count)
