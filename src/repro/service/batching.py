"""Micro-batching engine: coalesce concurrent evaluations into one grid.

Concurrent ``/evaluate`` requests arriving within a small window are
answered by a *single* vectorized
:func:`~repro.models.grid.evaluate_grid` call instead of one scalar
:meth:`~repro.models.combined.CombinedModel.evaluate` each — the
vectorized pipeline amortises its fixed cost over the batch, which is
what lets one process serve heavy traffic.

The collection rule is the classic N-or-T window: a batch closes when
it holds ``max_batch`` requests or ``max_wait`` seconds have passed
since its first request, whichever comes first.  A lone request
therefore waits at most ``max_wait`` and a burst is served at full
batch width.

Correctness contract — **batched answers are bit-identical to direct
scalar model calls**.  Two mechanisms guarantee it:

* the scalar and vectorized pipelines share one arithmetic substrate
  (numpy scalar ufuncs + ``integer_power``; see
  :mod:`repro.models.reliability`), and numpy's element-wise loops give
  the same last-ULP result for a batch of one and a batch of a
  thousand;
* requests are grouped by the non-numeric knobs (``interval_rule``,
  ``exact_reliability``, override presence) so every grid call is
  homogeneous in code path and only the numeric inputs vary.

Robustness: every request is domain-validated *before* it enters the
queue (:func:`validate_model`), so one bad request 400s alone instead
of poisoning its whole batch; the queue is bounded and overflowing
requests are shed immediately with
:class:`~repro.errors.ServiceOverloadedError` (the server's 429).
"""

from __future__ import annotations

import asyncio
import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import (
    ConfigurationError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from ..models.combined import CombinedModel
from ..models.grid import evaluate_grid

__all__ = ["MicroBatcher", "model_to_dict", "validate_model"]

#: Histogram bounds for batch sizes (requests per grid call).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)

_STOP = object()


def validate_model(model: CombinedModel) -> None:
    """Domain-check one request's model up front (mirrors the grid).

    ``CombinedModel`` itself validates only its structural fields;
    the numeric domains are enforced lazily by the evaluation pipeline.
    A batched service must check them *per request*: a single
    out-of-domain value would otherwise fail the whole grid call and
    take its batch-mates down with it.
    """
    if model.virtual_processes < 1:
        raise ConfigurationError("virtual_processes must be >= 1")
    if model.redundancy < 1.0:
        raise ConfigurationError("redundancy must be >= 1")
    if model.node_mtbf <= 0:
        raise ConfigurationError("node_mtbf must be > 0")
    if not 0.0 <= model.alpha <= 1.0:
        raise ConfigurationError("alpha must be in [0, 1]")
    if model.base_time < 0:
        raise ConfigurationError("base_time must be >= 0")
    if model.checkpoint_cost <= 0:
        raise ConfigurationError("checkpoint_cost must be > 0")
    if model.restart_cost < 0:
        raise ConfigurationError("restart_cost must be >= 0")


def model_to_dict(model: CombinedModel) -> Dict[str, Any]:
    """The request echo embedded in every evaluation answer."""
    return {
        "virtual_processes": model.virtual_processes,
        "redundancy": model.redundancy,
        "node_mtbf": model.node_mtbf,
        "alpha": model.alpha,
        "base_time": model.base_time,
        "checkpoint_cost": model.checkpoint_cost,
        "restart_cost": model.restart_cost,
        "interval_rule": model.interval_rule,
        "checkpoint_interval": model.checkpoint_interval,
        "exact_reliability": model.exact_reliability,
    }


class MicroBatcher:
    """N-or-T request coalescer in front of the vectorized model.

    Parameters
    ----------
    max_batch:
        Most requests folded into one grid call.
    max_wait:
        Seconds a batch's first request may wait for company.
    queue_limit:
        Bound on queued (admitted, not yet evaluated) requests; beyond
        it, :meth:`submit` sheds with ``ServiceOverloadedError``.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        the batch-size histogram, queue-depth gauge and shed/evaluation
        counters.
    """

    def __init__(
        self,
        max_batch: int = 64,
        max_wait: float = 0.002,
        queue_limit: int = 256,
        metrics=None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ConfigurationError(f"max_wait must be >= 0, got {max_wait}")
        if queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.queue_limit = int(queue_limit)
        self.metrics = metrics
        self._queue: Optional[asyncio.Queue] = None
        self._task: Optional[asyncio.Task] = None
        self._closed = False
        #: Totals over the batcher's lifetime.
        self.batches = 0
        self.evaluations = 0
        self.shed = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Create the queue and the collector task (idempotent)."""
        if self._task is not None:
            return
        self._closed = False
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._task = asyncio.create_task(self._run(), name="micro-batcher")

    async def stop(self) -> None:
        """Drain: admitted requests are answered, then the task exits."""
        self._closed = True
        if self._task is None:
            return
        # The sentinel lands behind every admitted request, so the
        # collector answers everything in flight before it sees it.
        await self._queue.put(_STOP)
        await self._task
        self._task = None

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet evaluated."""
        return self._queue.qsize() if self._queue is not None else 0

    # -- request path --------------------------------------------------------

    async def submit(self, model: CombinedModel) -> Dict[str, Any]:
        """Admit one request; resolves with its evaluation answer.

        Raises ``ServiceClosedError`` when draining/stopped and
        ``ServiceOverloadedError`` when the bounded queue is full.
        """
        if self._closed or self._queue is None:
            raise ServiceClosedError("service is draining; no new requests")
        validate_model(model)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((model, future))
        except asyncio.QueueFull:
            self.shed += 1
            if self.metrics is not None:
                self.metrics.counter("serve.shed").inc()
            raise ServiceOverloadedError(
                f"request queue full ({self.queue_limit}); retry later"
            ) from None
        if self.metrics is not None:
            self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
        return await future

    # -- collector -----------------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _STOP:
                return
            batch: List[Tuple[CombinedModel, asyncio.Future]] = [first]
            deadline = loop.time() + self.max_wait
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if item is _STOP:
                    stop = True
                    break
                batch.append(item)
            self._execute(batch)
            if self.metrics is not None:
                self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
            if stop:
                return

    def _execute(
        self, batch: List[Tuple[CombinedModel, asyncio.Future]]
    ) -> None:
        """One coalesced round: group, grid-evaluate, resolve futures."""
        self.batches += 1
        self.evaluations += len(batch)
        if self.metrics is not None:
            self.metrics.histogram(
                "serve.batch_size", buckets=BATCH_SIZE_BUCKETS
            ).observe(len(batch))
            self.metrics.counter("serve.batches").inc()
            self.metrics.counter("serve.evaluations").inc(len(batch))
        groups: Dict[Tuple[str, bool, bool], List[Tuple[CombinedModel, asyncio.Future]]] = {}
        for model, future in batch:
            key = (
                model.interval_rule,
                model.exact_reliability,
                model.checkpoint_interval is not None,
            )
            groups.setdefault(key, []).append((model, future))
        for (rule, exact, has_override), items in groups.items():
            models = [model for model, _future in items]
            try:
                grid = evaluate_grid(
                    virtual_processes=np.array(
                        [m.virtual_processes for m in models], dtype=np.float64
                    ),
                    redundancy=np.array(
                        [m.redundancy for m in models], dtype=np.float64
                    ),
                    node_mtbf=np.array(
                        [m.node_mtbf for m in models], dtype=np.float64
                    ),
                    alpha=np.array([m.alpha for m in models], dtype=np.float64),
                    base_time=np.array(
                        [m.base_time for m in models], dtype=np.float64
                    ),
                    checkpoint_cost=np.array(
                        [m.checkpoint_cost for m in models], dtype=np.float64
                    ),
                    restart_cost=np.array(
                        [m.restart_cost for m in models], dtype=np.float64
                    ),
                    interval_rule=rule,
                    exact_reliability=exact,
                    checkpoint_interval=(
                        np.array(
                            [m.checkpoint_interval for m in models],
                            dtype=np.float64,
                        )
                        if has_override
                        else None
                    ),
                )
            except Exception as error:  # noqa: BLE001 - backstop; requests
                # are pre-validated, so this is an internal failure and
                # every member of the group must hear about it.
                for _model, future in items:
                    if not future.done():
                        future.set_exception(error)
                continue
            for position, (model, future) in enumerate(items):
                if not future.done():
                    future.set_result(self._answer(grid, position, model))

    @staticmethod
    def _answer(grid, position: int, model: CombinedModel) -> Dict[str, Any]:
        total_time = float(grid.total_time[position])
        return {
            "model": model_to_dict(model),
            "redundant_time": float(grid.redundant_time[position]),
            "total_processes": int(grid.total_processes[position]),
            "system_reliability": float(grid.system_reliability[position]),
            "failure_rate": float(grid.failure_rate[position]),
            "system_mtbf": float(grid.system_mtbf[position]),
            "checkpoint_interval": float(grid.checkpoint_interval[position]),
            "total_time": total_time,
            "diverged": not math.isfinite(total_time),
        }
