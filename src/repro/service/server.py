"""The model-serving endpoint: `repro-exp serve`.

A small asyncio HTTP/1.1 server (standard library only) that answers
model evaluations and advisor recommendations over JSON:

``POST /evaluate``
    Body is a :class:`~repro.models.combined.CombinedModel` parameter
    object.  Concurrent requests are coalesced by the
    :class:`~repro.service.batching.MicroBatcher` into single vectorized
    grid calls; answers are bit-identical to a direct
    ``CombinedModel.evaluate()``.
``POST /recommend``
    Body is ``{"model": {...}, "grid"?, "node_budget"?, "time_weight"?,
    "resource_weight"?}``; answered by
    :func:`~repro.models.advisor.recommend`, memoized twice — in
    process (the advisor's own LRU) and, when a results store is
    attached, across restarts via
    :meth:`~repro.store.ResultsStore.get_object`.
``GET /healthz``
    Liveness + drain state + queue depth.
``GET /metrics``
    The :class:`~repro.obs.metrics.MetricsRegistry` snapshot (batch-size
    histogram, queue-depth gauge, shed counter) plus batcher totals,
    store statistics and the advisor cache ratio.

Responses use Python's default JSON float handling, so diverged
configurations carry literal ``Infinity`` — the bundled
:class:`~repro.service.client.ServeClient` (and any Python
``json.loads``) round-trips it exactly.

Overload and shutdown semantics: the batcher's bounded queue sheds
excess load as **429**; once a drain starts (SIGTERM or
:meth:`ModelServer.request_shutdown`) new work gets **503** while every
admitted request is still answered before the process exits.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
from typing import Any, Dict, Optional, Tuple

from ..errors import (
    ConfigurationError,
    ModelDivergence,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from ..models.advisor import Recommendation, recommend, recommend_cache_info
from ..models.combined import CombinedModel
from ..models.redundancy import PAPER_REDUNDANCY_GRID
from ..obs.metrics import MetricsRegistry
from .batching import MicroBatcher, model_to_dict

__all__ = ["ModelServer", "parse_model", "recommendation_to_dict"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Fields a ``/evaluate`` body may carry (the CombinedModel parameters).
_MODEL_FIELDS = {
    "virtual_processes",
    "redundancy",
    "node_mtbf",
    "alpha",
    "base_time",
    "checkpoint_cost",
    "restart_cost",
    "interval_rule",
    "checkpoint_interval",
    "exact_reliability",
}
_REQUIRED_MODEL_FIELDS = (
    "virtual_processes",
    "redundancy",
    "node_mtbf",
    "alpha",
    "base_time",
    "checkpoint_cost",
    "restart_cost",
)


def parse_model(body: Any) -> CombinedModel:
    """Build a :class:`CombinedModel` from a request body, strictly.

    Unknown keys and missing required keys are rejected up front — a
    typo like ``"nod_mtbf"`` must 400, not silently evaluate defaults.
    """
    if not isinstance(body, dict):
        raise ConfigurationError("request body must be a JSON object")
    unknown = set(body) - _MODEL_FIELDS
    if unknown:
        raise ConfigurationError(f"unknown model fields: {sorted(unknown)}")
    missing = [f for f in _REQUIRED_MODEL_FIELDS if f not in body]
    if missing:
        raise ConfigurationError(f"missing model fields: {missing}")
    try:
        interval = body.get("checkpoint_interval")
        return CombinedModel(
            virtual_processes=int(body["virtual_processes"]),
            redundancy=float(body["redundancy"]),
            node_mtbf=float(body["node_mtbf"]),
            alpha=float(body["alpha"]),
            base_time=float(body["base_time"]),
            checkpoint_cost=float(body["checkpoint_cost"]),
            restart_cost=float(body["restart_cost"]),
            interval_rule=str(body.get("interval_rule", "daly")),
            checkpoint_interval=None if interval is None else float(interval),
            exact_reliability=bool(body.get("exact_reliability", False)),
        )
    except (TypeError, ValueError) as error:
        raise ConfigurationError(f"malformed model field: {error}") from error


def recommendation_to_dict(rec: Recommendation) -> Dict[str, Any]:
    """The wire form of an advisor recommendation."""
    return {
        "redundancy": rec.redundancy,
        "checkpoint_interval": rec.checkpoint_interval,
        "total_time": rec.total_time,
        "total_processes": rec.total_processes,
        "speedup_vs_plain": rec.speedup_vs_plain,
        "rationale": rec.rationale,
        "candidates": [
            {
                "redundancy": point.redundancy,
                "total_time": point.total_time,
                "diverged": point.diverged,
            }
            for point in rec.candidates
        ],
    }


class ModelServer:
    """Asyncio HTTP server over a :class:`MicroBatcher` and the advisor.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (read :attr:`port`
        after :meth:`start`).
    max_batch / max_wait / queue_limit:
        Micro-batching knobs, passed through to :class:`MicroBatcher`.
    store:
        Optional :class:`~repro.store.ResultsStore`; when given,
        ``/recommend`` answers persist across restarts.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; a private
        one is created when omitted.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        max_batch: int = 64,
        max_wait: float = 0.002,
        queue_limit: int = 256,
        store=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.batcher = MicroBatcher(
            max_batch=max_batch,
            max_wait=max_wait,
            queue_limit=queue_limit,
            metrics=self.metrics,
        )
        self.requests = 0
        self.recommend_store_hits = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._shutdown = asyncio.Event()
        self._stopping = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the batcher; resolves ``port=0``."""
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._client, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful drain: refuse new work, answer admitted requests.

        Idempotent.  The listening socket closes first, then the
        batcher drains (resolving every admitted future), then open
        connections get a short grace period to flush their final
        responses before being closed.
        """
        if self._stopping:
            return
        self._stopping = True
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.stop()
        for _ in range(200):  # <= ~2 s for handlers to write final bytes
            if not self._connections:
                break
            await asyncio.sleep(0.01)
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()

    def request_shutdown(self) -> None:
        """Signal-handler entry point: begin the drain asynchronously."""
        self._shutdown.set()

    async def run(self, install_signal_handlers: bool = True) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_shutdown`)."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):
                    pass
        try:
            await self._shutdown.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.stop()

    @property
    def draining(self) -> bool:
        return self._stopping or self._shutdown.is_set()

    # -- request handling ----------------------------------------------------

    async def _client(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, raw = request
                status, payload = await self._dispatch(method, path, raw)
                keep = (
                    headers.get("connection", "").lower() != "close"
                    and not self.draining
                )
                await self._respond(writer, status, payload, keep)
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await reader.readexactly(length) if length > 0 else b""
        return method, path, headers, raw

    async def _respond(self, writer, status: int, payload: Any, keep: bool) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _dispatch(
        self, method: str, path: str, raw: bytes
    ) -> Tuple[int, Any]:
        self.requests += 1
        self.metrics.counter("serve.requests").inc()
        try:
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "use GET"}
                return 200, self._healthz()
            if path == "/metrics":
                if method != "GET":
                    return 405, {"error": "use GET"}
                return 200, self._metrics_payload()
            if path == "/evaluate":
                if method != "POST":
                    return 405, {"error": "use POST"}
                return 200, await self._evaluate(self._parse_json(raw))
            if path == "/recommend":
                if method != "POST":
                    return 405, {"error": "use POST"}
                return 200, self._recommend(self._parse_json(raw))
            return 404, {"error": f"no such endpoint: {path}"}
        except ServiceOverloadedError as error:
            return 429, {"error": str(error), "error_type": "overloaded"}
        except ServiceClosedError as error:
            return 503, {"error": str(error), "error_type": "draining"}
        except (ConfigurationError, ModelDivergence, ReproError) as error:
            self.metrics.counter("serve.bad_requests").inc()
            return 400, {
                "error": str(error),
                "error_type": type(error).__name__,
            }
        except Exception as error:  # noqa: BLE001 - a handler bug must
            # 500 its own request, not kill the connection loop.
            self.metrics.counter("serve.errors").inc()
            return 500, {"error": str(error), "error_type": type(error).__name__}

    @staticmethod
    def _parse_json(raw: bytes) -> Any:
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ConfigurationError(f"request body is not JSON: {error}") from error

    # -- endpoints -----------------------------------------------------------

    async def _evaluate(self, body: Any) -> Dict[str, Any]:
        if self.draining:
            raise ServiceClosedError("service is draining; no new requests")
        return await self.batcher.submit(parse_model(body))

    def _recommend(self, body: Any) -> Dict[str, Any]:
        if self.draining:
            raise ServiceClosedError("service is draining; no new requests")
        if not isinstance(body, dict) or "model" not in body:
            raise ConfigurationError('recommend body must carry a "model" object')
        unknown = set(body) - {
            "model", "grid", "node_budget", "time_weight", "resource_weight",
        }
        if unknown:
            raise ConfigurationError(f"unknown recommend fields: {sorted(unknown)}")
        model = parse_model(body["model"])
        grid = tuple(float(d) for d in body.get("grid", PAPER_REDUNDANCY_GRID))
        budget = body.get("node_budget")
        node_budget = None if budget is None else int(budget)
        time_weight = float(body.get("time_weight", 1.0))
        resource_weight = float(body.get("resource_weight", 0.0))
        self.metrics.counter("serve.recommendations").inc()
        params = {
            "model": model,
            "grid": grid,
            "node_budget": node_budget,
            "time_weight": time_weight,
            "resource_weight": resource_weight,
        }
        rec = None
        if self.store is not None:
            rec = self.store.get_object("recommend", params)
            if rec is not None:
                self.recommend_store_hits += 1
                self.metrics.counter("serve.recommend_store_hits").inc()
        if rec is None:
            rec = recommend(
                model,
                grid=grid,
                node_budget=node_budget,
                time_weight=time_weight,
                resource_weight=resource_weight,
            )
            if self.store is not None:
                self.store.put_object("recommend", params, rec)
        return {"model": model_to_dict(model), **recommendation_to_dict(rec)}

    def _healthz(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "draining": self.draining,
            "queue_depth": self.batcher.queue_depth,
            "requests": self.requests,
            "evaluations": self.batcher.evaluations,
            "batches": self.batcher.batches,
        }

    def _metrics_payload(self) -> Dict[str, Any]:
        info = recommend_cache_info()
        lookups = info.hits + info.misses
        payload = {
            "metrics": self.metrics.snapshot(),
            "render": self.metrics.render(),
            "batcher": {
                "batches": self.batcher.batches,
                "evaluations": self.batcher.evaluations,
                "shed": self.batcher.shed,
                "queue_depth": self.batcher.queue_depth,
                "mean_batch_size": (
                    self.batcher.evaluations / self.batcher.batches
                    if self.batcher.batches
                    else 0.0
                ),
            },
            "recommend_cache": {
                "hits": info.hits,
                "misses": info.misses,
                "size": info.currsize,
                "hit_ratio": info.hits / lookups if lookups else 0.0,
                "store_hits": self.recommend_store_hits,
            },
            "store": self.store.stats() if self.store is not None else None,
        }
        return payload
