"""`repro-exp bench-serve` — load-generate the serving endpoint.

Runs a :class:`~repro.service.server.ModelServer` on an ephemeral port
inside a background thread, hammers it from a thread pool of keep-alive
:class:`~repro.service.client.ServeClient` instances, and reports
throughput and **exact** latency percentiles (every latency is
recorded; nothing is bucketed).  The request mix cycles
deterministically through a small grid of model parameters so
concurrent requests genuinely differ — batches exercise the mixed-input
path, not 64 copies of one row — and a sprinkling of ``/recommend``
calls keeps the advisor path warm.

The run doubles as a correctness probe: a sample of ``/evaluate``
answers is re-derived with a direct scalar
:meth:`~repro.models.combined.CombinedModel.evaluate` call and compared
bit-for-bit; the report carries the verdict.

Results land in ``BENCH_serve.json`` next to the other BENCH artifacts.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from ..errors import ModelDivergence, ReproError, ServiceError
from ..models.combined import CombinedModel
from .client import ServeClient
from .server import ModelServer

__all__ = ["run_bench", "ServerThread"]

#: Deterministic request mix: (redundancy, node_mtbf_hours, alpha).
_MIX = [
    (1.0, 6.0, 0.2),
    (1.5, 12.0, 0.2),
    (2.0, 18.0, 0.25),
    (2.5, 24.0, 0.15),
    (3.0, 30.0, 0.2),
    (1.25, 6.0, 0.3),
    (2.25, 24.0, 0.1),
    (2.0, 6.0, 0.2),
]


def _model_for(index: int) -> CombinedModel:
    redundancy, mtbf_hours, alpha = _MIX[index % len(_MIX)]
    return CombinedModel(
        virtual_processes=10_000 + 1_000 * (index % 7),
        redundancy=redundancy,
        node_mtbf=mtbf_hours * 3600.0 * 100.0,
        alpha=alpha,
        base_time=128.0 * 3600.0,
        checkpoint_cost=300.0,
        restart_cost=600.0,
    )


class ServerThread:
    """A ModelServer running its own event loop in a daemon thread.

    Used by the bench and the service smoke tests: ``start()`` returns
    once the ephemeral port is bound; ``stop()`` triggers the graceful
    drain and joins the thread.
    """

    def __init__(self, **server_kwargs) -> None:
        server_kwargs.setdefault("host", "127.0.0.1")
        server_kwargs.setdefault("port", 0)
        self.server = ModelServer(**server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced in start/stop
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.run(install_signal_handlers=False)

    def start(self) -> "ServerThread":
        self._thread.start()
        # run() sets no explicit ready flag; poll for the bound port.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if self._error is not None:
                raise ReproError(f"server thread failed: {self._error}")
            if self.server.port != 0 and self.server._server is not None:
                return self
            time.sleep(0.005)
        raise ReproError("server thread did not come up within 10 s")

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=10.0)
        if self._thread.is_alive():
            raise ReproError("server thread did not drain within 10 s")
        if self._error is not None:
            raise ReproError(f"server thread failed: {self._error}")


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact nearest-rank percentile over recorded samples."""
    if not sorted_values:
        return math.nan
    rank = max(1, math.ceil(len(sorted_values) * q / 100.0))
    return sorted_values[rank - 1]


def _worker(
    port: int, requests: int, offset: int, recommend_every: int
) -> Dict[str, Any]:
    latencies: List[float] = []
    errors = 0
    diverged = 0
    with ServeClient(port=port) as client:
        for i in range(requests):
            index = offset + i
            started = time.perf_counter()
            try:
                if recommend_every and index % recommend_every == 0:
                    client.recommend(_model_for(index))
                else:
                    answer = client.evaluate(_model_for(index))
                    if answer["diverged"]:
                        diverged += 1
            except (ServiceError, ModelDivergence, OSError):
                errors += 1
                continue
            latencies.append(time.perf_counter() - started)
    return {"latencies": latencies, "errors": errors, "diverged": diverged}


def _verify_bit_identity(port: int, samples: int = 16) -> bool:
    """Re-derive a sample of served answers with the scalar model."""
    with ServeClient(port=port) as client:
        for index in range(samples):
            model = _model_for(index)
            served = client.evaluate(model)
            try:
                direct = model.evaluate()
            except ModelDivergence:
                if not served["diverged"]:
                    return False
                continue
            for field, expected in (
                ("redundant_time", direct.redundant_time),
                ("system_reliability", direct.system_reliability),
                ("failure_rate", direct.failure_rate),
                ("checkpoint_interval", direct.checkpoint_interval),
                ("total_time", direct.total_time),
            ):
                if served[field] != expected:
                    return False
            if served["total_processes"] != direct.total_processes:
                return False
    return True


def run_bench(
    threads: int = 8,
    requests_per_thread: int = 200,
    max_batch: int = 64,
    max_wait: float = 0.002,
    queue_limit: int = 1024,
    recommend_every: int = 25,
    quick: bool = False,
    output: Optional[str] = "BENCH_serve.json",
) -> Dict[str, Any]:
    """Load-test an in-process server; return (and write) the report."""
    if quick:
        threads = min(threads, 4)
        requests_per_thread = min(requests_per_thread, 25)
    runner = ServerThread(
        max_batch=max_batch, max_wait=max_wait, queue_limit=queue_limit
    ).start()
    try:
        bit_identical = _verify_bit_identity(runner.port)
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=threads) as pool:
            shards = list(
                pool.map(
                    lambda t: _worker(
                        runner.port,
                        requests_per_thread,
                        t * requests_per_thread,
                        recommend_every,
                    ),
                    range(threads),
                )
            )
        wall = time.perf_counter() - started
        client = ServeClient(port=runner.port)
        try:
            served_metrics = client.metrics()
        finally:
            client.close()
    finally:
        runner.stop()

    latencies = sorted(
        latency for shard in shards for latency in shard["latencies"]
    )
    total = len(latencies)
    errors = sum(shard["errors"] for shard in shards)
    report = {
        "bench": "serve",
        "quick": quick,
        "threads": threads,
        "requests": total,
        "errors": errors,
        "diverged": sum(shard["diverged"] for shard in shards),
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(total / wall, 1) if wall > 0 else math.inf,
        "latency_ms": {
            "p50": round(_percentile(latencies, 50) * 1e3, 3),
            "p90": round(_percentile(latencies, 90) * 1e3, 3),
            "p99": round(_percentile(latencies, 99) * 1e3, 3),
            "max": round(latencies[-1] * 1e3, 3) if latencies else math.nan,
        },
        "batching": served_metrics["batcher"],
        "recommend_cache": served_metrics["recommend_cache"],
        "bit_identical_sample": bit_identical,
    }
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return report
