"""Blocking client for the serving endpoint (stdlib ``http.client``).

One :class:`ServeClient` holds one keep-alive connection, so a load
generator can pin a client per thread and measure steady-state latency
without per-request TCP setup.  Server-side errors are mapped back to
the exception types the in-process API raises: 429 →
:class:`~repro.errors.ServiceOverloadedError`, 503 →
:class:`~repro.errors.ServiceClosedError`, 400 → the original domain
error (:class:`~repro.errors.ConfigurationError` /
:class:`~repro.errors.ModelDivergence`) so calling code cannot tell a
remote evaluation from a local one.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Sequence

from ..errors import (
    ConfigurationError,
    ModelDivergence,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from ..models.combined import CombinedModel
from .batching import model_to_dict

__all__ = ["ServeClient"]

#: Server ``error_type`` strings mapped back to local exception types.
_ERROR_TYPES = {
    "overloaded": ServiceOverloadedError,
    "draining": ServiceClosedError,
    "ConfigurationError": ConfigurationError,
    "ModelDivergence": ModelDivergence,
    "ReproError": ReproError,
}


class ServeClient:
    """One keep-alive connection to a running ``repro-exp serve``."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, body: Any = None) -> Any:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (ConnectionError, http.client.HTTPException, OSError):
            # A dropped keep-alive connection (e.g. the server drained
            # between requests) is not retryable state worth keeping.
            self.close()
            raise
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"malformed response ({response.status}): {raw[:200]!r}"
            ) from error
        if response.status != 200:
            message = decoded.get("error", f"HTTP {response.status}")
            error_cls = _ERROR_TYPES.get(
                decoded.get("error_type", ""), ServiceError
            )
            raise error_cls(message)
        return decoded

    # -- endpoints -----------------------------------------------------------

    def evaluate(self, model: CombinedModel) -> Dict[str, Any]:
        """``POST /evaluate`` — one batched model evaluation."""
        return self._request("POST", "/evaluate", model_to_dict(model))

    def recommend(
        self,
        model: CombinedModel,
        grid: Optional[Sequence[float]] = None,
        node_budget: Optional[int] = None,
        time_weight: float = 1.0,
        resource_weight: float = 0.0,
    ) -> Dict[str, Any]:
        """``POST /recommend`` — an advisor recommendation."""
        body: Dict[str, Any] = {
            "model": model_to_dict(model),
            "time_weight": time_weight,
            "resource_weight": resource_weight,
        }
        if grid is not None:
            body["grid"] = list(grid)
        if node_budget is not None:
            body["node_budget"] = node_budget
        return self._request("POST", "/recommend", body)

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")
