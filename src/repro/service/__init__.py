"""Batched model serving: ``repro-exp serve`` and its building blocks.

The subsystem turns the analytic model into a long-lived endpoint:

``batching``
    :class:`MicroBatcher` — coalesces concurrent evaluations into
    single vectorized grid calls (N-or-T window, bounded queue,
    load shedding), with answers bit-identical to scalar evaluation.
``server``
    :class:`ModelServer` — the asyncio HTTP/1.1 JSON server
    (``/evaluate``, ``/recommend``, ``/healthz``, ``/metrics``) with
    graceful SIGTERM drain.
``client``
    :class:`ServeClient` — blocking keep-alive client mapping server
    errors back to local exception types.
``bench``
    :func:`run_bench` — the ``bench-serve`` load generator with exact
    latency percentiles and a served-vs-scalar bit-identity probe.
"""

from .batching import MicroBatcher, model_to_dict, validate_model
from .bench import ServerThread, run_bench
from .client import ServeClient
from .server import ModelServer, parse_model, recommendation_to_dict

__all__ = [
    "MicroBatcher",
    "ModelServer",
    "ServeClient",
    "ServerThread",
    "model_to_dict",
    "parse_model",
    "recommendation_to_dict",
    "run_bench",
    "validate_model",
]
