"""Package version constant.

Kept in its own module so that subsystems (and ``repro.cli --version``)
can import it without importing the full package graph.
"""

__version__ = "1.0.0"
