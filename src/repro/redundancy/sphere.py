"""Replica-sphere liveness: when has a virtual process truly failed?

Figure 7 of the paper: a physical-process failure does *not* imply an
application failure — the job only fails (and a rollback is triggered)
when **all** replicas of some virtual process are dead.  The tracker
watches rank deaths from the runtime and fires a callback at the first
sphere exhaustion.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..errors import RedundancyError
from .mapping import ReplicaMap


class SphereTracker:
    """Liveness bookkeeping for every replica sphere of a job attempt."""

    def __init__(self, replica_map: ReplicaMap) -> None:
        self.replica_map = replica_map
        self._dead: Set[int] = set()
        self._exhausted: Optional[int] = None
        self._watchers: List[Callable[[int], None]] = []

    # -- event input -------------------------------------------------------

    def notice_death(self, physical_rank: int) -> None:
        """Record a physical-rank death; fire watcher on sphere exhaustion."""
        if physical_rank in self._dead:
            return
        self._dead.add(physical_rank)
        virtual = self.replica_map.virtual_of(physical_rank)
        if self._exhausted is None and not self.alive_replicas(virtual):
            self._exhausted = virtual
            for watcher in list(self._watchers):
                watcher(virtual)

    def on_sphere_exhausted(self, watcher: Callable[[int], None]) -> None:
        """Register a callback fired with the first exhausted virtual rank."""
        self._watchers.append(watcher)

    # -- queries -----------------------------------------------------------

    def is_dead(self, physical_rank: int) -> bool:
        """Has this physical rank died in the current attempt?"""
        return physical_rank in self._dead

    def alive_replicas(self, virtual_rank: int) -> List[int]:
        """Physical replicas of a sphere still alive, primary first."""
        return [
            rank
            for rank in self.replica_map.replicas_of(virtual_rank)
            if rank not in self._dead
        ]

    def lead_replica(self, virtual_rank: int) -> int:
        """Lowest-index live replica (the wildcard-protocol leader).

        Raises
        ------
        RedundancyError
            When the sphere is exhausted.
        """
        alive = self.alive_replicas(virtual_rank)
        if not alive:
            raise RedundancyError(f"sphere of virtual rank {virtual_rank} exhausted")
        return alive[0]

    @property
    def job_failed(self) -> bool:
        """True once any sphere has been exhausted."""
        return self._exhausted is not None

    @property
    def exhausted_virtual_rank(self) -> Optional[int]:
        """The first virtual rank to lose all replicas (or None)."""
        return self._exhausted

    def death_counts(self) -> Dict[int, int]:
        """Per-virtual-rank number of dead replicas (diagnostics)."""
        counts: Dict[int, int] = {}
        for rank in self._dead:
            virtual = self.replica_map.virtual_of(rank)
            counts[virtual] = counts.get(virtual, 0) + 1
        return counts
