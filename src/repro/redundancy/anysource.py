"""The wildcard-receive (MPI_ANY_SOURCE) protocol of Section 3.

A wildcard receive is the one place replicas could diverge: if each
replica independently matched "any" message, two replicas of the same
virtual process might consume messages from *different* virtual
senders and their states would fork.  The paper's protocol (steps 1-3
of Section 3) serialises the choice through a leader:

1. only the sphere's **lead** replica posts the physical wildcard
   receive;
2. when it matches, the lead learns the actual sender, forwards the
   envelope information (the sender's virtual rank) to its sibling
   replicas, and posts specific receives for the remaining copies of
   that same message;
3. each sibling uses the forwarded envelope to post *specific*
   receives from the replicas of that sender, guaranteeing all
   replicas consume the message of the same virtual sender.

Control messages travel at ``CONTROL_TAG_BASE + tag`` so they can
never match application traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import RedundancyError
from ..mpi.status import ANY_SOURCE
from .voting import ReplicaCopy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .interpose import RedComm

#: Envelope-forwarding control messages live above every other tag space.
CONTROL_TAG_BASE = 1 << 28


def anysource_recv(redcomm: "RedComm", tag: int):
    """Generator implementing the wildcard protocol; returns (payload, Status).

    Must be called (in the same program position) by every live replica
    of the receiving sphere, like any other interposed operation.
    """
    if tag < 0 or tag >= CONTROL_TAG_BASE:
        raise RedundancyError(f"wildcard recv tag {tag} out of range")
    redcomm.runtime.counters.add("wildcard_recvs")
    my_virtual = redcomm.rank
    lead = redcomm.tracker.lead_replica(my_virtual)
    control_tag = CONTROL_TAG_BASE + tag

    if redcomm.physical_rank == lead:
        # Step 1: only the lead posts the true wildcard.
        member = redcomm._world.irecv(ANY_SOURCE, tag)
        payload, status = yield from member.wait()
        sender_physical = status.source
        sender_virtual = redcomm.replica_map.virtual_of(sender_physical)
        # Step 2: forward the envelope info to the sibling replicas.
        for sibling in redcomm.tracker.alive_replicas(my_virtual):
            if sibling == redcomm.physical_rank:
                continue
            yield from redcomm._world.send(
                sender_virtual, sibling, control_tag, _internal=True
            )
        # ... and post receives for the remaining copies of this message.
        first_copy = ReplicaCopy.full(sender_physical, payload)
        request_set = redcomm._post_specific_recv(
            sender_virtual, tag, already_have=first_copy, skip_sender=sender_physical
        )
    else:
        # Step 3: siblings learn the virtual sender from the lead, then
        # receive their own copies via specific receives.
        envelope_info, _status = yield from redcomm._world.recv(lead, control_tag)
        sender_virtual = envelope_info
        request_set = redcomm._post_specific_recv(sender_virtual, tag)

    result = yield from request_set.wait()
    return result
