"""Replica message comparison and majority voting.

RedMPI's headline safety feature: because every receiver gets the
"same" message from every replica of the sender, a corrupted copy
(Byzantine sender, bit-flipped buffer) is detectable by comparison and
— with three or more copies — correctable by majority vote.

Two operating modes, as in the paper:

* **All-to-all** (:data:`ALL_TO_ALL`): every sender replica ships the
  complete message to every receiver replica.  Voting compares full
  payload digests; the majority payload is delivered.
* **Msg-PlusHash** (:data:`MSG_PLUS_HASH`): one sender replica ships
  the complete message, the others ship a 64-bit digest.  Bandwidth
  drops from ``r`` full copies to one copy plus ``r - 1`` hashes; a
  mismatch between the message and the digests is detectable, and with
  ``r >= 3`` the faulty copy is identified by which digests agree.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..errors import VotingError
from ..mpi.datatypes import payload_digest

#: Mode constants.
ALL_TO_ALL = "all-to-all"
MSG_PLUS_HASH = "msg-plus-hash"

MODES = (ALL_TO_ALL, MSG_PLUS_HASH)


@dataclass(frozen=True)
class ReplicaCopy:
    """One copy received from one sender replica.

    ``payload`` is ``None`` for digest-only copies (Msg-PlusHash mode);
    ``digest`` is always present.
    """

    sender_physical: int
    digest: int
    payload: Any = None
    has_payload: bool = False

    @staticmethod
    def full(sender_physical: int, payload: Any) -> "ReplicaCopy":
        """A complete-message copy."""
        return ReplicaCopy(
            sender_physical=sender_physical,
            digest=payload_digest(payload),
            payload=payload,
            has_payload=True,
        )

    @staticmethod
    def hash_only(sender_physical: int, digest: int) -> "ReplicaCopy":
        """A digest-only copy."""
        return ReplicaCopy(sender_physical=sender_physical, digest=digest)


@dataclass(frozen=True)
class VoteResult:
    """Outcome of comparing the copies of one virtual message."""

    payload: Any
    #: True when every copy agreed.
    unanimous: bool
    #: Physical sender ranks whose copy disagreed with the majority.
    corrupt_senders: Tuple[int, ...]


def vote(copies: Sequence[ReplicaCopy]) -> VoteResult:
    """Compare replica copies; deliver the majority payload.

    Raises
    ------
    VotingError
        * no copies at all (sphere died before sending);
        * copies disagree with no strict majority (undetectable which
          is correct — RedMPI can detect with 2 copies but only
          correct with >= 3);
        * the majority digest has no full payload among its copies
          (can only happen in Msg-PlusHash mode when the payload
          carrier itself is the corrupt one *and* ``r == 2``).
    """
    if not copies:
        raise VotingError("no replica copies to vote on")
    tally = _TallyCounter(copy.digest for copy in copies)
    majority_digest, majority_count = tally.most_common(1)[0]
    if len(tally) > 1 and majority_count <= len(copies) - majority_count:
        raise VotingError(
            f"replica copies disagree with no majority "
            f"({len(tally)} distinct digests over {len(copies)} copies)"
        )
    corrupt = tuple(
        copy.sender_physical for copy in copies if copy.digest != majority_digest
    )
    winner: Optional[ReplicaCopy] = None
    for copy in copies:
        if copy.digest == majority_digest and copy.has_payload:
            winner = copy
            break
    if winner is None:
        raise VotingError(
            "majority digest carried no full payload (corrupted message "
            "copy with r=2 in Msg-PlusHash mode is detectable but not "
            "correctable)"
        )
    return VoteResult(
        payload=winner.payload,
        unanimous=len(tally) == 1,
        corrupt_senders=corrupt,
    )


def plan_copies(
    sender_replicas: List[int],
    receiver_replicas: List[int],
    mode: str,
) -> dict:
    """Which sender replica ships what to which receiver replica.

    Returns a mapping ``(sender_physical, receiver_physical) ->
    "full" | "hash"``.  In All-to-all mode everything is full.  In
    Msg-PlusHash mode, receiver replica ``j`` gets the full message
    from sender replica ``j mod len(senders)`` and digests from the
    rest, so every receiver has exactly one payload carrier even under
    partial redundancy (unequal sphere sizes).
    """
    if mode not in MODES:
        raise VotingError(f"unknown voting mode {mode!r}")
    plan = {}
    sender_count = len(sender_replicas)
    if sender_count == 0:
        # Exhausted sender sphere: nothing will ever be shipped.  The
        # caller's request set stays empty and pending; job-level
        # failure handling tears the attempt down.
        return plan
    for j, receiver in enumerate(receiver_replicas):
        carrier = sender_replicas[j % sender_count]
        for sender in sender_replicas:
            if mode == ALL_TO_ALL or sender == carrier:
                plan[(sender, receiver)] = "full"
            else:
                plan[(sender, receiver)] = "hash"
    return plan
