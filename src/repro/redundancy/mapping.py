"""Virtual↔physical rank mapping under (partial) redundancy.

Physical world layout: ranks ``0 .. N-1`` are the primaries (physical
rank == virtual rank), and shadow replicas occupy ``N .. N_total-1`` in
virtual-rank order.  Which virtual ranks get the extra replica is
decided by the Eq. 5-8 partition; the *interleaved* strategy spreads
them evenly (the paper's experiments: "a redundancy degree of 1.5x
means that every other process (i.e., every even process) has a
replica"), while *block* gives them to the lowest virtual ranks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import ConfigurationError, RedundancyError
from ..models.redundancy import partition_processes


class ReplicaMap:
    """Static assignment of physical replicas to virtual processes.

    Parameters
    ----------
    virtual_processes:
        ``N`` — the application's process count.
    redundancy:
        Real-valued degree ``r >= 1``.
    strategy:
        ``"interleaved"`` (default, matches the paper's experiments) or
        ``"block"`` — how the higher replication level is distributed
        when ``r`` is fractional.
    """

    def __init__(
        self,
        virtual_processes: int,
        redundancy: float,
        strategy: str = "interleaved",
    ) -> None:
        if strategy not in ("interleaved", "block"):
            raise ConfigurationError(
                f"strategy must be 'interleaved' or 'block', got {strategy!r}"
            )
        self.strategy = strategy
        self.partition = partition_processes(virtual_processes, redundancy)
        self.virtual_processes = virtual_processes
        self.redundancy = redundancy
        self._levels = self._assign_levels()
        self._replicas: Dict[int, List[int]] = {}
        self._virtual_of: Dict[int, int] = {}
        self._build()

    def _assign_levels(self) -> List[int]:
        """Per-virtual-rank integer replication level."""
        part = self.partition
        n = self.virtual_processes
        levels = [part.floor_level] * n
        if part.ceil_count == 0:
            return levels
        if self.strategy == "block":
            chosen = range(part.ceil_count)
        else:
            # Bresenham-style even spread: rank v is upgraded when the
            # running quota crosses an integer boundary.
            chosen = [
                v
                for v in range(n)
                if (v * part.ceil_count) % n < part.ceil_count
            ]
            # Quota arithmetic yields exactly ceil_count upgrades.
            chosen = chosen[: part.ceil_count]
        for v in chosen:
            levels[v] = part.ceil_level
        return levels

    def _build(self) -> None:
        next_shadow = self.virtual_processes
        for v in range(self.virtual_processes):
            ranks = [v]
            for _extra in range(self._levels[v] - 1):
                ranks.append(next_shadow)
                next_shadow += 1
            self._replicas[v] = ranks
            for p in ranks:
                self._virtual_of[p] = v
        self.total_physical = next_shadow

    # -- queries -----------------------------------------------------------

    def replication_of(self, virtual_rank: int) -> int:
        """Number of physical replicas backing ``virtual_rank``."""
        self._check_virtual(virtual_rank)
        return self._levels[virtual_rank]

    def replicas_of(self, virtual_rank: int) -> List[int]:
        """Physical ranks of a sphere, primary first."""
        self._check_virtual(virtual_rank)
        return list(self._replicas[virtual_rank])

    def virtual_of(self, physical_rank: int) -> int:
        """Virtual rank served by a physical rank."""
        try:
            return self._virtual_of[physical_rank]
        except KeyError as exc:
            raise RedundancyError(
                f"physical rank {physical_rank} is not mapped"
            ) from exc

    def replica_index(self, physical_rank: int) -> int:
        """Position of a physical rank within its sphere (0 = primary)."""
        v = self.virtual_of(physical_rank)
        return self._replicas[v].index(physical_rank)

    def spheres(self) -> Sequence[List[int]]:
        """All replica groups, indexed by virtual rank."""
        return [list(self._replicas[v]) for v in range(self.virtual_processes)]

    def _check_virtual(self, virtual_rank: int) -> None:
        if not 0 <= virtual_rank < self.virtual_processes:
            raise RedundancyError(
                f"virtual rank {virtual_rank} outside [0, {self.virtual_processes})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicaMap N={self.virtual_processes} r={self.redundancy} "
            f"physical={self.total_physical} strategy={self.strategy}>"
        )
