"""redundancy — a RedMPI-style transparent replication layer.

Reimplements the protocol of Section 3 of the paper on top of
:mod:`repro.mpi`:

* the world is divided into *virtual* processes, each backed by a
  sphere of ``r`` physical replicas (``r`` may be partial — Eqs. 5-8
  decide who gets an extra replica);
* every application point-to-point call is interposed: a send fans out
  to every live replica of the destination, a receive posts one receive
  per live replica of the source, and the application-visible request
  is a *request set* over the per-replica requests;
* wildcard (``ANY_SOURCE``) receives run the paper's envelope-
  forwarding protocol so all replicas receive from the same virtual
  sender;
* replica payloads are compared on arrival — in All-to-all mode every
  replica ships the full message; in Msg-PlusHash mode one replica
  ships the message and the rest ship digests — and with ``r >= 3`` a
  corrupted copy is voted out (RedMPI's Byzantine-detection feature);
* sphere liveness is tracked so the job learns the moment some virtual
  process has lost *all* replicas (the condition that forces rollback).

The application-facing handle, :class:`RedComm`, exposes the same
interface as :class:`repro.mpi.Communicator`, so workloads run
unmodified under any redundancy degree — exactly RedMPI's "no change
in application source" property.
"""

from .mapping import ReplicaMap
from .sphere import SphereTracker
from .voting import ALL_TO_ALL, MSG_PLUS_HASH, vote
from .interpose import RedComm, RedRequest

__all__ = [
    "ALL_TO_ALL",
    "MSG_PLUS_HASH",
    "RedComm",
    "RedRequest",
    "ReplicaMap",
    "SphereTracker",
    "vote",
]
