"""RedComm: the PMPI-style interposition layer (paper Section 3).

``RedComm`` exposes the same interface as
:class:`repro.mpi.Communicator` but speaks in *virtual* ranks.  Under
the hood every application call fans out to the physical replicas:

* ``isend(payload, dest)`` → one world send per live replica of the
  destination sphere (Figure 1(a)); in Msg-PlusHash mode all but the
  designated carrier ship only a digest;
* ``irecv(source)`` → one world receive per live replica of the source
  sphere; the returned :class:`RedRequest` is the paper's *request
  set*: the application-level wait completes only when every member
  request has completed (Section 3's MPI_Wait semantics);
* arriving copies are compared/voted (:mod:`repro.redundancy.voting`);
* receives pending on a replica that dies are cancelled, so surviving
  copies still complete the application-level request — this is how a
  sphere keeps the job running after losing members (Figure 7).

Tag spaces: user tags ``[0, 2^20)``; collective tags ``[2^20, 2^24)``;
digest copies are shipped at ``tag + 2^24``; the wildcard-protocol
control messages use ``[2^28, ...)`` (see
:mod:`repro.redundancy.anysource`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..errors import RedundancyError
from ..mpi.comm import USER_TAG_LIMIT, CollectiveAPI
from ..mpi.datatypes import payload_digest, payload_nbytes
from ..mpi.requests import Request
from ..mpi.status import ANY_SOURCE, ANY_TAG, Status
from ..simkit.events import Event
from .mapping import ReplicaMap
from .sphere import SphereTracker
from .voting import ALL_TO_ALL, MODES, ReplicaCopy, plan_copies, vote

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.runtime import RankContext

#: Digest copies of a message tagged ``t`` travel at ``t + HASH_TAG_OFFSET``.
HASH_TAG_OFFSET = 1 << 24

#: A corruptor: maps (sender_physical, receiver_physical, payload) to the
#: payload actually shipped.  Used to inject Byzantine replicas in tests.
Corruptor = Callable[[int, int, Any], Any]


class RedRequest:
    """A request *set*: the application-level handle over replica requests.

    Completes when every live member completes; members whose peer
    replica dies are dropped from the set.  For receives, completion
    triggers the vote and yields ``(payload, Status)`` with the
    *virtual* source rank.
    """

    def __init__(self, comm: "RedComm", kind: str, virtual_peer: int, tag: int) -> None:
        self.comm = comm
        self.kind = kind
        self.virtual_peer = virtual_peer
        self.tag = tag
        self.event = Event(comm.env)
        self._pending: Dict[int, Request] = {}  # id -> member request
        self._sender_of: Dict[int, int] = {}
        self._copy_kind: Dict[int, str] = {}
        self._copies: List[ReplicaCopy] = []
        self._armed = False
        self._consumed = False

    # -- construction (layer-internal) -----------------------------------

    def add_member(self, request: Request, sender_physical: int, copy_kind: str) -> None:
        """Register one per-replica request into the set."""
        key = id(request)
        self._pending[key] = request
        self._sender_of[key] = sender_physical
        self._copy_kind[key] = copy_kind
        request.event.add_callback(lambda _event, key=key: self._member_done(key))

    def arm(self) -> None:
        """All members registered; complete immediately if set is empty."""
        self._armed = True
        self._maybe_complete()

    # -- progress ----------------------------------------------------------

    def _member_done(self, key: int) -> None:
        request = self._pending.pop(key, None)
        if request is None:
            return  # dropped by a death notification before arrival
        if self.kind == "recv":
            envelope = request.event.value
            sender = self._sender_of[key]
            if self._copy_kind[key] == "full":
                self._copies.append(ReplicaCopy.full(sender, envelope.payload))
            else:
                self._copies.append(
                    ReplicaCopy.hash_only(sender, envelope.payload)
                )
        self._maybe_complete()

    def _maybe_complete(self) -> None:
        if not self._armed or self.event.triggered or self._pending:
            return
        if self.kind == "recv" and not self._copies:
            # Every source replica died before sending: the request can
            # never be satisfied.  Leave it pending — the sphere tracker
            # has (or will) declare the job failed and force a rollback.
            return
        self.event.succeed(list(self._copies) if self.kind == "recv" else None)

    def drop_sender(self, dead_physical: int) -> None:
        """A peer replica died: withdraw its still-pending member requests."""
        if self.kind != "recv" or self.event.triggered:
            return
        doomed = [
            key
            for key, sender in self._sender_of.items()
            if sender == dead_physical and key in self._pending
        ]
        for key in doomed:
            request = self._pending[key]
            if request.event.triggered:
                continue  # message already matched; let it finish
            if self.comm.runtime.cancel_recv(self.comm.physical_rank, request.event):
                del self._pending[key]
        self._maybe_complete()

    # -- application API -----------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the whole set has completed."""
        return self.event.processed

    def wait(self):
        """Generator: block until the set completes; returns the value."""
        raw = yield self.event
        return self._finalize(raw)

    def test(self):
        """Non-blocking check: ``(False, None)`` or ``(True, value)``."""
        if not self.event.processed:
            return False, None
        return True, self._finalize(self.event.value)

    def _finalize(self, raw: Any) -> Any:
        if self._consumed:
            raise RedundancyError("request set waited on twice")
        self._consumed = True
        if self.kind == "send":
            return None
        outcome = vote(raw)
        if not outcome.unanimous:
            self.comm.runtime.counters.add("votes_not_unanimous")
            self.comm.runtime.counters.add(
                "corrupt_copies_voted_out", len(outcome.corrupt_senders)
            )
        status = Status(
            source=self.virtual_peer,
            tag=self.tag,
            nbytes=payload_nbytes(outcome.payload),
        )
        return outcome.payload, status


class RedComm(CollectiveAPI):
    """Virtual-rank communicator with transparent replication."""

    def __init__(
        self,
        ctx: "RankContext",
        replica_map: ReplicaMap,
        tracker: SphereTracker,
        mode: str = ALL_TO_ALL,
        corruptor: Optional[Corruptor] = None,
    ) -> None:
        if mode not in MODES:
            raise RedundancyError(f"unknown redundancy mode {mode!r}")
        self._world = ctx.comm
        self.runtime = ctx.runtime
        self.physical_rank = ctx.rank
        self.replica_map = replica_map
        self.tracker = tracker
        self.mode = mode
        self.corruptor = corruptor
        self._virtual_rank = replica_map.virtual_of(ctx.rank)
        self._coll_seq = 0
        self._active_recvs: List[RedRequest] = []
        self.runtime.on_rank_death(self._on_rank_death)

    # -- identity (virtual view) ------------------------------------------

    @property
    def rank(self) -> int:
        """This process's *virtual* rank."""
        return self._virtual_rank

    @property
    def size(self) -> int:
        """Number of virtual processes."""
        return self.replica_map.virtual_processes

    @property
    def env(self):
        """The simulation environment."""
        return self.runtime.env

    @property
    def replica_index(self) -> int:
        """This process's position within its sphere (0 = primary)."""
        return self.replica_map.replica_index(self.physical_rank)

    def peer_alive(self, virtual: int) -> bool:
        """True while the peer sphere has at least one live replica."""
        return bool(self.tracker.alive_replicas(virtual))

    def _alive_sphere(self, virtual: int) -> List[int]:
        """Live replicas of a sphere, consulting both tracker and runtime."""
        return [
            rank
            for rank in self.replica_map.replicas_of(virtual)
            if not self.tracker.is_dead(rank) and self.runtime.is_alive(rank)
        ]

    # -- death plumbing -----------------------------------------------------

    def _on_rank_death(self, dead_physical: int) -> None:
        self.tracker.notice_death(dead_physical)
        still_active = []
        for request in self._active_recvs:
            request.drop_sender(dead_physical)
            if not request.event.triggered:
                still_active.append(request)
        self._active_recvs = still_active

    # -- point to point --------------------------------------------------------

    def _check_tag(self, tag: int, internal: bool) -> None:
        if tag < 0:
            raise RedundancyError(f"tag must be >= 0, got {tag}")
        if not internal and tag >= USER_TAG_LIMIT:
            raise RedundancyError(f"user tags must be < {USER_TAG_LIMIT}, got {tag}")

    def isend(self, payload: Any, dest: int, tag: int = 0, _internal: bool = False) -> RedRequest:
        """Fan-out send to every live replica of virtual rank ``dest``."""
        self._check_tag(tag, _internal)
        # Plans are computed over *live* replicas on both ends so sender
        # and receiver agree on who carries the full payload in
        # Msg-PlusHash mode even after replica deaths.
        my_sphere = self._alive_sphere(self._virtual_rank)
        dest_replicas = self._alive_sphere(dest)
        plan = plan_copies(my_sphere, dest_replicas, self.mode)
        request_set = RedRequest(self, kind="send", virtual_peer=dest, tag=tag)
        self.runtime.counters.add("app_sends")
        for receiver in dest_replicas:
            shipped = payload
            if self.corruptor is not None:
                shipped = self.corruptor(self.physical_rank, receiver, payload)
            what = plan[(self.physical_rank, receiver)]
            if what == "full":
                member = self._world.isend(shipped, receiver, tag, _internal=True)
            else:
                member = self._world.isend(
                    payload_digest(shipped), receiver, tag + HASH_TAG_OFFSET,
                    _internal=True,
                )
            request_set.add_member(member, self.physical_rank, what)
        request_set.arm()
        return request_set

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, _internal: bool = True) -> RedRequest:
        """Fan-in receive from every live replica of virtual ``source``.

        Wildcard sources are only supported through the blocking
        :meth:`recv` (the paper's envelope-forwarding protocol is
        inherently multi-step); wildcard tags are not interposable
        (a digest copy travels under a shifted tag) and are rejected.
        """
        if source == ANY_SOURCE:
            raise RedundancyError(
                "ANY_SOURCE is only supported via blocking recv() under "
                "redundancy (envelope-forwarding protocol)"
            )
        if tag == ANY_TAG:
            raise RedundancyError("ANY_TAG is not supported under redundancy")
        self._check_tag(tag, _internal)
        return self._post_specific_recv(source, tag)

    def _post_specific_recv(
        self,
        source: int,
        tag: int,
        already_have: Optional[ReplicaCopy] = None,
        skip_sender: Optional[int] = None,
    ) -> RedRequest:
        source_replicas = self._alive_sphere(source)
        my_sphere = self._alive_sphere(self._virtual_rank)
        plan = plan_copies(source_replicas, my_sphere, self.mode)
        request_set = RedRequest(self, kind="recv", virtual_peer=source, tag=tag)
        if already_have is not None:
            request_set._copies.append(already_have)
        self.runtime.counters.add("app_recvs")
        for sender in source_replicas:
            if sender == skip_sender:
                continue
            what = plan[(sender, self.physical_rank)]
            if what == "full":
                member = self._world.irecv(sender, tag)
            else:
                member = self._world.irecv(sender, tag + HASH_TAG_OFFSET)
            request_set.add_member(member, sender, what)
        request_set.arm()
        if len(self._active_recvs) > 64:
            self._active_recvs = [
                pending
                for pending in self._active_recvs
                if not pending.event.triggered
            ]
        self._active_recvs.append(request_set)
        return request_set

    def send(self, payload: Any, dest: int, tag: int = 0, _internal: bool = False):
        """Blocking fan-out send (generator)."""
        request_set = self.isend(payload, dest, tag, _internal=_internal)
        yield from request_set.wait()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking fan-in receive (generator) → ``(payload, Status)``.

        With ``source=ANY_SOURCE`` runs the Section 3 wildcard
        protocol so all replicas of this sphere receive from the same
        virtual sender.
        """
        if source == ANY_SOURCE:
            from .anysource import anysource_recv

            result = yield from anysource_recv(self, tag)
            return result
        if tag == ANY_TAG:
            raise RedundancyError("ANY_TAG is not supported under redundancy")
        request_set = self.irecv(source, tag)
        result = yield from request_set.wait()
        return result

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int = ANY_SOURCE,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ):
        """Combined send+receive (generator); posts both before waiting."""
        if source == ANY_SOURCE or recv_tag == ANY_TAG:
            raise RedundancyError(
                "sendrecv wildcards are not supported under redundancy"
            )
        send_set = self.isend(payload, dest, send_tag)
        recv_set = self.irecv(source, recv_tag)
        results = yield from self.waitall([send_set, recv_set])
        return results[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RedComm virtual={self._virtual_rank}/{self.size} "
            f"physical={self.physical_rank} mode={self.mode}>"
        )
