"""Structured tracing: JSONL span/event records with sim and wall time.

Every record is one JSON object per line.  Two record types:

* ``span`` — a phase with a beginning and an end.  Simulation-time
  bounds ride in ``t0``/``t1`` (``None`` for purely wall-clock spans,
  e.g. the campaign executor's per-cell timings); wall-clock bounds in
  ``wall0``/``wall1``.
* ``event`` — a point occurrence (a failure injection, a CRC mismatch,
  a pool rebuild) with ``t`` (sim) and ``wall`` stamps.

A third type, ``manifest``/``summary``, is emitted by jobs so a trace
is self-describing: the manifest record captures the config and seed
that produced the records, the summary record the job's final report
numbers, which :mod:`repro.obs.report` reconciles against the spans.

Design constraints (the whole point of this module):

* **zero overhead when off** — code paths hold :data:`NULL_TRACER`, a
  null object whose methods are empty; nothing is allocated, formatted
  or written.  The fault-free hot path stays bit-identical.
* **never perturbs the simulation** — a tracer only *reads* ``env.now``
  passed in by the caller; it cannot advance the clock, so even a
  traced run is sim-identical to an untraced one.
* **process-safe** — parallel campaign workers never share a file:
  each traced job writes its records to a uniquely-named part file
  inside a parts directory (pid + per-process sequence in the name),
  and the parent merges the parts into one JSONL trace afterwards.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "NULL_TRACER",
    "Span",
    "TraceSession",
    "Tracer",
    "merge_trace_parts",
    "read_trace",
    "write_jsonl",
]

#: Per-process part-file sequence (unique names even for same-label jobs).
_PART_SEQUENCE = itertools.count()


class Span:
    """An open span handle; :meth:`end` seals it."""

    __slots__ = ("_record", "_clock")

    def __init__(self, record: Dict[str, Any], clock: Callable[[], float]) -> None:
        self._record = record
        self._clock = clock

    def end(self, sim_time: Optional[float] = None, **fields: Any) -> None:
        """Close the span (idempotent; later calls overwrite the end)."""
        self._record["t1"] = sim_time
        self._record["wall1"] = self._clock()
        if fields:
            self._record.update(fields)

    def annotate(self, **fields: Any) -> None:
        """Attach extra fields without closing the span."""
        self._record.update(fields)


class _NullSpan:
    """End of the null tracer's spans: does nothing."""

    __slots__ = ()

    def end(self, sim_time: Optional[float] = None, **fields: Any) -> None:
        pass

    def annotate(self, **fields: Any) -> None:
        pass


class Tracer:
    """Collects span/event records in memory; flush with :meth:`write`.

    ``common`` fields (e.g. the job label) are merged into every record
    at write time, so per-call cost stays one small dict construction.
    """

    enabled = True

    def __init__(
        self,
        common: Optional[Dict[str, Any]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.common = dict(common or {})
        self._clock = clock
        self._records: List[Dict[str, Any]] = []

    # -- recording ----------------------------------------------------------

    def event(self, name: str, sim_time: Optional[float] = None, **fields: Any) -> None:
        """Record a point event."""
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "t": sim_time,
            "wall": self._clock(),
        }
        if fields:
            record.update(fields)
        self._records.append(record)

    def begin(self, name: str, sim_time: Optional[float] = None, **fields: Any) -> Span:
        """Open a span; close it via the returned handle's ``end``."""
        record: Dict[str, Any] = {
            "type": "span",
            "name": name,
            "t0": sim_time,
            "t1": None,
            "wall0": self._clock(),
            "wall1": None,
        }
        if fields:
            record.update(fields)
        self._records.append(record)
        return Span(record, self._clock)

    def record(self, type_: str, **fields: Any) -> None:
        """Append a raw record (manifest/summary blocks)."""
        record: Dict[str, Any] = {"type": type_, "wall": self._clock()}
        record.update(fields)
        self._records.append(record)

    # -- access / flush -----------------------------------------------------

    @property
    def records(self) -> Tuple[Dict[str, Any], ...]:
        """Snapshot of the records collected so far (common fields merged)."""
        return tuple(self._finalized())

    def __len__(self) -> int:
        return len(self._records)

    def _finalized(self) -> List[Dict[str, Any]]:
        if not self.common:
            return list(self._records)
        merged = []
        for record in self._records:
            out = dict(self.common)
            out.update(record)
            merged.append(out)
        return merged

    def write(self, path: str) -> int:
        """Append all records to ``path`` as JSONL; returns the count."""
        return write_jsonl(path, self._finalized())

    def write_part(self, parts_dir: str, label: str = "trace") -> Optional[str]:
        """Write records to a uniquely-named part file in ``parts_dir``.

        The name embeds the pid and a per-process sequence number, so
        concurrent workers (and repeated jobs in one worker) can never
        collide — this is what makes the sink process-safe without any
        locking.  Returns the part path (``None`` when empty).
        """
        if not self._records:
            return None
        os.makedirs(parts_dir, exist_ok=True)
        safe = "".join(ch if (ch.isalnum() or ch in "._-") else "_" for ch in label)
        part = os.path.join(
            parts_dir, f"{safe}-{os.getpid()}-{next(_PART_SEQUENCE)}.part.jsonl"
        )
        write_jsonl(part, self._finalized())
        return part


class _NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False
    common: Dict[str, Any] = {}
    _NULL_SPAN = _NullSpan()

    def event(self, name: str, sim_time: Optional[float] = None, **fields: Any) -> None:
        pass

    def begin(self, name: str, sim_time: Optional[float] = None, **fields: Any) -> _NullSpan:
        return self._NULL_SPAN

    def record(self, type_: str, **fields: Any) -> None:
        pass

    @property
    def records(self) -> Tuple[Dict[str, Any], ...]:
        return ()

    def __len__(self) -> int:
        return 0

    def write(self, path: str) -> int:
        return 0

    def write_part(self, parts_dir: str, label: str = "trace") -> None:
        return None


#: Shared singleton used wherever tracing is off.
NULL_TRACER = _NullTracer()


# -- files ------------------------------------------------------------------


def write_jsonl(path: str, records: Iterable[Dict[str, Any]]) -> int:
    """Append ``records`` to ``path``, one JSON object per line."""
    count = 0
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, default=str))
            handle.write("\n")
            count += 1
    return count


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file (blank lines skipped)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _record_order(record: Dict[str, Any]) -> float:
    for key in ("wall", "wall0"):
        value = record.get(key)
        if isinstance(value, (int, float)):
            return float(value)
    return float("inf")


def merge_trace_parts(
    parts_dir: str,
    out_path: str,
    head: Iterable[Dict[str, Any]] = (),
    remove_parts: bool = True,
) -> int:
    """Merge every part file under ``parts_dir`` into one JSONL trace.

    Records are ordered by wall-clock stamp (stable across equal
    stamps), ``head`` records (e.g. a campaign manifest) go first, and
    the part files are removed afterwards.  Returns the record count.
    """
    records: List[Dict[str, Any]] = []
    parts = []
    if os.path.isdir(parts_dir):
        parts = sorted(
            os.path.join(parts_dir, name)
            for name in os.listdir(parts_dir)
            if name.endswith(".part.jsonl")
        )
    for part in parts:
        records.extend(read_trace(part))
    records.sort(key=_record_order)
    merged = list(head) + records
    if os.path.exists(out_path):
        os.remove(out_path)
    count = write_jsonl(out_path, merged)
    if remove_parts:
        for part in parts:
            try:
                os.remove(part)
            except OSError:
                pass
        try:
            os.rmdir(parts_dir)
        except OSError:
            pass
    return count


class TraceSession:
    """Parent-side lifecycle of one traced run.

    Owns the final trace path, the parts directory workers write into,
    and the parent process's own :class:`Tracer` (executor events).
    ``finalize()`` merges everything into the final JSONL file.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self.parts_dir = self.path + ".parts"
        os.makedirs(self.parts_dir, exist_ok=True)
        self.tracer = Tracer(common={"job": "__parent__"})

    def finalize(self, head: Iterable[Dict[str, Any]] = ()) -> int:
        """Merge worker parts + parent records into ``self.path``."""
        self.tracer.write_part(self.parts_dir, label="parent")
        return merge_trace_parts(self.parts_dir, self.path, head=head)
