"""Metrics primitives: counters, gauges, fixed-bucket histograms.

:class:`MetricsRegistry` is the structured successor of the bare
``simkit.monitor`` TimeSeries/Counter pair (which now delegates here):
named metrics with a snapshot/merge protocol so per-worker registries
from a parallel campaign fold into one, and a text rendering for the
CLI's ``--metrics`` flag.

Histograms use fixed bucket bounds (Prometheus-style ``le`` semantics:
an observation lands in the first bucket whose upper bound is >= the
value), so percentiles are conservative upper estimates that merge
exactly across processes — no raw samples are shipped around.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "CounterBag",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
]

#: Default histogram bounds: 1-2.5-5 per decade over 1 us .. 1e6 s —
#: wide enough for both simulated phase times and wall-clock cell times.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0 ** e for e in range(-6, 7) for m in (1.0, 2.5, 5.0)
)


class Counter:
    """A single monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A single last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with conservative percentile estimates."""

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                "histogram buckets must be a strictly increasing, non-empty "
                f"sequence, got {buckets!r}"
            )
        self.name = name
        self.bounds = bounds
        #: One count per bound, plus the overflow bucket at the end.
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-th percentile.

        Returns ``nan`` when empty and ``inf`` when the rank lands in
        the overflow bucket (observation beyond the largest bound).
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return math.nan
        rank = math.ceil(self.count * q / 100.0) or 1
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index == len(self.bounds):
                    return math.inf
                return self.bounds[index]
        return math.inf  # pragma: no cover - rank <= count always hits


class MetricsRegistry:
    """Named counters/gauges/histograms with get-or-create access."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access -------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return metric

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly dump that :meth:`merge` can fold back in."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "count": h.count,
                }
                for n, h in self._histograms.items()
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a worker registry's snapshot into this one.

        Counters and histograms add; gauges take the incoming value.
        Histograms merge only when bucket bounds match exactly.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, dump in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, buckets=dump["bounds"])
            if list(histogram.bounds) != list(dump["bounds"]):
                raise ConfigurationError(
                    f"histogram {name!r} bucket bounds differ; cannot merge"
                )
            for index, count in enumerate(dump["counts"]):
                histogram.counts[index] += count
            histogram.total += dump["total"]
            histogram.count += dump["count"]

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        """A compact text dump (the CLI's ``--metrics`` output)."""
        lines: List[str] = []
        for name in sorted(self._counters):
            lines.append(f"counter   {name} = {self._counters[name].value:g}")
        for name in sorted(self._gauges):
            lines.append(f"gauge     {name} = {self._gauges[name].value:g}")
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            if histogram.count == 0:
                lines.append(f"histogram {name}: empty")
                continue
            p50, p95, p99 = (histogram.percentile(q) for q in (50, 95, 99))
            lines.append(
                f"histogram {name}: count={histogram.count} "
                f"mean={histogram.mean:.6g} p50<={p50:g} p95<={p95:g} p99<={p99:g}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"


# -- substrate primitives (absorbed from simkit.monitor) --------------------


class TimeSeries:
    """Records (time, value) samples of one quantity.

    The substrate behind :class:`repro.simkit.Monitor`, which stamps
    samples with its environment's clock.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def sample(self, time: float, value: float) -> None:
        """Append one (time, value) sample."""
        self.samples.append((float(time), float(value)))

    @property
    def values(self) -> List[float]:
        """Just the sampled values, in time order."""
        return [value for _time, value in self.samples]

    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(self.values) / len(self.samples)

    def total(self) -> float:
        """Sum of the samples."""
        return sum(self.values)

    def __len__(self) -> int:
        return len(self.samples)


class CounterBag:
    """A named bag of monotonically increasing counters.

    The substrate behind :class:`repro.simkit.Counter`; kept as a plain
    dict-of-floats because the MPI runtime hammers it on the hot path.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment ``name`` by ``amount``."""
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def __getitem__(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def merge(self, other: "CounterBag") -> None:
        """Fold another counter bag into this one."""
        for name, amount in other._counts.items():
            self.add(name, amount)

    def into_registry(self, registry: MetricsRegistry, prefix: str = "") -> None:
        """Fold this bag into a :class:`MetricsRegistry` as counters."""
        for name, amount in self._counts.items():
            registry.counter(prefix + name).inc(amount)
