"""Structured observability: traces, metrics, run manifests.

Three pieces, all zero-overhead when off:

* :mod:`repro.obs.trace` — JSONL span/event tracing (sim + wall time)
  with a process-safe sink for the parallel campaign executor;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with a cross-process snapshot/merge protocol;
* :mod:`repro.obs.manifest` — provenance records (config, seeds,
  versions, outcome) that make any trace self-describing.

:mod:`repro.obs.report` turns a merged trace back into the per-phase
time-breakdown table, and :mod:`repro.obs.session` bundles the lot for
the CLI.
"""

from .manifest import RunManifest, collect_versions, config_snapshot
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    CounterBag,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from .report import (
    JobPhases,
    TraceReport,
    build_report,
    render_report,
    report_from_file,
)
from .session import ObsSession
from .trace import (
    NULL_TRACER,
    Span,
    Tracer,
    TraceSession,
    merge_trace_parts,
    read_trace,
    write_jsonl,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_TRACER",
    "Counter",
    "CounterBag",
    "Gauge",
    "Histogram",
    "JobPhases",
    "MetricsRegistry",
    "ObsSession",
    "RunManifest",
    "Span",
    "TimeSeries",
    "TraceReport",
    "TraceSession",
    "Tracer",
    "build_report",
    "collect_versions",
    "config_snapshot",
    "merge_trace_parts",
    "read_trace",
    "render_report",
    "report_from_file",
    "write_jsonl",
]
