"""ObsSession: one run's observability bundle (trace + metrics).

The CLI (and the experiment entry points) deal with exactly one object:
an :class:`ObsSession` owns the optional :class:`~repro.obs.trace.TraceSession`
and the optional :class:`~repro.obs.metrics.MetricsRegistry`, hands the
right tracer/registry (or the null objects) to whoever asks, and
finalizes everything — merge the worker part files, prepend the
campaign manifest — in one call.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .manifest import RunManifest
from .metrics import MetricsRegistry
from .trace import NULL_TRACER, TraceSession

__all__ = ["ObsSession"]


class ObsSession:
    """Trace sink + metrics registry for one campaign/experiment run."""

    def __init__(
        self,
        trace_path: Optional[str] = None,
        metrics: bool = False,
    ) -> None:
        self.trace: Optional[TraceSession] = (
            TraceSession(trace_path) if trace_path else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )
        self.manifest: Optional[RunManifest] = None

    # -- what the layers consume --------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when anything is actually being collected."""
        return self.trace is not None or self.metrics is not None

    @property
    def tracer(self):
        """The parent-side tracer (the null tracer when tracing is off)."""
        return self.trace.tracer if self.trace is not None else NULL_TRACER

    @property
    def parts_dir(self) -> Optional[str]:
        """Directory worker jobs write their trace parts into."""
        return self.trace.parts_dir if self.trace is not None else None

    # -- lifecycle -----------------------------------------------------------

    def stamp(
        self,
        experiment: str,
        params: Optional[Dict[str, Any]] = None,
        base_seed: Optional[int] = None,
    ) -> Optional[RunManifest]:
        """Create the campaign manifest (written at finalize time)."""
        if not self.enabled:
            return None
        self.manifest = RunManifest.for_campaign(
            experiment, params=params, base_seed=base_seed
        )
        return self.manifest

    def finalize(self, **outcome: Any) -> int:
        """Merge trace parts (manifest first); returns the record count."""
        if self.manifest is not None and outcome:
            self.manifest.finish(**outcome)
        if self.trace is None:
            return 0
        head = []
        if self.manifest is not None:
            head.append(self.manifest.as_record())
        return self.trace.finalize(head=head)
