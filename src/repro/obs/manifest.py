"""Run manifests: enough provenance to reproduce any result.

A :class:`RunManifest` captures what produced a run — the fully
resolved configuration, the seeds, the toolchain versions and (once
known) the outcome.  Jobs embed their manifest as the first record of
their trace stream; campaigns write one manifest at the head of the
merged trace file, so a trace is self-describing: re-running the
config in the manifest with the same seed reproduces the records below
it bit for bit.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["RunManifest", "collect_versions", "config_snapshot"]


def collect_versions() -> Dict[str, str]:
    """Toolchain versions that shape a run's numbers."""
    from .._version import __version__

    versions = {
        "repro": __version__,
        "python": platform.python_version(),
    }
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        pass
    return versions


def _jsonable(value: Any) -> Any:
    """Coerce one config field into something JSON can carry.

    Callables (workload factories) and other opaque objects degrade to
    their ``repr`` — still enough to reconstruct the run by hand.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return repr(value)


def config_snapshot(config: Any) -> Dict[str, Any]:
    """A JSON-friendly dump of a (dataclass) configuration object."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {
            f.name: _jsonable(getattr(config, f.name))
            for f in dataclasses.fields(config)
        }
    if isinstance(config, dict):
        return {str(key): _jsonable(value) for key, value in config.items()}
    return {"config": repr(config)}


@dataclass
class RunManifest:
    """Config + seeds + versions + outcome of one job or campaign."""

    #: "job" or "campaign".
    kind: str
    #: Human-readable identity (the trace's ``job`` field for jobs,
    #: the experiment id for campaigns).
    label: str
    config: Dict[str, Any] = field(default_factory=dict)
    seeds: Dict[str, int] = field(default_factory=dict)
    versions: Dict[str, str] = field(default_factory=collect_versions)
    #: Wall-clock creation stamp (epoch seconds).
    created: float = field(default_factory=time.time)
    #: Filled in after the run: completed/total_time/... for jobs,
    #: cell counts and executor stats for campaigns.
    outcome: Dict[str, Any] = field(default_factory=dict)

    # -- constructors -------------------------------------------------------

    @classmethod
    def for_job(cls, config: Any, label: str) -> "RunManifest":
        """Manifest of one :class:`~repro.orchestration.job.JobConfig` run."""
        seeds = {}
        seed = getattr(config, "seed", None)
        if seed is not None:
            seeds["job"] = int(seed)
        return cls(
            kind="job",
            label=label,
            config=config_snapshot(config),
            seeds=seeds,
        )

    @classmethod
    def for_campaign(
        cls,
        experiment: str,
        params: Optional[Dict[str, Any]] = None,
        base_seed: Optional[int] = None,
    ) -> "RunManifest":
        """Manifest of one campaign/experiment invocation."""
        seeds = {} if base_seed is None else {"base": int(base_seed)}
        return cls(
            kind="campaign",
            label=experiment,
            config=config_snapshot(params or {}),
            seeds=seeds,
        )

    # -- use ----------------------------------------------------------------

    def finish(self, **outcome: Any) -> "RunManifest":
        """Record the run's outcome (merges into existing fields)."""
        self.outcome.update({key: _jsonable(value) for key, value in outcome.items()})
        return self

    def as_record(self) -> Dict[str, Any]:
        """The manifest as one trace record (``type: "manifest"``)."""
        record = dataclasses.asdict(self)
        record["type"] = "manifest"
        return record

    def write(self, path: str) -> None:
        """Persist as a standalone JSON document."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(dataclasses.asdict(self), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def read(cls, path: str) -> "RunManifest":
        """Load a manifest written by :meth:`write`."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload.pop("type", None)
        return cls(**payload)
