"""Post-mortem of a trace file: the per-phase time-breakdown table.

``repro-exp report <trace>`` loads a merged JSONL trace and, for every
job in it, folds the phase spans into the same categories as the
model's :class:`~repro.models.checkpointing.TimeBreakdown` (Eq. 14's
predicted breakdown): work, checkpoint, restart — so a simulated run
and the analytic prediction can be compared side by side.  (Observed
"work" includes recomputed steps; the model splits those out as its
``recompute`` share.)

The spans carry an exactness contract the report *verifies* rather
than assumes: a job's clock only advances inside its ``attempt`` and
``restart`` spans, and checkpointing happens inside attempts, so

* ``sum(attempt) + sum(restart)`` must equal the job's reported
  ``total_time``, and
* ``sum(checkpoint)`` must equal the reported checkpoint union time.

Any job whose spans disagree with its own summary record beyond the
tolerance (default 1%) marks the report failed — a torn trace (lost
part file, mid-run kill) is detected instead of silently mis-summing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..util.tables import render_table
from .trace import read_trace

__all__ = [
    "JobPhases",
    "TraceReport",
    "build_report",
    "render_report",
    "report_from_file",
]

#: Default reconciliation tolerance (relative).
DEFAULT_TOLERANCE = 0.01

#: The parent tracer's pseudo-job label (executor-side records).
PARENT_JOB = "__parent__"


def _span_seconds(record: Dict[str, Any]) -> float:
    t0, t1 = record.get("t0"), record.get("t1")
    if isinstance(t0, (int, float)) and isinstance(t1, (int, float)):
        return float(t1) - float(t0)
    return 0.0


@dataclass
class JobPhases:
    """Per-phase sim-time totals of one job, plus its own summary."""

    job: str
    attempts: float = 0.0
    checkpoint: float = 0.0
    restart: float = 0.0
    attempt_count: int = 0
    failures: int = 0
    #: From the job's summary record (None when the trace has no summary).
    reported_total: Optional[float] = None
    reported_checkpoint: Optional[float] = None
    completed: Optional[bool] = None

    @property
    def total(self) -> float:
        """Span-derived total: attempts plus restart windows."""
        return self.attempts + self.restart

    @property
    def work(self) -> float:
        """Attempt time minus the checkpoint union (includes rework)."""
        return self.attempts - self.checkpoint

    def discrepancy(self) -> float:
        """Worst relative disagreement between spans and the summary."""
        if self.reported_total is None:
            return 0.0
        scale = max(abs(self.reported_total), 1e-12)
        worst = abs(self.total - self.reported_total) / scale
        if self.reported_checkpoint is not None:
            worst = max(
                worst, abs(self.checkpoint - self.reported_checkpoint) / scale
            )
        return worst

    def fractions(self) -> Tuple[float, float, float]:
        """(work, checkpoint, restart) shares of the total."""
        total = self.total
        if total <= 0.0:
            return (0.0, 0.0, 0.0)
        return (self.work / total, self.checkpoint / total, self.restart / total)


@dataclass
class TraceReport:
    """Everything ``repro-exp report`` derives from one trace file."""

    jobs: List[JobPhases]
    tolerance: float = DEFAULT_TOLERANCE
    #: Campaign manifest record, when the trace head carries one.
    manifest: Optional[Dict[str, Any]] = None
    #: Executor-side (parent) counts: cells, timeouts, pool events.
    parent_events: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every job reconciles within the tolerance."""
        return all(job.discrepancy() <= self.tolerance for job in self.jobs)

    @property
    def failed_jobs(self) -> List[JobPhases]:
        return [job for job in self.jobs if job.discrepancy() > self.tolerance]


def build_report(
    records: Iterable[Dict[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> TraceReport:
    """Fold trace records into per-job phase totals."""
    jobs: Dict[str, JobPhases] = {}
    manifest: Optional[Dict[str, Any]] = None
    parent_events: Dict[str, int] = {}

    def phases_of(label: str) -> JobPhases:
        phases = jobs.get(label)
        if phases is None:
            phases = jobs[label] = JobPhases(job=label)
        return phases

    for record in records:
        label = record.get("job", "")
        kind = record.get("type")
        if label == PARENT_JOB:
            name = record.get("name", kind or "?")
            parent_events[name] = parent_events.get(name, 0) + 1
            continue
        if kind == "manifest" and record.get("kind") == "campaign":
            manifest = record
            continue
        if not label:
            continue
        phases = phases_of(label)
        if kind == "span":
            name = record.get("name")
            seconds = _span_seconds(record)
            if name == "attempt":
                phases.attempts += seconds
                phases.attempt_count += 1
            elif name == "checkpoint":
                phases.checkpoint += seconds
            elif name == "restart":
                phases.restart += seconds
        elif kind == "event":
            if record.get("name") == "failure":
                phases.failures += 1
        elif kind == "summary":
            total = record.get("total_time")
            if isinstance(total, (int, float)):
                phases.reported_total = float(total)
            union = record.get("checkpoint_union_time")
            if isinstance(union, (int, float)):
                phases.reported_checkpoint = float(union)
            completed = record.get("completed")
            if isinstance(completed, bool):
                phases.completed = completed

    ordered = sorted(jobs.values(), key=lambda phases: phases.job)
    return TraceReport(
        jobs=ordered,
        tolerance=tolerance,
        manifest=manifest,
        parent_events=parent_events,
    )


def render_report(report: TraceReport) -> str:
    """The printable per-phase breakdown table plus the verdict."""
    rows: List[List[Any]] = []
    totals = JobPhases(job="TOTAL")
    for job in report.jobs:
        work_f, ckpt_f, restart_f = job.fractions()
        status = "ok" if job.discrepancy() <= report.tolerance else "MISMATCH"
        rows.append(
            [
                job.job,
                round(job.total, 4),
                round(job.work, 4),
                round(job.checkpoint, 4),
                round(job.restart, 4),
                f"{work_f:.3f}",
                f"{ckpt_f:.3f}",
                f"{restart_f:.3f}",
                job.attempt_count,
                job.failures,
                status,
            ]
        )
        totals.attempts += job.attempts
        totals.checkpoint += job.checkpoint
        totals.restart += job.restart
        totals.attempt_count += job.attempt_count
        totals.failures += job.failures
    if len(report.jobs) > 1:
        work_f, ckpt_f, restart_f = totals.fractions()
        rows.append(
            [
                totals.job,
                round(totals.total, 4),
                round(totals.work, 4),
                round(totals.checkpoint, 4),
                round(totals.restart, 4),
                f"{work_f:.3f}",
                f"{ckpt_f:.3f}",
                f"{restart_f:.3f}",
                totals.attempt_count,
                totals.failures,
                "",
            ]
        )
    table = render_table(
        [
            "job",
            "total [s]",
            "work [s]",
            "ckpt [s]",
            "restart [s]",
            "work%",
            "ckpt%",
            "restart%",
            "attempts",
            "failures",
            "spans",
        ],
        rows,
        title="Per-phase time breakdown (sim seconds; cf. Eq. 14 / Tables 2-3)",
    )
    lines = [table]
    if report.manifest is not None:
        label = report.manifest.get("label", "?")
        versions = report.manifest.get("versions", {})
        lines.append("")
        lines.append(
            f"  campaign: {label} "
            f"(repro {versions.get('repro', '?')}, "
            f"numpy {versions.get('numpy', '?')})"
        )
    if report.parent_events:
        pairs = ", ".join(
            f"{name}={count}" for name, count in sorted(report.parent_events.items())
        )
        lines.append(f"  executor: {pairs}")
    lines.append("")
    if report.ok:
        lines.append(
            f"  reconciliation: all {len(report.jobs)} job(s) within "
            f"{report.tolerance:.1%} of their summary records"
        )
    else:
        bad = report.failed_jobs
        worst = max(job.discrepancy() for job in bad)
        lines.append(
            f"  reconciliation FAILED: {len(bad)} job(s) off by up to "
            f"{worst:.2%} (tolerance {report.tolerance:.1%}) — the trace "
            "is torn or incomplete"
        )
    return "\n".join(lines)


def report_from_file(
    path: str, tolerance: float = DEFAULT_TOLERANCE
) -> TraceReport:
    """Load a trace file and build its report."""
    return build_report(read_trace(path), tolerance=tolerance)
