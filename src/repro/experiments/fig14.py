"""Figure 14 — weak scaling to 200k processes: the throughput argument.

Extends Fig. 13's sweep and extracts the paper's headline economics:

* pure C/R (1x) blows up past ~80,000 processes ("exponential
  increases in execution time");
* at the *throughput break-even* point (paper: 78,536 processes) a
  dual-redundant job is at least 2x faster than the plain job — so two
  back-to-back 2x jobs finish within one 1x job's wallclock, and the
  doubled node count pays for itself in capacity computing;
* beyond a very large count (paper: 771,251) triple redundancy has the
  lowest cost of all degrees.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..errors import ModelDivergence
from ..models import find_crossover, throughput_break_even
from ..models.grid import total_time_grid
from ..util.plot import ascii_plot
from .fig13 import DEFAULT_DEGREES, base_model
from .runner import ExperimentResult


def run(
    max_processes: int = 200_000,
    samples: int = 18,
    degrees=DEFAULT_DEGREES,
    **model_params,
) -> ExperimentResult:
    """Regenerate the extended sweep and the break-even findings."""
    model = base_model(**model_params)
    counts = sorted(
        set(
            max(2, int(round(max_processes ** (i / (samples - 1)))))
            for i in range(samples)
        )
    )
    # One vectorized (degree x count) evaluation; inf marks divergence.
    times = total_time_grid(
        model,
        processes=np.asarray(counts, dtype=float),
        redundancy=np.asarray(degrees, dtype=float)[:, None],
    )
    columns = {
        degree: [float(units.to_hours(t)) for t in times[i]]
        for i, degree in enumerate(degrees)
    }
    rows = [
        [counts[i]] + [round(columns[degree][i], 1) for degree in degrees]
        for i in range(len(counts))
    ]
    plot = ascii_plot(
        {f"{degree}x": (counts, columns[degree]) for degree in degrees},
        logx=True,
        title="T_total [h] vs processes (log x)",
    )
    findings = {}
    try:
        break_even = throughput_break_even(model, redundancy=2.0, jobs=2)
        findings["two_2x_jobs_fit_in_one_1x_job_at"] = break_even.processes
    except ModelDivergence:
        findings["two_2x_jobs_fit_in_one_1x_job_at"] = None
    try:
        cross23 = find_crossover(model, 2.0, 3.0, max_processes=5_000_000)
        findings["3x_beats_2x_beyond"] = cross23.processes
    except ModelDivergence:
        findings["3x_beats_2x_beyond"] = None
    # Where does 1x effectively blow up (first sampled count with
    # T > 4x the failure-free time, or divergence)?
    failure_free = units.to_hours(model.base_time)
    blowup = None
    for i, count in enumerate(counts):
        if columns[1.0][i] > 4.0 * failure_free:
            blowup = count
            break
    findings["1x_blowup_processes"] = blowup
    findings["paper_reference_points"] = {
        "throughput_break_even": 78_536,
        "3x_cheapest_beyond": 771_251,
        "1x_exponential_after": 80_000,
    }
    return ExperimentResult(
        experiment="fig14",
        title="Fig. 14: modeled wallclock [h] of a 128 h job, to 200k processes",
        headers=["processes"] + [f"{d}x" for d in degrees],
        rows=rows,
        plot=plot,
        findings=findings,
        notes=[
            "inf = Eq. 14 diverged (lambda t_RR >= 1): the job never finishes",
            "break-even: smallest N with 2*T(2x) <= T(1x)",
        ],
    )
