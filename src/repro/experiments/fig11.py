"""Figure 11 — the simplified model's performance curves.

The paper models its *experimental* setup (failures suppressed during
C/R, rollback-to-checkpoint restart) with the simplified time function
of Section 6, observation 5, at the measured parameters: c = 120 s,
R = 500 s, alpha = 0.2, t = 46 min, N = 128 processes, node MTBF 6-30 h.
This module evaluates exactly that and reports minutes per (MTBF,
degree) cell — the modeled counterpart of Figure 8 / Table 4.
"""

from __future__ import annotations

import math

from .. import units
from ..errors import ModelDivergence
from ..models.redundancy import PAPER_REDUNDANCY_GRID
from ..models.simplified import simplified_total_time
from ..util.plot import ascii_plot
from .runner import ExperimentResult

PAPER_MTBF_HOURS = (6.0, 12.0, 18.0, 24.0, 30.0)


def modeled_minutes(
    mtbf_hours: float,
    degree: float,
    virtual_processes: int = 128,
    base_time: float = units.minutes(46),
    alpha: float = 0.2,
    checkpoint_cost: float = 120.0,
    restart_cost: float = 500.0,
) -> float:
    """One cell of the simplified model, in minutes."""
    try:
        total = simplified_total_time(
            virtual_processes=virtual_processes,
            redundancy=degree,
            node_mtbf=units.hours(mtbf_hours),
            alpha=alpha,
            base_time=base_time,
            checkpoint_cost=checkpoint_cost,
            restart_cost=restart_cost,
        )
    except ModelDivergence:
        return math.inf
    return units.to_minutes(total)


def run(
    virtual_processes: int = 128,
    base_time_minutes: float = 46.0,
    alpha: float = 0.2,
    checkpoint_cost: float = 120.0,
    restart_cost: float = 500.0,
    mtbf_hours=PAPER_MTBF_HOURS,
    degrees=PAPER_REDUNDANCY_GRID,
) -> ExperimentResult:
    """Regenerate the modeled application-performance matrix."""
    rows = []
    minima = {}
    for mtbf in mtbf_hours:
        cells = [
            modeled_minutes(
                mtbf,
                degree,
                virtual_processes=virtual_processes,
                base_time=units.minutes(base_time_minutes),
                alpha=alpha,
                checkpoint_cost=checkpoint_cost,
                restart_cost=restart_cost,
            )
            for degree in degrees
        ]
        best = min(range(len(cells)), key=lambda i: cells[i])
        minima[f"{mtbf:.0f}h"] = degrees[best]
        rows.append([f"{mtbf:.0f} hrs"] + [round(cell, 1) for cell in cells])
    plot = ascii_plot(
        {
            f"{row[0]}": (list(degrees), [float(x) for x in row[1:]])
            for row in rows
        },
        title="modeled execution time [min] vs redundancy degree",
    )
    return ExperimentResult(
        experiment="fig11",
        title=(
            "Fig. 11: modeled application performance [minutes] "
            f"(simplified model, N={virtual_processes}, t={base_time_minutes:.0f} min)"
        ),
        headers=["MTBF"] + [f"{d}x" for d in degrees],
        rows=rows,
        plot=plot,
        findings={"argmin_degree_per_mtbf": minima},
        notes=[
            f"c={checkpoint_cost:.0f}s R={restart_cost:.0f}s alpha={alpha}",
            "T = t_Red + (t_Red/delta)c + t_Red*lambda_sys*R with Young's "
            "delta (the paper's printed sqrt(2cTheta) term, read as the "
            "interval; see models/simplified.py)",
        ],
    )
