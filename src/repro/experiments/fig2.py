"""Figure 2 — effect of the redundancy degree on system reliability.

Plots (as numeric series) ``R_sys(r)`` from Eq. 9 for the paper's
parameter families: node MTBF 2.5 vs 5 years, and two communication
ratios ``alpha``.  The expected features, which the benchmark asserts:

* reliability rises steeply with r and is monotone non-decreasing at
  the integer degrees;
* with the worse node MTBF (2.5 y) a given reliability target needs a
  higher degree ("node reliability alone demands triple redundancy");
* a larger alpha stretches t_Red and thus *lowers* the curve, leaving
  more room where partial redundancy pays.
"""

from __future__ import annotations

from .. import units
from ..models import redundant_time, system_reliability
from .runner import ExperimentResult

#: (label, node MTBF years, alpha) — the dashed/solid families of Fig. 2.
DEFAULT_CONFIGS = (
    ("theta=5y, alpha=0.2", 5.0, 0.2),
    ("theta=2.5y, alpha=0.2", 2.5, 0.2),
    ("theta=5y, alpha=0.75", 5.0, 0.75),
    ("theta=2.5y, alpha=0.75", 2.5, 0.75),
)


def reliability_curve(
    virtual_processes: int,
    base_time: float,
    node_mtbf: float,
    alpha: float,
    degrees,
):
    """``R_sys`` at each degree, with the Eq. 1 exposure time."""
    values = []
    for degree in degrees:
        exposure = redundant_time(base_time, alpha, degree)
        values.append(
            system_reliability(virtual_processes, degree, exposure, node_mtbf)
        )
    return values


def run(
    virtual_processes: int = 100_000,
    base_time_hours: float = 128.0,
    configs=DEFAULT_CONFIGS,
    degree_step: float = 0.125,
) -> ExperimentResult:
    """Regenerate the reliability-vs-degree series."""
    degrees = [1.0 + degree_step * i for i in range(int(round(2.0 / degree_step)) + 1)]
    base_time = units.hours(base_time_hours)
    columns = {}
    for label, mtbf_years, alpha in configs:
        columns[label] = reliability_curve(
            virtual_processes, base_time, units.years(mtbf_years), alpha, degrees
        )
    rows = [
        [round(degree, 3)] + [columns[label][i] for label, *_ in configs]
        for i, degree in enumerate(degrees)
    ]
    # Acceptance checks.
    integer_indices = [i for i, d in enumerate(degrees) if abs(d - round(d)) < 1e-9]
    monotone_at_integers = all(
        all(
            columns[label][a] <= columns[label][b] + 1e-12
            for a, b in zip(integer_indices, integer_indices[1:])
        )
        for label, *_ in configs
    )
    worse_mtbf_lower = all(
        columns[configs[1][0]][i] <= columns[configs[0][0]][i] + 1e-12
        for i in range(len(degrees))
    )
    return ExperimentResult(
        experiment="fig2",
        title=(
            f"Fig. 2: system reliability vs redundancy "
            f"(N={virtual_processes:,}, t={base_time_hours:.0f} h)"
        ),
        headers=["r"] + [label for label, *_ in configs],
        rows=rows,
        findings={
            "monotone_at_integer_degrees": monotone_at_integers,
            "lower_mtbf_needs_more_redundancy": worse_mtbf_lower,
            "r2_reliability_theta5": columns[configs[0][0]][integer_indices[1]],
        },
        notes=[
            "R_sys from Eq. 9 with the linearised node-failure probability",
            "exposure time per degree is t_Red from Eq. 1",
        ],
    )
