"""Figure 13 — modeled weak scaling of a 128-hour job to 30k processes.

The paper sweeps the full combined model over process counts under
weak scaling (constant per-process work, so the base time stays 128 h)
for degrees {1, 1.5, 2, 2.5, 3} and reads off two crossovers:

* 1x → 2x at 4,351 processes,
* 1x → 3x at 12,551 processes,

with partial degrees never winning at these settings.  The exact
crossover counts depend on the (unpublished) c and R; the defaults
below (c = 8 min, R = 12 min) put all four of the paper's reference
points — both crossovers, Fig. 14's 78,536-process throughput
break-even and its 771,251-process 3x takeover — within ~15% of the
published values, and the benchmark asserts the ordering and bands.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..errors import ModelDivergence
from ..models import CombinedModel, find_crossover
from ..models.grid import total_time_grid
from ..util.plot import ascii_plot
from .runner import ExperimentResult

DEFAULT_DEGREES = (1.0, 1.5, 2.0, 2.5, 3.0)


def base_model(
    base_time_hours: float = 128.0,
    node_mtbf_years: float = 5.0,
    alpha: float = 0.2,
    checkpoint_cost: float = units.minutes(8),
    restart_cost: float = units.minutes(12),
) -> CombinedModel:
    """The Fig. 13/14 parameter set (process count is swept)."""
    return CombinedModel(
        virtual_processes=1000,
        redundancy=1.0,
        node_mtbf=units.years(node_mtbf_years),
        alpha=alpha,
        base_time=units.hours(base_time_hours),
        checkpoint_cost=checkpoint_cost,
        restart_cost=restart_cost,
    )


def run(
    max_processes: int = 30_000,
    samples: int = 16,
    degrees=DEFAULT_DEGREES,
    **model_params,
) -> ExperimentResult:
    """Regenerate the wallclock-vs-processes series and crossovers."""
    model = base_model(**model_params)
    counts = [
        max(2, int(round(max_processes ** (i / (samples - 1)))))
        for i in range(samples)
    ]
    counts = sorted(set(counts))
    # One vectorized (degree x count) evaluation instead of a scalar
    # model call per cell; divergent cells come back as inf.
    times = total_time_grid(
        model,
        processes=np.asarray(counts, dtype=float),
        redundancy=np.asarray(degrees, dtype=float)[:, None],
    )
    columns = {
        degree: [float(units.to_hours(t)) for t in times[i]]
        for i, degree in enumerate(degrees)
    }
    rows = [
        [counts[i]] + [round(columns[degree][i], 1) for degree in degrees]
        for i in range(len(counts))
    ]
    plot = ascii_plot(
        {f"{degree}x": (counts, columns[degree]) for degree in degrees},
        logx=True,
        title="T_total [h] vs processes (log x)",
    )
    findings = {}
    try:
        cross2 = find_crossover(model, 1.0, 2.0, max_processes=10_000_000)
        findings["crossover_1x_to_2x_processes"] = cross2.processes
    except ModelDivergence:
        findings["crossover_1x_to_2x_processes"] = None
    try:
        cross3 = find_crossover(model, 1.0, 3.0, max_processes=10_000_000)
        findings["crossover_1x_to_3x_processes"] = cross3.processes
    except ModelDivergence:
        findings["crossover_1x_to_3x_processes"] = None
    findings["paper_crossovers"] = {"1x->2x": 4351, "1x->3x": 12551}
    # Partial degrees never optimal across the sweep (paper's finding).
    partial_never_best = True
    for i in range(len(counts)):
        best = min(degrees, key=lambda d: columns[d][i])
        if best not in (1.0, 2.0, 3.0):
            partial_never_best = False
            break
    findings["partial_redundancy_never_optimal"] = partial_never_best
    return ExperimentResult(
        experiment="fig13",
        title="Fig. 13: modeled wallclock [h] of a 128 h job, weak scaling",
        headers=["processes"] + [f"{d}x" for d in degrees],
        rows=rows,
        plot=plot,
        findings=findings,
        notes=[
            "weak scaling: base time constant; only N grows",
            "crossover = smallest N where the higher degree completes no later",
        ],
    )
