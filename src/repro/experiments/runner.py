"""Experiment registry and the shared result record."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from ..errors import ConfigurationError
from ..util.tables import render_table

#: experiment id -> module name (within repro.experiments).
_REGISTRY = {
    "table1": "table1",
    "table2": "table2",
    "table3": "table3",
    "fig2": "fig2",
    "figs4to6": "figs4to6",
    "table4": "table4",
    "table5": "table5",
    "fig11": "fig11",
    "fig12": "fig12",
    "fig13": "fig13",
    "fig14": "fig14",
    "chaos": "chaos",
}


@dataclass
class ExperimentResult:
    """What one experiment regeneration produced."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[List[Any]]
    #: Free-form commentary: parameters used, acceptance checks, caveats.
    notes: List[str] = field(default_factory=list)
    #: Named scalar findings (crossover points, fit statistics, ...).
    findings: Dict[str, Any] = field(default_factory=dict)
    #: Optional ASCII rendering of the figure (line plots).
    plot: str = ""

    def render(self) -> str:
        """The printable artifact (table + plot + notes + findings)."""
        parts = [render_table(self.headers, self.rows, title=self.title)]
        if self.plot:
            parts.append("")
            parts.append(self.plot)
        if self.findings:
            parts.append("")
            for name in sorted(self.findings):
                parts.append(f"  {name}: {self.findings[name]}")
        if self.notes:
            parts.append("")
            parts.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(parts)


def list_experiments() -> List[str]:
    """All registered experiment ids."""
    return sorted(_REGISTRY)


def get_experiment(experiment: str):
    """Import and return the experiment module for an id."""
    try:
        module_name = _REGISTRY[experiment]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown experiment {experiment!r}; known: {list_experiments()}"
        ) from exc
    return importlib.import_module(f"repro.experiments.{module_name}")


def run_experiment(experiment: str, **params) -> ExperimentResult:
    """Run an experiment by id with optional parameter overrides."""
    return get_experiment(experiment).run(**params)
