"""experiments — regeneration code for every table and figure.

Each module exposes ``run(**params) -> ExperimentResult`` with defaults
that reproduce the paper's setting (scaled down where the experiment is
a simulation — see DESIGN.md's substitution table).  The registry in
:mod:`runner` maps experiment ids (``table2``, ``fig13``, ...) to their
modules; the CLI and the benchmark harness both go through it.

Index (paper artifact → module):

=========  ==============================================
table1     historical cluster reliability + implied per-node MTBF
table2     168 h job breakdown vs node count (5 y node MTBF)
table3     100 k node job breakdown vs job length / MTBF
fig2       system reliability vs redundancy degree
figs4to6   modeled total time vs degree, three configurations
table4     simulated C/R + redundancy campaign (also Figs. 8-9)
table5     failure-free redundancy overhead (also Fig. 10)
fig11      simplified-model performance curves
fig12      observed-vs-modeled overlay + Q-Q fit
fig13      modeled weak scaling to 30 k processes (crossovers)
fig14      modeled weak scaling to 200 k processes (throughput)
=========  ==============================================
"""

from .runner import ExperimentResult, get_experiment, list_experiments, run_experiment

__all__ = [
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
