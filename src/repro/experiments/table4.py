"""Table 4 / Figures 8-9 — the simulated C/R + redundancy campaign.

The paper's headline experiment: NPB CG (128 processes, 46 min
failure-free) under RedMPI + BLCR on a 108-node cluster, with injected
Poisson failures (node MTBF 6-30 h) and Daly-interval checkpointing,
swept over redundancy 1x-3x in 0.25x steps.  The reported metric is
total execution time in minutes; Figure 8 is the line-graph rendering
and Figure 9 the surface rendering of the same matrix.

Our campaign re-runs the experiment on the simulator at 1/8 the
process count and a compressed time scale (see ``ScaledSetup``): one
paper-minute is ``time_scale`` simulated seconds and MTBFs shrink by
the process-count ratio so the *expected failure counts per run* match
the paper's regime.  Expected shape (the paper's observations 1-4):

* lowest time at high degrees (~3x) for the 6 h MTBF row;
* lowest time at 2x for the 18-30 h rows;
* partial degrees just above an integer (1.25x, 2.25x) are poor —
  the sphere on the critical path already pays the next level's
  communication amplification while the failure rate barely drops.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import Optional, Sequence

from ..models.redundancy import PAPER_REDUNDANCY_GRID
from ..obs import NULL_TRACER, ObsSession
from ..orchestration import JobConfig, run_redundancy_sweep
from ..orchestration.campaign import cells_to_matrix
from ..util.plot import ascii_heatmap, ascii_plot
from ..workloads import SyntheticWorkload
from .runner import ExperimentResult

PAPER_MTBF_HOURS = (6.0, 12.0, 18.0, 24.0, 30.0)

#: Paper Table 4, for side-by-side comparison [minutes].
PAPER_TABLE4 = {
    6.0: (275, 279, 212, 189, 146, 158, 139, 132, 123),
    12.0: (201, 207, 167, 143, 103, 113, 98, 111, 125),
    18.0: (184, 179, 148, 120, 72, 126, 88, 80, 84),
    24.0: (159, 143, 133, 100, 67, 92, 78, 84, 83),
    30.0: (136, 128, 110, 101, 66, 73, 80, 82, 84),
}


@dataclass(frozen=True)
class ScaledSetup:
    """The scaled-down stand-in for the paper's testbed run.

    ``time_scale`` maps paper-minutes to simulated seconds; process
    count shrinks 128 → ``virtual_processes`` and the per-node MTBF
    shrinks by the same ratio on top of the time scaling, so the
    expected number of failures per run matches the paper's regime.
    """

    virtual_processes: int = 16
    steps: int = 100
    compute_seconds: float = 0.035
    message_bytes: int = 160 * 1024
    network_bandwidth: float = 2e7
    network_latency: float = 5e-5
    #: paper-minute → simulated seconds.
    time_scale: float = 0.1
    #: paper checkpoint cost: 120 s = 2 paper-minutes.
    checkpoint_cost_paper_minutes: float = 2.0
    #: paper restart cost: 500 s ~= 8.33 paper-minutes.
    restart_cost_paper_minutes: float = 500.0 / 60.0
    alpha_estimate: float = 0.19
    expected_base_time: float = 4.37  # simulated seconds, measured at r=1
    base_seed: int = 20120612  # ICDCS 2012

    def mtbf_to_sim(self, mtbf_hours: float) -> float:
        """Scale a paper per-node MTBF into simulated seconds."""
        paper_minutes = mtbf_hours * 60.0
        process_ratio = 128.0 / self.virtual_processes
        return paper_minutes * self.time_scale / process_ratio

    def sim_to_paper_minutes(self, sim_seconds: float) -> float:
        """Report a simulated duration in paper-minutes."""
        return sim_seconds / self.time_scale

    def job_config(self) -> JobConfig:
        """The base job configuration (MTBF/degree filled by the sweep).

        The workload factory is a ``functools.partial`` over the
        importable :class:`~repro.workloads.SyntheticWorkload` class —
        not a closure — so the whole config pickles and the campaign
        can fan out over worker processes.
        """
        factory = partial(
            SyntheticWorkload,
            total_steps=self.steps,
            compute_seconds=self.compute_seconds,
            message_bytes=self.message_bytes,
        )

        return JobConfig(
            workload_factory=factory,
            virtual_processes=self.virtual_processes,
            seed=self.base_seed,
            checkpoint_cost=self.checkpoint_cost_paper_minutes * self.time_scale,
            restart_cost=self.restart_cost_paper_minutes * self.time_scale,
            expected_base_time=self.expected_base_time,
            alpha_estimate=self.alpha_estimate,
            network_bandwidth=self.network_bandwidth,
            network_latency=self.network_latency,
        )


def run(
    setup: Optional[ScaledSetup] = None,
    mtbf_hours: Sequence[float] = PAPER_MTBF_HOURS,
    degrees: Sequence[float] = PAPER_REDUNDANCY_GRID,
    quick: bool = False,
    progress=None,
    workers: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    cell_retries: Optional[int] = None,
    obs: Optional[ObsSession] = None,
    store=None,
) -> ExperimentResult:
    """Run the campaign grid and render the Table 4 matrix.

    ``quick=True`` shrinks the grid to 3 MTBFs x 5 degrees (handy from
    the CLI); ``progress`` (optional) is called with each finished cell;
    ``workers`` (or the ``REPRO_WORKERS`` env var) fans the grid out
    over a process pool with bit-identical results.  ``obs`` (an
    :class:`~repro.obs.ObsSession`) turns on tracing/metrics: every
    cell's job writes a trace part, merged into one JSONL file at the
    end.  Tracing never touches the simulation clock, so traced results
    equal untraced ones.  ``store`` (a
    :class:`~repro.store.ResultsStore`) makes the campaign resumable:
    stored cells are restored instead of re-run and completed cells are
    persisted as they finish.
    """
    setup = setup or ScaledSetup()
    if quick:
        mtbf_hours = (6.0, 18.0, 30.0)
        degrees = (1.0, 1.5, 2.0, 2.5, 3.0)
    base = setup.job_config()
    if obs is not None and obs.enabled:
        obs.stamp(
            "table4",
            params={"quick": quick, "mtbf_hours": list(mtbf_hours),
                    "degrees": list(degrees), "setup": setup},
            base_seed=setup.base_seed,
        )
        if obs.parts_dir is not None:
            base = replace(base, trace_dir=obs.parts_dir)
    cells = run_redundancy_sweep(
        base,
        node_mtbfs=[setup.mtbf_to_sim(h) for h in mtbf_hours],
        degrees=list(degrees),
        progress=progress,
        workers=workers,
        cell_timeout=cell_timeout,
        cell_retries=cell_retries,
        tracer=obs.tracer if obs is not None else NULL_TRACER,
        metrics=obs.metrics if obs is not None else None,
        store=store,
    )
    if obs is not None and obs.enabled:
        obs.finalize(cells=len(cells))
    matrix = cells_to_matrix(cells)
    rows = []
    minima = {}
    sim_mtbfs = [setup.mtbf_to_sim(h) for h in mtbf_hours]
    for hours, sim_mtbf in zip(mtbf_hours, sim_mtbfs):
        row_cells = matrix[sim_mtbf]
        paper_minutes = {
            degree: setup.sim_to_paper_minutes(minutes * 60.0)
            for degree, minutes in row_cells.items()
        }
        best = min(paper_minutes, key=paper_minutes.get)
        minima[f"{hours:.0f}h"] = best
        rows.append(
            [f"{hours:.0f} hrs"]
            + [round(paper_minutes[degree], 1) for degree in degrees]
        )
    matrix_minutes = [[float(cell) for cell in row[1:]] for row in rows]
    fig8 = ascii_plot(
        {
            f"{hours:.0f}h": (list(degrees), matrix_minutes[i])
            for i, hours in enumerate(mtbf_hours)
        },
        title="Fig. 8 rendering: execution time [min] vs redundancy degree",
    )
    fig9 = ascii_heatmap(
        matrix_minutes,
        row_labels=[f"{hours:.0f}h" for hours in mtbf_hours],
        column_labels=[f"{d}x" for d in degrees],
        title="Fig. 9 rendering: execution-time surface (darker = slower)",
    )
    return ExperimentResult(
        experiment="table4",
        title=(
            "Table 4: simulated C/R + redundancy execution time "
            "[paper-minutes equivalent]"
        ),
        headers=["MTBF"] + [f"{d}x" for d in degrees],
        rows=rows,
        plot=fig8 + "\n\n" + fig9,
        findings={
            "argmin_degree_per_mtbf": minima,
            "paper_argmin": {"6h": 3.0, "12h": 2.5, "18h": 2.0, "24h": 2.0, "30h": 2.0},
            "paper_table4_minutes": {f"{k:.0f}h": v for k, v in PAPER_TABLE4.items()},
        },
        notes=[
            f"scaled setup: N={setup.virtual_processes} (paper 128), "
            f"1 paper-minute = {setup.time_scale} sim-seconds, per-node MTBF "
            "additionally shrunk by the process ratio to preserve failure counts",
            "cells are single stochastic runs (as in the paper); expect noise",
        ],
    )


def run_campaign_cells(
    setup: Optional[ScaledSetup] = None,
    mtbf_hours: Sequence[float] = PAPER_MTBF_HOURS,
    degrees: Sequence[float] = PAPER_REDUNDANCY_GRID,
    workers: Optional[int] = None,
):
    """Raw campaign cells (used by fig12's observed-vs-modeled overlay)."""
    setup = setup or ScaledSetup()
    base = setup.job_config()
    return setup, run_redundancy_sweep(
        base,
        node_mtbfs=[setup.mtbf_to_sim(h) for h in mtbf_hours],
        degrees=list(degrees),
        workers=workers,
    )
