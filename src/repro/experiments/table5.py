"""Table 5 / Figure 10 — failure-free execution time vs redundancy.

The paper's separate experiment supporting observation (4): run the
application with *no* failures and *no* checkpointing at every degree
and compare against the Eq. 1 linear expectation
``t_Red = (1 - alpha) t + alpha t r`` with alpha = 0.2.  Their
observed times rise **super-linearly**, with the largest jump at the
very first step (1x → 1.25x): turning partial redundancy on at all
puts a replicated sphere on the critical path of every collective, so
the whole job immediately pays most of the next level's communication
amplification.  Our simulator reproduces that mechanism natively.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..models.redundancy import PAPER_REDUNDANCY_GRID, redundant_time
from ..obs import NULL_TRACER, ObsSession
from ..orchestration import run_failure_free_sweep
from .runner import ExperimentResult
from .table4 import ScaledSetup

#: Paper Table 5 [minutes]: observed and expected-linear rows.
PAPER_OBSERVED = (46, 55, 59, 61, 63, 70, 76, 78, 82)
PAPER_EXPECTED = (46, 48, 51, 53, 55, 58, 60, 62, 64)


def run(
    setup: Optional[ScaledSetup] = None,
    degrees: Sequence[float] = PAPER_REDUNDANCY_GRID,
    alpha: float = 0.2,
    workers: Optional[int] = None,
    progress=None,
    cell_timeout: Optional[float] = None,
    cell_retries: Optional[int] = None,
    obs: Optional[ObsSession] = None,
    store=None,
) -> ExperimentResult:
    """Run the failure-free sweep and compare to the linear expectation.

    ``workers`` (or ``REPRO_WORKERS``) runs the per-degree cells in a
    process pool; results are identical to the serial sweep.  ``obs``
    turns on tracing/metrics (see :mod:`repro.obs`); ``store`` makes
    the sweep resumable (see :mod:`repro.store`).
    """
    setup = setup or ScaledSetup()
    base = setup.job_config()
    if obs is not None and obs.enabled:
        obs.stamp(
            "table5",
            params={"degrees": list(degrees), "alpha": alpha, "setup": setup},
            base_seed=setup.base_seed,
        )
        if obs.parts_dir is not None:
            base = replace(base, trace_dir=obs.parts_dir)
    cells = run_failure_free_sweep(
        base,
        degrees=list(degrees),
        workers=workers,
        progress=progress,
        cell_timeout=cell_timeout,
        cell_retries=cell_retries,
        tracer=obs.tracer if obs is not None else NULL_TRACER,
        metrics=obs.metrics if obs is not None else None,
        store=store,
    )
    if obs is not None and obs.enabled:
        obs.finalize(cells=len(cells))
    observed = {cell.redundancy: cell.report.total_time for cell in cells}
    base_time = observed[1.0]
    observed_minutes = [
        setup.sim_to_paper_minutes(observed[degree]) for degree in degrees
    ]
    expected_minutes = [
        setup.sim_to_paper_minutes(redundant_time(base_time, alpha, degree))
        for degree in degrees
    ]
    rows = [
        ["observed"] + [round(x, 1) for x in observed_minutes],
        ["expected linear"] + [round(x, 1) for x in expected_minutes],
    ]
    ordered = list(degrees)
    first_step_jump = (observed[ordered[1]] - observed[ordered[0]]) / observed[
        ordered[0]
    ]
    last_step_jump = (observed[ordered[-1]] - observed[ordered[-2]]) / observed[
        ordered[0]
    ]
    super_linear_somewhere = any(
        obs > exp * 1.001 for obs, exp in zip(observed_minutes, expected_minutes)
    )
    return ExperimentResult(
        experiment="table5",
        title="Table 5 / Fig. 10: failure-free execution time vs redundancy "
        "[paper-minutes equivalent]",
        headers=["series"] + [f"{d}x" for d in degrees],
        rows=rows,
        findings={
            "first_step_relative_jump": round(first_step_jump, 4),
            "last_step_relative_jump": round(last_step_jump, 4),
            "first_step_is_largest": first_step_jump >= last_step_jump,
            "observed_super_linear_somewhere": super_linear_somewhere,
            "paper_observed_minutes": list(PAPER_OBSERVED),
            "paper_expected_minutes": list(PAPER_EXPECTED),
        },
        notes=[
            "no failures, no checkpointing; pure redundancy overhead",
            "expected-linear row is Eq. 1 at alpha=0.2, as in the paper",
            "the 1x->1.25x jump exceeds later steps because one replicated "
            "sphere already gates every collective (critical-path effect)",
        ],
    )
