"""Table 1 — reliability of historical HPC clusters.

The paper reprints published MTBF/I figures [Hsu & Feng 2005].  The
reproducible content is the *model consistency check*: from each
system's reported MTBF and CPU count we back out the implied per-node
MTBF (``theta = N x Theta_sys`` under the Eq. 10 linearised model) and
confirm it lands in the single-digit-years range the rest of the paper
assumes — i.e. the literature numbers and the model's node-MTBF
parameter are the same quantity at different scales.
"""

from __future__ import annotations

from .. import units
from .runner import ExperimentResult

#: (system, cpu count, reported system MTBF/I in hours).
PAPER_ROWS = (
    ("ASCI Q", 8_192, 6.5),
    ("ASCI White", 8_192, 40.0),
    ("PSC Lemieux", 3_016, 9.7),
    ("Google", 15_000, 1.2),  # 20 reboots/day ~= one every 1.2 h
    ("ASC BG/L", 212_992, 6.9),
)


def implied_node_mtbf_years(cpus: int, system_mtbf_hours: float) -> float:
    """Per-node MTBF implied by a system MTBF under Eq. 10's aggregation.

    With independent exponential nodes, ``lambda_sys = N / theta``, so
    ``theta = N x Theta_sys``.
    """
    return units.to_years(units.hours(system_mtbf_hours) * cpus)


def run() -> ExperimentResult:
    """Regenerate Table 1 with the implied per-node MTBF appended."""
    rows = []
    for system, cpus, mtbf_hours in PAPER_ROWS:
        rows.append(
            [
                system,
                cpus,
                mtbf_hours,
                round(implied_node_mtbf_years(cpus, mtbf_hours), 1),
            ]
        )
    return ExperimentResult(
        experiment="table1",
        title="Table 1: reliability of HPC clusters (+ implied per-node MTBF)",
        headers=["system", "#CPUs", "MTBF/I [h]", "implied node MTBF [y]"],
        rows=rows,
        notes=[
            "reported columns are literature constants reprinted by the paper",
            "implied node MTBF = N x Theta_sys (Eq. 10, linearised); the",
            "single-digit-years results justify the 2.5-5 y node MTBFs used",
            "throughout the paper's model studies",
        ],
    )
