"""Table 3 — a 100k-node job under longer runs and worse MTBF.

The paper's point: for long jobs or short MTBFs, useful work becomes
*insignificant* — at 5,000 h of work on a 1-year-MTBF machine, 85% of
wallclock is restarts.  Regenerated from the same Eq. 12-15 pipeline
as Table 2.

One honest caveat (also in DESIGN.md): Eq. 14 is linear in the job
length ``t``, so the model's *shares* cannot vary between the 168 h
and 700 h rows the way the Sandia simulator's did (35% → 38%); the
dominant effect — the 1-year-MTBF row collapsing to single-digit
useful work — reproduces.
"""

from __future__ import annotations

from .. import units
from ..errors import ModelDivergence
from ..models import CombinedModel
from .runner import ExperimentResult

PAPER_ROWS = (
    (168.0, 5.0, 0.35),
    (700.0, 5.0, 0.38),
    (5_000.0, 1.0, 0.05),
)


def run(
    nodes: int = 100_000,
    checkpoint_cost: float = units.minutes(10),
    restart_cost: float = units.minutes(12),
    cases=PAPER_ROWS,
) -> ExperimentResult:
    """Regenerate the varied-(job length, MTBF) breakdown."""
    rows = []
    work_shares = []
    for job_hours, mtbf_years, paper_share in cases:
        model = CombinedModel(
            virtual_processes=nodes,
            redundancy=1.0,
            node_mtbf=units.years(mtbf_years),
            alpha=0.0,
            base_time=units.hours(job_hours),
            checkpoint_cost=checkpoint_cost,
            restart_cost=restart_cost,
        )
        try:
            breakdown = model.evaluate().breakdown
            rows.append(
                [
                    f"{job_hours:.0f} h",
                    f"{mtbf_years:.0f} y",
                    f"{breakdown.work:.0%}",
                    f"{breakdown.checkpoint:.0%}",
                    f"{breakdown.recompute:.0%}",
                    f"{breakdown.restart:.0%}",
                    f"{paper_share:.0%}",
                ]
            )
            work_shares.append(breakdown.work)
        except ModelDivergence:
            # The 1-year row can diverge outright (lambda t_RR >= 1):
            # the strongest possible form of "work becomes insignificant".
            rows.append(
                [
                    f"{job_hours:.0f} h",
                    f"{mtbf_years:.0f} y",
                    "~0% (diverged)",
                    "-",
                    "-",
                    "-",
                    f"{paper_share:.0%}",
                ]
            )
            work_shares.append(0.0)
    return ExperimentResult(
        experiment="table3",
        title=f"Table 3: {nodes:,}-node job, varied length and MTBF (model, r=1)",
        headers=["job work", "MTBF", "work", "checkpt", "recomp.", "restart", "paper work"],
        rows=rows,
        findings={
            "one_year_mtbf_work_share": work_shares[-1],
            "five_year_mtbf_work_share": work_shares[0],
        },
        notes=[
            "Eq. 14 shares are invariant in t, so rows 1-2 coincide by "
            "construction (the paper's 35% vs 38% came from a simulator)",
            "acceptance: the 1 y MTBF row shows near-zero useful work",
        ],
    )
