"""Figure 12 — observed vs modeled performance, with a Q-Q fit check.

The paper overlays the measured curves (Figure 8 / Table 4) on the
simplified-model curves (Figure 11) for selected MTBFs and reports
that "the trend followed by the observed curves is very similar to the
modeled curves, and a Q-Q plot ... indicates a close fit".

We perform the same validation *at the simulator's own parameters*:
the simplified model is evaluated with the campaign's N, measured base
time, measured alpha, and the configured c and R — so model and
simulation are compared in identical units, exactly the comparison the
paper makes between its model and its cluster.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..errors import ModelDivergence
from ..models.simplified import simplified_total_time
from ..util.stats import mean_abs_pct_error, pearson, qq_points
from .runner import ExperimentResult
from .table4 import ScaledSetup, run_campaign_cells

DEFAULT_DEGREES = (1.0, 1.5, 2.0, 2.5, 3.0)


def run(
    setup: Optional[ScaledSetup] = None,
    mtbf_hours: Sequence[float] = (6.0, 18.0, 30.0),
    degrees: Sequence[float] = DEFAULT_DEGREES,
) -> ExperimentResult:
    """Overlay simulation vs simplified model and compute fit statistics."""
    setup = setup or ScaledSetup()
    setup_used, cells = run_campaign_cells(
        setup, mtbf_hours=mtbf_hours, degrees=degrees
    )
    observed = {}
    for cell in cells:
        observed[(cell.node_mtbf, cell.redundancy)] = cell.report.total_time

    rows = []
    observed_list = []
    modeled_list = []
    for hours in mtbf_hours:
        sim_mtbf = setup_used.mtbf_to_sim(hours)
        for degree in degrees:
            obs = observed[(sim_mtbf, degree)]
            try:
                mod = simplified_total_time(
                    virtual_processes=setup_used.virtual_processes,
                    redundancy=degree,
                    node_mtbf=sim_mtbf,
                    alpha=setup_used.alpha_estimate,
                    base_time=setup_used.expected_base_time,
                    checkpoint_cost=setup_used.checkpoint_cost_paper_minutes
                    * setup_used.time_scale,
                    restart_cost=setup_used.restart_cost_paper_minutes
                    * setup_used.time_scale,
                    exact_reliability=True,
                )
            except ModelDivergence:
                mod = math.inf
            rows.append(
                [
                    f"{hours:.0f} hrs",
                    degree,
                    round(setup_used.sim_to_paper_minutes(obs), 1),
                    round(setup_used.sim_to_paper_minutes(mod), 1),
                    round(obs / mod, 3) if mod not in (0.0, math.inf) else math.nan,
                ]
            )
            if not math.isinf(mod):
                observed_list.append(obs)
                modeled_list.append(mod)

    correlation = pearson(observed_list, modeled_list)
    error = mean_abs_pct_error(observed_list, modeled_list)
    qq = qq_points(observed_list, modeled_list)
    qq_max_ratio = max(
        max(o / m, m / o) for o, m in qq if o > 0 and m > 0
    )
    return ExperimentResult(
        experiment="fig12",
        title="Fig. 12: observed (simulation) vs modeled (simplified model) "
        "[paper-minutes equivalent]",
        headers=["MTBF", "r", "observed", "modeled", "obs/mod"],
        rows=rows,
        findings={
            "pearson_correlation": round(correlation, 4),
            "mean_abs_pct_error": round(error, 4),
            "qq_worst_quantile_ratio": round(qq_max_ratio, 3),
            "paper_verdict": "close fit (trends similar, Q-Q near diagonal)",
        },
        notes=[
            "model evaluated at the simulator's own parameters (same N, "
            "measured base time and alpha, configured c and R)",
            "observed cells are single stochastic runs, as in the paper",
        ],
    )
