"""Table 2 — where a 168-hour job's time goes as the machine grows.

The paper reprints a Sandia-study table: with a 5-year per-node MTBF,
the useful-work share of a 168 h job collapses from 96% at 100 nodes
to 35% at 100,000 nodes, the rest lost to checkpoints, recomputation
and restarts.  We regenerate it from the Eq. 12-15 pipeline at r=1:
system failure rate from Eq. 10, Daly's interval from Eq. 15, and the
Eq. 14 breakdown split into the four reported shares.

Absolute shares depend on the (unpublished) checkpoint/restart costs
of the original study; the defaults below are chosen in that regime.
The acceptance criterion is the shape: monotone work-share decay and
restart dominating at 100 k nodes.
"""

from __future__ import annotations

import math

from .. import units
from ..models import CombinedModel
from .runner import ExperimentResult

PAPER_WORK_SHARES = {100: 0.96, 1_000: 0.92, 10_000: 0.75, 100_000: 0.35}


def run(
    node_counts=(100, 1_000, 10_000, 100_000),
    job_hours: float = 168.0,
    node_mtbf_years: float = 5.0,
    checkpoint_cost: float = units.minutes(10),
    restart_cost: float = units.minutes(12),
) -> ExperimentResult:
    """Regenerate the breakdown for each node count."""
    rows = []
    work_shares = []
    for nodes in node_counts:
        model = CombinedModel(
            virtual_processes=int(nodes),
            redundancy=1.0,
            node_mtbf=units.years(node_mtbf_years),
            alpha=0.0,  # r=1: redundancy overhead plays no role here
            base_time=units.hours(job_hours),
            checkpoint_cost=checkpoint_cost,
            restart_cost=restart_cost,
        )
        try:
            outcome = model.evaluate()
            breakdown = outcome.breakdown
            rows.append(
                [
                    int(nodes),
                    f"{breakdown.work:.0%}",
                    f"{breakdown.checkpoint:.0%}",
                    f"{breakdown.recompute:.0%}",
                    f"{breakdown.restart:.0%}",
                    round(units.to_hours(outcome.total_time), 1),
                ]
            )
            work_shares.append(breakdown.work)
        except Exception:  # ModelDivergence at extreme scale
            rows.append([int(nodes), "-", "-", "-", "-", math.inf])
            work_shares.append(0.0)
    monotone = all(
        earlier >= later for earlier, later in zip(work_shares, work_shares[1:])
    )
    return ExperimentResult(
        experiment="table2",
        title=(
            f"Table 2: {job_hours:.0f} h job, {node_mtbf_years:.0f} y node MTBF "
            "(model breakdown, r=1)"
        ),
        headers=["#nodes", "work", "checkpt", "recomp.", "restart", "T_total [h]"],
        rows=rows,
        findings={
            "work_share_monotone_decreasing": monotone,
            "paper_work_shares": PAPER_WORK_SHARES,
        },
        notes=[
            f"c = {checkpoint_cost / 60:.0f} min, R = {restart_cost / 60:.0f} min, "
            "Daly interval at the Eq. 10 system MTBF",
            "paper shares come from the Sandia study's simulator; ours from "
            "Eqs. 12-15 — shapes match, absolutes depend on unpublished c/R",
        ],
    )
