"""Figures 4-6 — modeled total time vs redundancy, three configurations.

The paper evaluates the combined pipeline (Eqs. 1, 10, 14, 15) for a
128-hour job under three (MTBF, alpha, checkpoint-cost) configurations
and annotates T_min / T_max / T_{r=1}, the expected checkpoint count
and the failure rate.  Headline observations reproduced here:

* a redundancy level of 2 is the best choice in all three
  configurations;
* comparing configs 1 and 3 (c differing by 10x) shows Daly's interval
  scaling as sqrt(10) and the checkpoint-time contribution shrinking
  accordingly.
"""

from __future__ import annotations

import math

import numpy as np

from .. import units
from ..models import CombinedModel
from ..models.grid import evaluate_model_grid
from ..util.plot import ascii_plot
from .runner import ExperimentResult

#: (name, node MTBF years, alpha, checkpoint cost s, restart cost s).
DEFAULT_CONFIGS = (
    ("config1", 5.0, 0.2, units.minutes(10), units.minutes(15)),
    ("config2", 2.5, 0.2, units.minutes(10), units.minutes(15)),
    ("config3", 5.0, 0.2, units.minutes(1), units.minutes(15)),
)


def sweep_configuration(
    virtual_processes: int,
    base_time: float,
    mtbf_years: float,
    alpha: float,
    checkpoint_cost: float,
    restart_cost: float,
    degrees,
):
    """One figure's sweep; returns (times in hours, annotations).

    The whole degree grid is evaluated in one vectorized
    :func:`~repro.models.grid.evaluate_model_grid` call; divergent
    degrees carry ``inf``.
    """
    model = CombinedModel(
        virtual_processes=virtual_processes,
        redundancy=1.0,
        node_mtbf=units.years(mtbf_years),
        alpha=alpha,
        base_time=base_time,
        checkpoint_cost=checkpoint_cost,
        restart_cost=restart_cost,
    )
    grid = evaluate_model_grid(model, redundancy=np.asarray(degrees, dtype=float))
    total = grid.total_time
    finite = np.isfinite(total)
    best_index = int(np.argmin(np.where(finite, total, np.inf)))
    worst_index = int(np.argmax(np.where(finite, total, -np.inf)))
    r1_index = list(degrees).index(1.0)
    r1_ok = bool(finite[r1_index])
    annotations = {
        "T_min_hours": units.to_hours(float(total[best_index])),
        "r_at_min": float(degrees[best_index]),
        "T_max_hours": units.to_hours(float(total[worst_index])),
        "T_r1_hours": units.to_hours(float(total[r1_index])) if r1_ok else math.inf,
        "chkpts_at_r1": (
            float(grid.expected_checkpoints[r1_index]) if r1_ok else math.nan
        ),
        "delta_at_r1_minutes": (
            units.to_minutes(float(grid.checkpoint_interval[r1_index]))
            if r1_ok
            else math.nan
        ),
        "lambda_at_min_per_hour": float(grid.failure_rate[best_index]) * 3600.0,
    }
    hours = [float(units.to_hours(t)) for t in total]
    return hours, annotations


def run(
    virtual_processes: int = 50_000,
    base_time_hours: float = 128.0,
    configs=DEFAULT_CONFIGS,
    degree_step: float = 0.25,
) -> ExperimentResult:
    """Regenerate the three T_total(r) curves with annotations."""
    degrees = [1.0 + degree_step * i for i in range(int(round(2.0 / degree_step)) + 1)]
    base_time = units.hours(base_time_hours)
    columns = {}
    annotations = {}
    for name, mtbf_years, alpha, c, r_cost in configs:
        hours, notes = sweep_configuration(
            virtual_processes, base_time, mtbf_years, alpha, c, r_cost, degrees
        )
        columns[name] = hours
        annotations[name] = notes
    rows = [
        [round(degree, 2)] + [round(columns[name][i], 1) for name, *_ in configs]
        for i, degree in enumerate(degrees)
    ]
    findings = {}
    for name in columns:
        for key, value in annotations[name].items():
            findings[f"{name}/{key}"] = round(value, 3) if isinstance(value, float) else value
    # Daly sqrt(10) check between config1 (c) and config3 (c/10).
    ratio = (
        annotations["config1"]["delta_at_r1_minutes"]
        / annotations["config3"]["delta_at_r1_minutes"]
    )
    findings["delta_ratio_config1_over_config3"] = round(ratio, 3)
    findings["expected_sqrt10"] = round(math.sqrt(10.0), 3)
    plot = ascii_plot(
        {name: (degrees, columns[name]) for name, *_ in configs},
        title="T_total [h] vs redundancy degree",
    )
    return ExperimentResult(
        experiment="figs4to6",
        title=(
            f"Figs. 4-6: modeled total time [h] vs redundancy "
            f"(N={virtual_processes:,}, t={base_time_hours:.0f} h)"
        ),
        headers=["r"] + [name for name, *_ in configs],
        rows=rows,
        plot=plot,
        findings=findings,
        notes=[
            f"{name}: theta={mt}y alpha={a} c={c:.0f}s R={rc:.0f}s"
            for name, mt, a, c, rc in configs
        ],
    )
