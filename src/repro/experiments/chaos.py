"""Chaos sweep — completion time vs injected storage-fault probability.

Not a paper artifact: a robustness experiment over the chaos-hardened
checkpoint/restart pipeline.  Small seeded jobs run under an injected
Poisson failure process *and* a :class:`~repro.faults.StorageFaultConfig`
whose probabilities are swept, in two modes:

* ``write-fail`` — every per-rank checkpoint write fails with
  probability ``p``; the service retries with capped backoff and skips
  the interval when a rank exhausts its retries;
* ``corrupt`` — every stored blob is silently bit-flipped with
  probability ``p``; restore detects the CRC mismatch and falls back
  line by line across the retained recovery sets.

Each measured point is compared against the analytic model (Eq. 14)
evaluated with chaos-adjusted parameters:

* write failures stretch the *effective* checkpoint interval: a set is
  skipped when any of the ``N`` ranks exhausts its ``m`` retries, so
  ``q = 1 - (1 - p^(m+1))^N`` and ``delta_eff = delta / (1 - q)`` (a
  skipped interval still pays the checkpoint cost, which the same
  stretch captures to first order);
* corruption stretches the *effective* restart cost: a retained line is
  unusable when any rank's blob is damaged, ``P_line = 1 - (1-p)^N``;
  each extra fallback line costs about one more interval of rework, the
  series truncates at the ``K`` retained lines, and falling off the end
  cold-starts (about half the base time redone on average):
  ``R_eff = R + delta * sum_{k=1..K-1} P_line^k
  + P_line^K * t_base / 2``.

The ``p = 0`` row doubles as the strict no-op check: with every
probability zero the chaos layer must not perturb the simulation at
all, so its completion time is the baseline the sweep is normalised
against.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import Optional, Sequence

from ..errors import ModelDivergence, ReproError
from ..faults import StorageFaultConfig
from ..models.checkpointing import total_time
from ..obs import NULL_TRACER, ObsSession
from ..orchestration import CampaignExecutor, CellSpec, JobConfig
from ..util.plot import ascii_plot
from ..workloads import SyntheticWorkload
from .runner import ExperimentResult

#: Fault probabilities swept in each mode (0 = baseline / no-op check).
DEFAULT_PROBS = (0.0, 0.02, 0.05, 0.1, 0.2, 0.3)
QUICK_PROBS = (0.0, 0.1, 0.3)


@dataclass(frozen=True)
class ChaosSetup:
    """A small, failure-prone job the fault sweep perturbs.

    Sized so one cell simulates in well under a second while still
    seeing several injected node failures (and therefore several
    restarts, which is what exercises the recovery-line fallback).
    """

    virtual_processes: int = 8
    steps: int = 60
    compute_seconds: float = 0.02
    message_bytes: int = 32 * 1024
    #: Per-node MTBF [s]; at r=1 the system rate is N/theta_node.
    node_mtbf: float = 4.0
    checkpoint_cost: float = 0.05
    restart_cost: float = 0.05
    expected_base_time: float = 1.6
    alpha_estimate: float = 0.2
    recovery_line_depth: int = 3
    checkpoint_max_retries: int = 2
    checkpoint_retry_backoff: float = 0.002
    seed: int = 20120612

    def job_config(self) -> JobConfig:
        """The fault-free base config (the sweep adds ``storage_faults``).

        The workload factory is a picklable ``functools.partial`` so
        cells can fan out over worker processes.
        """
        factory = partial(
            SyntheticWorkload,
            total_steps=self.steps,
            compute_seconds=self.compute_seconds,
            message_bytes=self.message_bytes,
        )
        return JobConfig(
            workload_factory=factory,
            virtual_processes=self.virtual_processes,
            redundancy=1.0,
            node_mtbf=self.node_mtbf,
            seed=self.seed,
            checkpoint_cost=self.checkpoint_cost,
            restart_cost=self.restart_cost,
            expected_base_time=self.expected_base_time,
            alpha_estimate=self.alpha_estimate,
            recovery_line_depth=self.recovery_line_depth,
            checkpoint_max_retries=self.checkpoint_max_retries,
            checkpoint_retry_backoff=self.checkpoint_retry_backoff,
        )

    @property
    def failure_rate(self) -> float:
        """System failure rate at r=1 (any of N nodes down = restart)."""
        return self.virtual_processes / self.node_mtbf


def _fault_config(setup: ChaosSetup, mode: str, prob: float) -> StorageFaultConfig:
    if mode == "write-fail":
        return StorageFaultConfig(write_fail_prob=prob, seed=setup.seed)
    if mode == "corrupt":
        return StorageFaultConfig(corrupt_prob=prob, seed=setup.seed)
    raise ReproError(f"unknown chaos mode {mode!r}")


def _predict(setup: ChaosSetup, delta: float, mode: str, prob: float) -> float:
    """Eq. 14 with chaos-adjusted delta / restart cost (see module doc).

    Returns ``inf`` when the adjusted model diverges (``lambda * t_RR
    >= 1``) — the simulator escapes that regime by cold-starting, the
    steady-state model cannot.
    """
    n = setup.virtual_processes
    delta_eff = delta
    restart_eff = setup.restart_cost
    if mode == "write-fail" and prob > 0.0:
        rank_exhausts = prob ** (setup.checkpoint_max_retries + 1)
        set_skipped = 1.0 - (1.0 - rank_exhausts) ** n
        if set_skipped >= 1.0:
            return float("inf")
        delta_eff = delta / (1.0 - set_skipped)
    elif mode == "corrupt" and prob > 0.0:
        line_bad = 1.0 - (1.0 - prob) ** n
        depth = setup.recovery_line_depth
        fallback_rework = sum(line_bad ** k for k in range(1, depth))
        cold_start = line_bad ** depth
        restart_eff = (
            setup.restart_cost
            + delta * fallback_rework
            + cold_start * setup.expected_base_time / 2.0
        )
    try:
        return total_time(
            base_time=setup.expected_base_time,
            delta=delta_eff,
            checkpoint_cost=setup.checkpoint_cost,
            failure_rate=setup.failure_rate,
            restart_cost=restart_eff,
        )
    except ModelDivergence:
        return float("inf")


def run(
    setup: Optional[ChaosSetup] = None,
    probs: Sequence[float] = DEFAULT_PROBS,
    quick: bool = False,
    workers: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    cell_retries: Optional[int] = None,
    progress=None,
    obs: Optional[ObsSession] = None,
    store=None,
) -> ExperimentResult:
    """Sweep T_total vs storage-fault probability in both chaos modes.

    ``quick=True`` shrinks the probability grid; ``workers`` fans the
    cells out over the self-healing process-pool executor (with
    ``cell_timeout``/``cell_retries`` bounding each cell).  ``obs``
    turns on tracing/metrics (see :mod:`repro.obs`); ``store`` makes
    the sweep resumable (see :mod:`repro.store`).
    """
    setup = setup or ChaosSetup()
    if quick:
        probs = QUICK_PROBS
    probs = sorted(set(float(p) for p in probs))
    if any(p < 0.0 or p > 1.0 for p in probs):
        raise ReproError(f"probabilities must be in [0, 1], got {probs}")
    base = setup.job_config()
    if obs is not None and obs.enabled:
        obs.stamp(
            "chaos",
            params={"quick": quick, "probs": list(probs), "setup": setup},
            base_seed=setup.seed,
        )
        if obs.parts_dir is not None:
            base = replace(base, trace_dir=obs.parts_dir)

    # One cell per (mode, p) point with common random numbers: the seed
    # (and hence the injected node-failure timeline) is shared across
    # every point, so differences are purely the storage faults.  The
    # p=0 baseline is run once and shared by both modes.
    points = [("baseline", 0.0)]
    points += [("write-fail", p) for p in probs if p > 0.0]
    points += [("corrupt", p) for p in probs if p > 0.0]
    specs = []
    for mode, prob in points:
        config = base
        if prob > 0.0:
            config = replace(
                base, storage_faults=_fault_config(setup, mode, prob)
            )
        if base.trace_dir is not None:
            # Chaos cells share seed/degree/MTBF, so the job's automatic
            # trace label would collide; name cells by (mode, p) instead.
            config = replace(config, trace_label=f"{mode}-p{prob:g}")
        # The spec's (node_mtbf, redundancy) coordinates are not
        # meaningful for this sweep; the probability rides in
        # ``redundancy`` so progress callbacks can distinguish cells.
        specs.append(
            CellSpec(node_mtbf=setup.node_mtbf, redundancy=prob, config=config)
        )

    executor = CampaignExecutor(
        workers=workers,
        cell_timeout=cell_timeout,
        cell_retries=cell_retries,
        tracer=obs.tracer if obs is not None else NULL_TRACER,
        metrics=obs.metrics if obs is not None else None,
        store=store,
    )
    outcomes = executor.run(specs, progress=progress)
    if obs is not None and obs.enabled:
        obs.finalize(cells=len(outcomes))
    failures = [o for o in outcomes if not o.ok]
    if failures:
        raise ReproError(
            f"{len(failures)} chaos cell(s) failed: "
            + "; ".join(f"{o.error_type}: {o.error}" for o in failures)
        )

    reports = dict(zip(points, (o.report for o in outcomes)))
    baseline = reports[("baseline", 0.0)]
    delta = baseline.checkpoint_interval or setup.checkpoint_cost

    rows = []
    curves = {}
    max_depth_seen = 0
    for (mode, prob), report in reports.items():
        row_modes = ("write-fail", "corrupt") if mode == "baseline" else (mode,)
        for row_mode in row_modes:
            predicted = _predict(setup, delta, row_mode, prob)
            predicted_text = (
                "diverges" if predicted == float("inf") else round(predicted, 3)
            )
            rows.append(
                [
                    row_mode,
                    prob,
                    round(report.total_time, 3),
                    predicted_text,
                    round(report.total_time / baseline.total_time, 2),
                    report.checkpoints_skipped,
                    report.checkpoint_retries,
                    report.max_rollback_depth,
                    report.recovery_lines_skipped,
                    report.cold_starts,
                ]
            )
            xs, ys = curves.setdefault(row_mode, ([], []))
            xs.append(prob)
            ys.append(report.total_time)
        max_depth_seen = max(max_depth_seen, report.max_rollback_depth)
    rows.sort(key=lambda row: (row[0], row[1]))

    plot = ascii_plot(
        {mode: curve for mode, curve in sorted(curves.items())},
        title="Chaos sweep: T_total [s] vs storage-fault probability",
    )
    noop_ok = reports[("baseline", 0.0)].storage_fault_counts == {}
    return ExperimentResult(
        experiment="chaos",
        title="Chaos sweep: completion time under injected storage faults",
        headers=[
            "mode",
            "p",
            "T_total [s]",
            "predicted [s]",
            "slowdown",
            "ckpt skipped",
            "retries",
            "max depth",
            "lines skipped",
            "cold starts",
        ],
        rows=rows,
        plot=plot,
        findings={
            "baseline_total_time_s": round(baseline.total_time, 3),
            "checkpoint_interval_s": round(delta, 4),
            "max_rollback_depth_observed": max_depth_seen,
            "fault_free_is_noop": noop_ok,
            "executor_mode": executor.last_mode,
        },
        notes=[
            f"setup: N={setup.virtual_processes}, {setup.steps} steps, "
            f"node MTBF {setup.node_mtbf}s, c={setup.checkpoint_cost}s, "
            f"R={setup.restart_cost}s, keep {setup.recovery_line_depth} "
            f"recovery lines, {setup.checkpoint_max_retries} write retries",
            "prediction: Eq. 14 with delta/(1-q) for skipped sets and the "
            "depth-truncated fallback + cold-start stretch of R for "
            "corruption (first-order; single stochastic runs, expect noise; "
            "'diverges' marks lambda*t_RR >= 1, which the simulator escapes "
            "by cold-starting)",
            "the p=0 row is the strict no-op check: the chaos layer adds "
            "zero RNG draws and zero timeline events when disabled",
        ],
    )
