"""Time and size unit helpers.

The paper mixes hours (job lengths, MTBFs), minutes (Table 4) and
seconds (checkpoint cost ``c`` = 120 s, restart ``R`` = 500 s).  All
``repro`` model and simulator APIs take **seconds** and **bytes**; these
helpers make call sites read like the paper.

>>> hours(128)
460800.0
>>> fmt_duration(460800.0)
'128h00m'
"""

from __future__ import annotations

from .errors import ConfigurationError

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def seconds(value: float) -> float:
    """Identity helper; makes mixed-unit call sites self-documenting."""
    return float(value)


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return float(value) * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return float(value) * SECONDS_PER_HOUR


def days(value: float) -> float:
    """Convert days to seconds."""
    return float(value) * SECONDS_PER_DAY


def years(value: float) -> float:
    """Convert (Julian) years to seconds."""
    return float(value) * SECONDS_PER_YEAR


def to_minutes(value_seconds: float) -> float:
    """Convert seconds to minutes (Table 4 is reported in minutes)."""
    return float(value_seconds) / SECONDS_PER_MINUTE


def to_hours(value_seconds: float) -> float:
    """Convert seconds to hours."""
    return float(value_seconds) / SECONDS_PER_HOUR


def to_years(value_seconds: float) -> float:
    """Convert seconds to years."""
    return float(value_seconds) / SECONDS_PER_YEAR


def mib(value: float) -> int:
    """Convert mebibytes to bytes (rounded down)."""
    return int(float(value) * MIB)


def gib(value: float) -> int:
    """Convert gibibytes to bytes (rounded down)."""
    return int(float(value) * GIB)


def parse_duration(text: str) -> float:
    """Parse a human duration like ``"128h"``, ``"46min"``, ``"5y"``.

    Supported suffixes: ``s``, ``sec``, ``m``, ``min``, ``h``, ``hr``,
    ``hrs``, ``d``, ``y``, ``yr``, ``yrs``.  A bare number is seconds.

    >>> parse_duration("6h")
    21600.0
    """
    text = text.strip().lower()
    suffixes = [
        ("yrs", SECONDS_PER_YEAR),
        ("yr", SECONDS_PER_YEAR),
        ("y", SECONDS_PER_YEAR),
        ("hrs", SECONDS_PER_HOUR),
        ("hr", SECONDS_PER_HOUR),
        ("h", SECONDS_PER_HOUR),
        ("min", SECONDS_PER_MINUTE),
        ("sec", 1.0),
        ("d", SECONDS_PER_DAY),
        ("m", SECONDS_PER_MINUTE),
        ("s", 1.0),
    ]
    for suffix, scale in suffixes:
        if text.endswith(suffix):
            number = text[: -len(suffix)].strip()
            try:
                return float(number) * scale
            except ValueError as exc:
                raise ConfigurationError(f"bad duration {text!r}") from exc
    try:
        return float(text)
    except ValueError as exc:
        raise ConfigurationError(f"bad duration {text!r}") from exc


def fmt_duration(value_seconds: float) -> str:
    """Render seconds as a compact ``128h00m`` / ``46m30s`` / ``12.0s``.

    Chooses the coarsest unit that keeps the leading field non-zero.
    """
    if value_seconds < 0:
        return "-" + fmt_duration(-value_seconds)
    if value_seconds >= SECONDS_PER_HOUR:
        whole_hours = int(value_seconds // SECONDS_PER_HOUR)
        rem_minutes = int(round((value_seconds - whole_hours * SECONDS_PER_HOUR) / 60))
        if rem_minutes == 60:  # rounding carried over
            whole_hours, rem_minutes = whole_hours + 1, 0
        return f"{whole_hours}h{rem_minutes:02d}m"
    if value_seconds >= SECONDS_PER_MINUTE:
        whole_minutes = int(value_seconds // SECONDS_PER_MINUTE)
        rem_seconds = int(round(value_seconds - whole_minutes * 60))
        if rem_seconds == 60:
            whole_minutes, rem_seconds = whole_minutes + 1, 0
        if whole_minutes == 60:  # rounding promoted to a full hour
            return "1h00m"
        return f"{whole_minutes}m{rem_seconds:02d}s"
    return f"{value_seconds:.1f}s"


def fmt_bytes(value: float) -> str:
    """Render a byte count with a binary-unit suffix (``1.5GiB``)."""
    magnitude = float(value)
    for suffix, scale in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if magnitude >= scale:
            return f"{magnitude / scale:.1f}{suffix}"
    return f"{int(magnitude)}B"
