"""The cluster: node inventory, failure bookkeeping, spare replacement.

Implements the paper's assumption 5 — "spare nodes are readily
available to replace a failed node" — by minting a fresh node whenever
one fails and a replacement is requested.  The retired node keeps its
index (it stays addressable for post-mortem queries); the spare gets a
new index at the end of the inventory.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import AllocationError, ConfigurationError
from .node import Node, NodeState


class Machine:
    """A cluster of failure-independent nodes.

    Parameters
    ----------
    node_count:
        Initial inventory size.
    cores_per_node:
        Core slots per node (the paper's testbed: 16, 14 usable).
    node_mtbf:
        MTBF assigned to every node (seconds; ``inf`` = never fails).
    spares:
        Maximum number of spare replacements that may be minted;
        ``None`` means unlimited (the paper's assumption).
    """

    def __init__(
        self,
        node_count: int,
        cores_per_node: int = 16,
        node_mtbf: float = float("inf"),
        spares: Optional[int] = None,
    ) -> None:
        if node_count < 1:
            raise ConfigurationError(f"node_count must be >= 1, got {node_count}")
        if spares is not None and spares < 0:
            raise ConfigurationError(f"spares must be >= 0, got {spares}")
        self.cores_per_node = cores_per_node
        self.node_mtbf = node_mtbf
        self._nodes: List[Node] = [
            Node(i, cores=cores_per_node, mtbf=node_mtbf) for i in range(node_count)
        ]
        self._spares_remaining = spares
        self._death_watchers: List[Callable[[Node], None]] = []

    # -- inventory --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, index: int) -> Node:
        """Look up a node by index."""
        try:
            return self._nodes[index]
        except IndexError as exc:
            raise ConfigurationError(f"no node with index {index}") from exc

    @property
    def nodes(self) -> List[Node]:
        """The full node inventory (including retired nodes)."""
        return list(self._nodes)

    def up_nodes(self) -> List[Node]:
        """Nodes currently able to run ranks."""
        return [node for node in self._nodes if node.is_up]

    # -- failure handling --------------------------------------------------

    def on_node_death(self, watcher: Callable[[Node], None]) -> None:
        """Register a callback invoked whenever a node fails."""
        self._death_watchers.append(watcher)

    def fail_node(self, index: int, now: float) -> Node:
        """Fail-stop the node at ``index`` and notify watchers."""
        node = self.node(index)
        node.fail(now)
        for watcher in list(self._death_watchers):
            watcher(node)
        return node

    def replace_node(self, index: int) -> Node:
        """Retire a failed node and mint a spare in its stead.

        Returns the fresh node.  The paper's assumption 5 makes spares
        always available; bound them with the ``spares`` parameter to
        study scarcity.
        """
        failed = self.node(index)
        if failed.state != NodeState.DOWN:
            raise AllocationError(f"node {index} is not down; cannot replace")
        if self._spares_remaining is not None:
            if self._spares_remaining == 0:
                raise AllocationError("spare pool exhausted")
            self._spares_remaining -= 1
        failed.retire()
        spare = Node(len(self._nodes), cores=self.cores_per_node, mtbf=self.node_mtbf)
        self._nodes.append(spare)
        return spare

    # -- statistics ---------------------------------------------------------

    def failure_count(self) -> int:
        """Nodes that have failed (down or retired) so far."""
        return sum(1 for node in self._nodes if node.state != NodeState.UP)

    def summary(self) -> Dict[str, int]:
        """State histogram of the inventory."""
        histogram: Dict[str, int] = {state.value: 0 for state in NodeState}
        for node in self._nodes:
            histogram[node.state.value] += 1
        return histogram
