"""cluster — the machine model: nodes, allocation and spares.

Mirrors the paper's assumptions (Section 4): a *node* is the unit of
failure; each application process gets its own node; spare nodes are
readily available to replace failed ones.

* :mod:`node` — one failure-independent execution unit;
* :mod:`machine` — the cluster: node inventory, failure bookkeeping,
  spare replacement;
* :mod:`allocation` — rank→node placement policies (one-rank-per-node
  per the paper, packed, and replica-exclusive variants).
"""

from .node import Node, NodeState
from .machine import Machine
from .allocation import (
    packed_placement,
    replica_exclusive_placement,
    spread_placement,
)

__all__ = [
    "Machine",
    "Node",
    "NodeState",
    "packed_placement",
    "replica_exclusive_placement",
    "spread_placement",
]
