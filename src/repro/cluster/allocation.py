"""Rank→node placement policies.

The paper's model assumption 2: every physical process gets its *own*
node, so redundancy never slows computation down.  That is
:func:`spread_placement`.  Two alternatives are provided for ablation:

* :func:`packed_placement` — fill each node's cores before moving on
  (how Ferreira et al.'s study doubles processes up on the same nodes);
* :func:`replica_exclusive_placement` — pack ranks, but guarantee that
  no two replicas of the same virtual process share a node (otherwise
  one node failure could take out a whole sphere and redundancy would
  be pointless).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import AllocationError, ConfigurationError
from .machine import Machine


def _healthy_nodes(machine: Machine, needed: int) -> List[int]:
    nodes = [node.index for node in machine.up_nodes()]
    if len(nodes) < needed:
        raise AllocationError(
            f"placement needs {needed} up nodes, machine has {len(nodes)}"
        )
    return nodes


def spread_placement(machine: Machine, rank_count: int) -> Dict[int, int]:
    """One rank per node (the paper's assumption 2).

    Returns a mapping ``physical rank -> node index``.
    """
    if rank_count < 1:
        raise ConfigurationError(f"rank_count must be >= 1, got {rank_count}")
    nodes = _healthy_nodes(machine, rank_count)
    return {rank: nodes[rank] for rank in range(rank_count)}


def packed_placement(machine: Machine, rank_count: int) -> Dict[int, int]:
    """Fill each node's cores before using the next node."""
    if rank_count < 1:
        raise ConfigurationError(f"rank_count must be >= 1, got {rank_count}")
    per_node = machine.cores_per_node
    needed_nodes = -(-rank_count // per_node)  # ceil division
    nodes = _healthy_nodes(machine, needed_nodes)
    return {rank: nodes[rank // per_node] for rank in range(rank_count)}


def replica_exclusive_placement(
    machine: Machine,
    replica_groups: Sequence[Sequence[int]],
) -> Dict[int, int]:
    """Packed placement that keeps each replica group on distinct nodes.

    Parameters
    ----------
    replica_groups:
        One sequence of physical ranks per virtual process (the
        "sphere").  Ranks within a group land on pairwise-distinct
        nodes; across groups, cores are packed greedily.

    Raises
    ------
    AllocationError
        When a group is wider than the number of healthy nodes.
    """
    rank_count = sum(len(group) for group in replica_groups)
    if rank_count == 0:
        raise ConfigurationError("replica_groups must contain at least one rank")
    per_node = machine.cores_per_node
    node_indices = _healthy_nodes(machine, 1)
    free_cores = {index: per_node for index in node_indices}
    placement: Dict[int, int] = {}
    for group in replica_groups:
        if len(group) > len(node_indices):
            raise AllocationError(
                f"replica group of size {len(group)} exceeds "
                f"{len(node_indices)} healthy nodes"
            )
        used_here = set()
        for rank in group:
            chosen = None
            for index in node_indices:
                if index in used_here or free_cores[index] == 0:
                    continue
                chosen = index
                break
            if chosen is None:
                raise AllocationError(
                    "not enough free cores for replica-exclusive placement"
                )
            placement[rank] = chosen
            free_cores[chosen] -= 1
            used_here.add(chosen)
    return placement
