"""A cluster node: the unit of failure.

The paper (Section 4, assumption 1) treats a node/socket as the unit
that fails independently with exponential interarrival times.  A node
here carries its identity, core count, MTBF and an up/down state with
validated transitions.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..errors import ConfigurationError, NodeStateError


class NodeState(enum.Enum):
    """Lifecycle states of a node."""

    UP = "up"
    DOWN = "down"
    RETIRED = "retired"  # failed and replaced by a spare


class Node:
    """One failure-independent execution unit.

    Attributes
    ----------
    index:
        Stable identity within the machine (also the topology index).
    cores:
        Core slots available to application ranks.
    mtbf:
        Mean time between failures of this node (seconds).
    """

    __slots__ = ("index", "cores", "mtbf", "_state", "failed_at")

    def __init__(self, index: int, cores: int = 16, mtbf: float = float("inf")) -> None:
        if index < 0:
            raise ConfigurationError(f"node index must be >= 0, got {index}")
        if cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {cores}")
        if mtbf <= 0:
            raise ConfigurationError(f"mtbf must be > 0, got {mtbf}")
        self.index = index
        self.cores = cores
        self.mtbf = mtbf
        self._state = NodeState.UP
        self.failed_at: Optional[float] = None

    @property
    def state(self) -> NodeState:
        """Current lifecycle state."""
        return self._state

    @property
    def is_up(self) -> bool:
        """True while the node can run ranks."""
        return self._state == NodeState.UP

    def fail(self, now: float) -> None:
        """Transition UP → DOWN (fail-stop)."""
        if self._state != NodeState.UP:
            raise NodeStateError(f"node {self.index} cannot fail from {self._state}")
        self._state = NodeState.DOWN
        self.failed_at = now

    def repair(self) -> None:
        """Transition DOWN → UP (maintenance brought it back)."""
        if self._state != NodeState.DOWN:
            raise NodeStateError(f"node {self.index} cannot repair from {self._state}")
        self._state = NodeState.UP
        self.failed_at = None

    def retire(self) -> None:
        """Transition DOWN → RETIRED (replaced by a spare)."""
        if self._state != NodeState.DOWN:
            raise NodeStateError(f"node {self.index} cannot retire from {self._state}")
        self._state = NodeState.RETIRED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.index} {self._state.value} cores={self.cores}>"
