"""The simulation environment: clock + event queue + scheduler."""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from ..errors import SimulationDeadlock, SimulationError
from .events import Event, Timeout
from .process import Process

#: Queue entries: (time, priority, sequence, event).  ``priority`` lets
#: urgent kernel activities (interrupt delivery) pre-empt same-time
#: user events; ``sequence`` makes ordering fully deterministic.
_QueueEntry = Tuple[float, int, int, Event]

URGENT = 0
NORMAL = 1


class Environment:
    """Discrete-event simulation environment.

    The environment owns the virtual clock (:attr:`now`) and the event
    queue.  Simulated activities are generator functions registered via
    :meth:`process`.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[_QueueEntry] = []
        self._sequence = 0
        self._active_processes = 0

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- event construction --------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event (trigger with ``succeed``/``fail``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a simulated process and start it."""
        return Process(self, generator, name=name)

    # -- scheduling (kernel API) ----------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._sequence, event))

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationDeadlock("event queue is empty")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        event._mark_processed()
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def run(self, until: Optional[object] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the event queue drains;
            * a number — run until the clock reaches that time;
            * an :class:`Event` — run until that event is processed,
              returning its value (raising its exception if it failed).

        Raises
        ------
        SimulationDeadlock
            When ``until`` is an event and the queue drains before the
            event fires.
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            target = until
            while not target.processed:
                if not self._queue:
                    raise SimulationDeadlock(
                        "queue drained before the awaited event fired"
                    )
                self.step()
            if not target.ok:
                raise target.value
            return target.value
        # Numeric horizon.
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run to the past ({horizon} < {self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
