"""Generator-based simulated processes.

A process wraps a generator that ``yield``s :class:`Event` objects.
The kernel resumes the generator with the event's value when it fires,
or throws the event's exception into it when the event failed.  The
process itself *is* an event: it fires with the generator's return
value when the generator finishes, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..errors import ProcessInterrupted, SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .env import Environment


class Process(Event):
    """A running simulated activity (also an awaitable event)."""

    __slots__ = ("name", "_generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        start = Event(env)
        start.add_callback(self._resume)
        self._waiting_on = start
        start.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished or crashed."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupted` into the process *now*.

        The process stops waiting on whatever event it was blocked on
        (that event still fires for other waiters) and receives the
        interrupt at the current simulation time.  Interrupting a
        finished process is a silent no-op — failure injection races
        with normal completion, and losing that race is not an error.
        """
        if self.triggered:
            return
        if self._waiting_on is not None:
            self._waiting_on.discard_callback(self._resume)
            self._waiting_on = None
        kick = Event(self.env)
        kick.add_callback(self._resume)
        self._waiting_on = kick
        kick._ok = False
        kick._value = ProcessInterrupted(cause)
        kick._state = 1  # TRIGGERED
        from .env import URGENT

        self.env._schedule(kick, 0.0, priority=URGENT)

    # -- kernel ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        while True:
            try:
                if event.ok:
                    target = self._generator.send(event.value)
                else:
                    target = self._generator.throw(event.value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except ProcessInterrupted:
                # An interrupt escaped the generator: treat as clean
                # termination with no value (the rank was killed).
                self.succeed(None)
                return
            except BaseException as exc:
                if self.callbacks:
                    self.fail(exc)
                    return
                raise
            if not isinstance(target, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
                self._generator.throw(error)
                raise error
            if target.processed:
                # Already-fired event: feed its outcome straight back in
                # (loop, not recursion, to keep stack depth flat).
                event = target
                continue
            target.add_callback(self._resume)
            self._waiting_on = target
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {status}>"
