"""Shared-resource primitives: counted resources and object stores.

Used by the substrates for anything with finite capacity: stable-storage
I/O channels (checkpoint writes queue up), per-node core slots, and the
network fabric's link model.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque

from ..errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .env import Environment


class Resource:
    """A counted resource with FIFO queuing.

    >>> def user(env, res, log, name):
    ...     req = res.request()
    ...     yield req
    ...     log.append((env.now, name, "acquired"))
    ...     yield env.timeout(1.0)
    ...     res.release()
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Requests waiting for a free unit."""
        return len(self._waiters)

    def request(self) -> Event:
        """Event that fires when a unit has been granted to the caller."""
        grant = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed()
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return one unit; hands it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Unit moves directly to the next waiter; in_use unchanged.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO object store (channel).

    ``put`` never blocks; ``get`` returns an event that fires with the
    oldest item once one is available.  This is the building block for
    simulated message queues.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event firing with the next item (immediately if available)."""
        fetch = Event(self.env)
        if self._items:
            fetch.succeed(self._items.popleft())
        else:
            self._getters.append(fetch)
        return fetch

    def cancel_get(self, fetch: Event) -> None:
        """Withdraw a pending :meth:`get` request (e.g. on interrupt)."""
        try:
            self._getters.remove(fetch)
        except ValueError:
            pass
