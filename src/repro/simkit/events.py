"""Event primitives for the simkit kernel.

An :class:`Event` is a one-shot occurrence with an optional value (or a
failure exception).  Its lifecycle::

    PENDING --succeed()/fail()--> TRIGGERED --env.step()--> PROCESSED

Once *triggered* the event is sitting in the environment's queue with a
definite fire time; once *processed* its callbacks have run and waiting
processes have been resumed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .env import Environment

#: State constants (kept as ints for cheap comparisons in the hot loop).
PENDING = 0
TRIGGERED = 1
PROCESSED = 2


class Event:
    """A one-shot simulation event.

    Callbacks are callables taking the event itself; they run exactly
    once, in registration order, when the environment processes the
    event.
    """

    __slots__ = ("env", "callbacks", "_state", "_ok", "_value")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._state = PENDING
        self._ok = True
        self._value: Any = None

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (or processed)."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._state == PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure after ``delay``.

        The exception is thrown into every waiting process.
        """
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.env._schedule(self, delay)
        return self

    # -- kernel hooks -----------------------------------------------------

    def _mark_processed(self) -> None:
        self._state = PROCESSED

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback``; runs immediately if already processed."""
        if self._state == PROCESSED:
            callback(self)
        else:
            self.callbacks.append(callback)

    def discard_callback(self, callback: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback if still present."""
        try:
            self.callbacks.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        env._schedule(self, delay)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        if not self.events:
            self._pending_count = 0
            self.succeed([])
            return
        for event in self.events:
            if event.env is not env:
                raise SimulationError("condition mixes events from different environments")
        # Count ALL children before registering any callback: a child
        # that is already processed runs its callback synchronously
        # inside add_callback, and must not see a partial count.
        self._pending_count = len(self.events)
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is the value list.

    Fails as soon as any child fails (remaining children keep running).
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed([child.value for child in self.events])


class AnyOf(_Condition):
    """Fires when the first child fires; value is ``(index, value)``."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != PENDING:
            return
        index = self.events.index(event)
        if event.ok:
            self.succeed((index, event.value))
        else:
            self.fail(event.value)


def first_failure(events: Sequence[Event]) -> Optional[BaseException]:
    """Return the exception of the first failed event, if any."""
    for event in events:
        if event.triggered and not event.ok:
            return event.value
    return None
