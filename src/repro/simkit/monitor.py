"""Time-series probes and counters for simulation observability.

Experiments need per-run statistics (messages sent, bytes moved,
checkpoints taken, failures injected, time in each phase).  The data
structures live in :mod:`repro.obs.metrics` — these wrappers only bind
them to a simulation :class:`~repro.simkit.env.Environment` clock, so
the substrate keeps its historical API while the observability layer
owns the actual bookkeeping (and its snapshot/merge protocol).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs.metrics import CounterBag, TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .env import Environment


class Monitor(TimeSeries):
    """Records (time, value) samples stamped with the simulation clock."""

    def __init__(self, env: "Environment", name: str = "") -> None:
        super().__init__(name=name)
        self.env = env

    def record(self, value: float) -> None:
        """Append a sample stamped with the current simulation time."""
        self.sample(self.env.now, value)


class Counter(CounterBag):
    """A named bag of monotonically increasing counters.

    >>> from repro.simkit import Environment, Counter
    >>> counters = Counter()
    >>> counters.add("messages", 2)
    >>> counters["messages"]
    2.0
    """
