"""Time-series probes and counters for simulation observability.

Experiments need per-run statistics (messages sent, bytes moved,
checkpoints taken, failures injected, time in each phase).  These tiny
collectors keep that bookkeeping out of the substrate logic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .env import Environment


class Monitor:
    """Records (time, value) samples of one quantity."""

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, value: float) -> None:
        """Append a sample stamped with the current simulation time."""
        self.samples.append((self.env.now, float(value)))

    @property
    def values(self) -> List[float]:
        """Just the sampled values, in time order."""
        return [value for _time, value in self.samples]

    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(self.values) / len(self.samples)

    def total(self) -> float:
        """Sum of the samples."""
        return sum(self.values)

    def __len__(self) -> int:
        return len(self.samples)


class Counter:
    """A named bag of monotonically increasing counters.

    >>> from repro.simkit import Environment, Counter
    >>> counters = Counter()
    >>> counters.add("messages", 2)
    >>> counters["messages"]
    2
    """

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment ``name`` by ``amount``."""
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def __getitem__(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def merge(self, other: "Counter") -> None:
        """Fold another counter bag into this one."""
        for name, amount in other._counts.items():
            self.add(name, amount)
