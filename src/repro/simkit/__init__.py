"""simkit — a small, deterministic discrete-event simulation kernel.

Everything in the systems half of ``repro`` (network, cluster, MPI,
checkpointing, failure injection) runs on this kernel.  It follows the
familiar generator-process model: a simulated process is a Python
generator that ``yield``s events; the environment resumes it when the
event fires.

>>> from repro.simkit import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]

Design notes
------------
* **Determinism** — ties in time are broken by a monotonically
  increasing sequence number, so two runs of the same program produce
  identical event orders.
* **Interrupts** — ``Process.interrupt(cause)`` throws
  :class:`repro.errors.ProcessInterrupted` into the generator at the
  current simulation time; this is how node failures kill MPI ranks.
* **No wall-clock anywhere** — simulation time is just a float.
"""

from .events import AllOf, AnyOf, Event, Timeout
from .env import Environment
from .process import Process
from .resources import Resource, Store
from .monitor import Counter, Monitor

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Environment",
    "Event",
    "Monitor",
    "Process",
    "Resource",
    "Store",
    "Timeout",
]
