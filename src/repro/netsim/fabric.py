"""The delivery fabric: turns (src node, dst node, size) into delays.

The fabric is deliberately stateless about individual messages — it is
a *cost oracle*.  Message queueing, matching and loss-on-failure
semantics live in :mod:`repro.mpi`; the fabric only answers "how long
does this transfer take" and "how long is the sender busy".

Optional deterministic jitter (drawn from a named RNG stream) models
OS noise and switch contention without sacrificing reproducibility.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .latency import AlphaBetaModel
from .topology import FlatTopology, Topology


class Fabric:
    """Interconnect cost oracle.

    Parameters
    ----------
    model:
        Base :class:`AlphaBetaModel`; the per-hop latency is the model
        latency times the topology distance.
    topology:
        Node-distance model (defaults to a flat crossbar).
    jitter:
        Coefficient of variation of a lognormal noise factor applied to
        every delay (0 disables noise).
    rng:
        Generator used for jitter; required when ``jitter > 0``.
    """

    def __init__(
        self,
        model: Optional[AlphaBetaModel] = None,
        topology: Optional[Topology] = None,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        if jitter > 0 and rng is None:
            raise ConfigurationError("jitter > 0 requires an rng")
        self.model = model or AlphaBetaModel()
        self.topology = topology or FlatTopology()
        self.jitter = jitter
        self._rng = rng
        if jitter > 0:
            # Lognormal with unit mean: sigma from the CV, mu = -sigma^2/2.
            self._sigma = float(np.sqrt(np.log1p(jitter**2)))
            self._mu = -0.5 * self._sigma**2

    def _noise(self) -> float:
        if self.jitter == 0:
            return 1.0
        return float(self._rng.lognormal(mean=self._mu, sigma=self._sigma))

    def delivery_delay(self, src_node: int, dst_node: int, nbytes: int) -> float:
        """Seconds until an ``nbytes`` message from src arrives at dst."""
        hops = self.topology.distance(src_node, dst_node)
        base = self.model.latency * hops + nbytes / self.model.bandwidth
        return base * self._noise()

    def wire_latency(self, src_node: int, dst_node: int) -> float:
        """Pure propagation time after the sender finished injecting."""
        hops = self.topology.distance(src_node, dst_node)
        return self.model.latency * hops * self._noise()

    def sender_busy_time(self, src_node: int, dst_node: int, nbytes: int) -> float:
        """Seconds the sending rank is occupied injecting the message."""
        base = self.model.sender_time(nbytes)
        if src_node == dst_node:
            # Shared-memory transport: no rendezvous round trips, but the
            # software-stack overhead per message remains.
            base = self.model.cpu_overhead + nbytes / self.model.bandwidth
        return base * self._noise()
