"""Alpha-beta (postal) message-cost model.

The classic first-order model of message transfer time on HPC fabrics:

``T(n) = alpha + n / beta``

where ``alpha`` is the per-message latency (wire + software stack) and
``beta`` the sustained bandwidth.  Defaults approximate the paper's QDR
InfiniBand testbed (~1.3 us latency, ~3.2 GB/s effective per-port).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: QDR InfiniBand-ish defaults (seconds, bytes/second).
QDR_LATENCY = 1.3e-6
QDR_BANDWIDTH = 3.2e9


@dataclass(frozen=True)
class AlphaBetaModel:
    """Latency/bandwidth transfer-time model.

    Attributes
    ----------
    latency:
        ``alpha`` — fixed per-message cost in seconds.
    bandwidth:
        ``beta`` — bytes per second.
    eager_threshold:
        Messages at or below this size use the eager protocol (sender
        completes immediately); larger ones rendezvous (sender blocks
        for one extra round trip).  Matches real MPI behaviour and
        makes redundancy's message amplification visible in sender
        time, which is what Eq. 1 models.
    cpu_overhead:
        Per-message software-stack cost on the sender (the LogP ``o``).
        This is what makes message-*count* amplification expensive even
        for small messages — the redundancy layer turns one send into
        ``r`` sends, each paying this overhead serially.
    """

    latency: float = QDR_LATENCY
    bandwidth: float = QDR_BANDWIDTH
    eager_threshold: int = 64 * 1024
    cpu_overhead: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.latency}")
        if self.cpu_overhead < 0:
            raise ConfigurationError(
                f"cpu_overhead must be >= 0, got {self.cpu_overhead}"
            )
        if self.bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.eager_threshold < 0:
            raise ConfigurationError(
                f"eager_threshold must be >= 0, got {self.eager_threshold}"
            )

    def transfer_time(self, nbytes: int) -> float:
        """End-to-end wire time for an ``nbytes`` message."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.bandwidth

    def sender_time(self, nbytes: int) -> float:
        """Time the *sender* is busy with this message.

        Eager messages cost the serialisation time only; rendezvous
        messages additionally hold the sender for the latency of the
        ready-to-send handshake.
        """
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        serialisation = self.cpu_overhead + nbytes / self.bandwidth
        if nbytes <= self.eager_threshold:
            return serialisation
        return serialisation + 2.0 * self.latency

    def scaled(self, latency_factor: float = 1.0, bandwidth_factor: float = 1.0) -> "AlphaBetaModel":
        """A derived model with scaled parameters (e.g. intra-node links)."""
        return AlphaBetaModel(
            latency=self.latency * latency_factor,
            bandwidth=self.bandwidth * bandwidth_factor,
            eager_threshold=self.eager_threshold,
            cpu_overhead=self.cpu_overhead,
        )
