"""netsim — interconnect timing model for the simulated cluster.

Provides the message-transfer cost model the simulated MPI runtime uses
to charge wallclock time to communication.  Three pieces:

* :mod:`latency` — the alpha-beta (latency + bandwidth) transfer model;
* :mod:`topology` — who is "close" to whom (same node vs. across the
  fabric), with hop-dependent latency;
* :mod:`fabric` — the delivery engine: given source node, destination
  node and message size, produce the arrival delay (optionally with
  deterministic jitter).
"""

from .latency import AlphaBetaModel
from .topology import FlatTopology, Topology, TwoLevelTopology
from .fabric import Fabric

__all__ = [
    "AlphaBetaModel",
    "Fabric",
    "FlatTopology",
    "Topology",
    "TwoLevelTopology",
]
