"""Cluster topology: distance between nodes, in latency multiples.

The fabric multiplies the base model latency by the topological
distance between the communicating nodes.  Two concrete topologies are
provided; both are deliberately simple — the paper's model does not
depend on topology detail, only on communication being slower when
redundant copies multiply it.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class Topology:
    """Interface: latency multiplier between two node indices."""

    def distance(self, node_a: int, node_b: int) -> float:
        """Latency multiplier for a message from ``node_a`` to ``node_b``.

        0.0 means loopback (same node, shared memory); 1.0 is one
        fabric hop.
        """
        raise NotImplementedError


class FlatTopology(Topology):
    """Full crossbar: every node one hop from every other.

    The loopback multiplier models shared-memory transport between
    ranks co-located on one node.
    """

    def __init__(self, loopback: float = 0.1) -> None:
        if loopback < 0:
            raise ConfigurationError(f"loopback must be >= 0, got {loopback}")
        self.loopback = loopback

    def distance(self, node_a: int, node_b: int) -> float:
        """Loopback for co-located ranks; one hop otherwise."""
        if node_a == node_b:
            return self.loopback
        return 1.0


class TwoLevelTopology(Topology):
    """Switch-hierarchy topology: nodes grouped under leaf switches.

    Messages within a switch group take one hop; messages crossing to
    another group traverse the spine and take ``spine_hops`` (default 3:
    up, across, down).  Approximates the fat-tree layouts of InfiniBand
    clusters like the paper's 108-node testbed.
    """

    def __init__(
        self,
        nodes_per_switch: int = 18,
        spine_hops: float = 3.0,
        loopback: float = 0.1,
    ) -> None:
        if nodes_per_switch < 1:
            raise ConfigurationError(
                f"nodes_per_switch must be >= 1, got {nodes_per_switch}"
            )
        if spine_hops < 1:
            raise ConfigurationError(f"spine_hops must be >= 1, got {spine_hops}")
        if loopback < 0:
            raise ConfigurationError(f"loopback must be >= 0, got {loopback}")
        self.nodes_per_switch = nodes_per_switch
        self.spine_hops = spine_hops
        self.loopback = loopback

    def switch_of(self, node: int) -> int:
        """Index of the leaf switch hosting ``node``."""
        if node < 0:
            raise ConfigurationError(f"node index must be >= 0, got {node}")
        return node // self.nodes_per_switch

    def distance(self, node_a: int, node_b: int) -> float:
        """One hop within a switch group; spine traversal across groups."""
        if node_a == node_b:
            return self.loopback
        if self.switch_of(node_a) == self.switch_of(node_b):
            return 1.0
        return self.spine_hops


class TorusTopology(Topology):
    """k-ary 2-D torus: hop count is the wrapped Manhattan distance.

    Included for ablation experiments on replica placement: on a torus,
    placing a replica far from its primary makes redundant traffic
    visibly more expensive.
    """

    def __init__(self, side: int, loopback: float = 0.1) -> None:
        if side < 2:
            raise ConfigurationError(f"torus side must be >= 2, got {side}")
        if loopback < 0:
            raise ConfigurationError(f"loopback must be >= 0, got {loopback}")
        self.side = side
        self.loopback = loopback

    def coordinates(self, node: int) -> tuple:
        """(x, y) grid coordinates of ``node``."""
        if node < 0:
            raise ConfigurationError(f"node index must be >= 0, got {node}")
        return node % self.side, (node // self.side) % self.side

    def distance(self, node_a: int, node_b: int) -> float:
        """Wrapped Manhattan distance on the torus grid."""
        if node_a == node_b:
            return self.loopback
        ax, ay = self.coordinates(node_a)
        bx, by = self.coordinates(node_b)
        dx = min(abs(ax - bx), self.side - abs(ax - bx))
        dy = min(abs(ay - by), self.side - abs(ay - by))
        return float(max(1, dx + dy))
