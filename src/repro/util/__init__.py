"""util — table rendering and statistics shared by experiments."""

from .tables import render_series, render_table
from .stats import mean_abs_pct_error, pearson, qq_points
from .plot import ascii_plot

__all__ = [
    "ascii_plot",
    "mean_abs_pct_error",
    "pearson",
    "qq_points",
    "render_series",
    "render_table",
]
