"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows the paper's tables report;
these helpers keep that output readable and consistent.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from ..errors import ConfigurationError


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.2f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an ASCII table with right-aligned numeric columns.

    >>> print(render_table(["a", "b"], [[1, 2.5]], title="demo"))
    demo
    a | b
    --+-----
    1 | 2.50
    """
    if not headers:
        raise ConfigurationError("table needs headers")
    cells: List[List[str]] = [[_fmt(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells)) if cells else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """Render one (x, y) series as two aligned columns."""
    if len(xs) != len(ys):
        raise ConfigurationError("series needs equal-length xs and ys")
    return render_table(["x", name], list(zip(xs, ys)))
