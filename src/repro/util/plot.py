"""Minimal ASCII line plots for figure-like terminal output.

The paper's figures are line/surface plots; the experiments emit their
data as tables, and this module renders the same series as quick
terminal plots so a benchmark run *looks* like the figure it
regenerates.  No plotting dependencies — pure character grids.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError

#: Glyphs assigned to series in declaration order.
GLYPHS = "*o+x#@%&"

#: Density ramp for heatmaps, light to dark.
HEAT_RAMP = " .:-=+*#%@"


def ascii_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    title: str = "",
) -> str:
    """Render named (xs, ys) series onto one character grid.

    Non-finite y values are skipped.  Returns the plot followed by a
    legend line mapping glyphs to series names.

    >>> text = ascii_plot({"line": ([1, 2, 3], [1.0, 2.0, 3.0])}, width=20, height=5)
    >>> "line" in text
    True
    """
    if not series:
        raise ConfigurationError("ascii_plot needs at least one series")
    if width < 8 or height < 3:
        raise ConfigurationError("plot must be at least 8x3")
    points: List[Tuple[float, float, int]] = []
    for index, (name, (xs, ys)) in enumerate(series.items()):
        if len(xs) != len(ys):
            raise ConfigurationError(f"series {name!r} has mismatched lengths")
        for x, y in zip(xs, ys):
            if not math.isfinite(y):
                continue
            x_value = math.log10(x) if logx else float(x)
            points.append((x_value, float(y), index))
    if not points:
        raise ConfigurationError("no finite points to plot")
    x_low = min(p[0] for p in points)
    x_high = max(p[0] for p in points)
    y_low = min(p[1] for p in points)
    y_high = max(p[1] for p in points)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, index in points:
        column = int(round((x - x_low) / x_span * (width - 1)))
        row = height - 1 - int(round((y - y_low) / y_span * (height - 1)))
        grid[row][column] = GLYPHS[index % len(GLYPHS)]

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.3g}"
    bottom_label = f"{y_low:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    x_low_text = f"{10 ** x_low:.3g}" if logx else f"{x_low:.3g}"
    x_high_text = f"{10 ** x_high:.3g}" if logx else f"{x_high:.3g}"
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    footer = (
        " " * (label_width + 2)
        + x_low_text
        + " " * max(1, width - len(x_low_text) - len(x_high_text))
        + x_high_text
    )
    lines.append(footer)
    legend = "  ".join(
        f"{GLYPHS[index % len(GLYPHS)]}={name}"
        for index, name in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def ascii_heatmap(
    values: Sequence[Sequence[float]],
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    title: str = "",
    cell_width: int = 5,
) -> str:
    """Render a matrix as a character-density heatmap (Fig. 9 style).

    Darker glyphs mean larger values.  Non-finite cells render as
    ``inf``.  Each cell also shows its glyph repeated, so relative
    magnitude is visible without color.
    """
    if not values or not values[0]:
        raise ConfigurationError("heatmap needs a non-empty matrix")
    if len(row_labels) != len(values):
        raise ConfigurationError("row label count mismatch")
    if any(len(row) != len(column_labels) for row in values):
        raise ConfigurationError("column label count mismatch")
    finite = [v for row in values for v in row if math.isfinite(v)]
    if not finite:
        raise ConfigurationError("no finite cells to render")
    low, high = min(finite), max(finite)
    span = (high - low) or 1.0

    def cell(value: float) -> str:
        if not math.isfinite(value):
            return "inf".center(cell_width)
        level = int((value - low) / span * (len(HEAT_RAMP) - 1))
        return (HEAT_RAMP[level] * cell_width)[:cell_width]

    label_width = max(len(str(label)) for label in row_labels)
    lines = []
    if title:
        lines.append(title)
    header = " " * label_width + " " + " ".join(
        str(label).center(cell_width) for label in column_labels
    )
    lines.append(header)
    for label, row in zip(row_labels, values):
        rendered = " ".join(cell(value) for value in row)
        lines.append(f"{str(label).rjust(label_width)} {rendered}")
    lines.append(
        " " * label_width
        + f" scale: '{HEAT_RAMP[0]}'={low:.3g} .. '{HEAT_RAMP[-1]}'={high:.3g}"
    )
    return "\n".join(lines)
