"""Fit statistics for model-vs-measurement comparisons (Figure 12).

The paper validates its model with an overlay plot and a Q-Q plot of
modeled vs observed execution times; these helpers compute the same
artifacts numerically.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError


def _paired(a: Sequence[float], b: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    if len(a) != len(b):
        raise ConfigurationError(f"length mismatch: {len(a)} vs {len(b)}")
    if len(a) < 2:
        raise ConfigurationError("need at least two samples")
    return np.asarray(a, dtype=float), np.asarray(b, dtype=float)


def qq_points(observed: Sequence[float], modeled: Sequence[float]) -> List[Tuple[float, float]]:
    """Quantile-quantile pairs: sorted observed vs sorted modeled.

    Points near the diagonal indicate the model reproduces the
    distribution of measured times (the paper's "Q-Q plot ... indicates
    a close fit").
    """
    obs, mod = _paired(observed, modeled)
    return list(zip(np.sort(obs).tolist(), np.sort(mod).tolist()))


def pearson(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson correlation coefficient of the paired samples."""
    x, y = _paired(a, b)
    if float(np.std(x)) == 0.0 or float(np.std(y)) == 0.0:
        raise ConfigurationError("constant series have no correlation")
    return float(np.corrcoef(x, y)[0, 1])


def mean_abs_pct_error(observed: Sequence[float], modeled: Sequence[float]) -> float:
    """Mean |observed - modeled| / observed, as a fraction."""
    obs, mod = _paired(observed, modeled)
    if np.any(obs == 0):
        raise ConfigurationError("observed values must be nonzero")
    return float(np.mean(np.abs(obs - mod) / np.abs(obs)))
