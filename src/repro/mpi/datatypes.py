"""Payload sizing: how many bytes a message occupies on the wire.

The simulator moves real Python objects between ranks (so workloads
compute real answers) but charges network time by byte count.  This
module is the single place that decides how big an object is.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from typing import Any

import numpy as np

#: Fixed envelope overhead charged per message (headers, match bits).
ENVELOPE_OVERHEAD = 64


def payload_nbytes(payload: Any) -> int:
    """Wire size of ``payload`` in bytes (excluding envelope overhead).

    * numpy arrays: exact buffer size;
    * bytes-likes and strings: their length (UTF-8 for str);
    * ints/floats/bools/None: 8 bytes (a typical scalar datatype);
    * tuples/lists/dicts: recursive element sum plus 8 bytes per item
      of framing;
    * anything else: pickled length (accurate and always available).
    """
    if payload is None or isinstance(payload, (bool, int, float, complex)):
        return 8
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, np.generic):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(item) + 8 for item in payload)
    if isinstance(payload, dict):
        return sum(
            payload_nbytes(key) + payload_nbytes(value) + 8
            for key, value in payload.items()
        )
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def message_wire_size(payload: Any) -> int:
    """Total bytes on the wire: payload plus envelope overhead."""
    return payload_nbytes(payload) + ENVELOPE_OVERHEAD


def payload_digest(payload: Any) -> int:
    """Order-stable 64-bit digest of a payload.

    Used by the redundancy layer's Msg-PlusHash mode and by its
    corrupt-message voting: two replicas sending "the same" message
    must produce equal digests.  numpy arrays hash their raw buffer;
    everything else is pickled canonically.
    """
    if isinstance(payload, np.ndarray):
        data = payload.tobytes() + str(payload.dtype).encode() + str(payload.shape).encode()
    elif isinstance(payload, (bytes, bytearray, memoryview)):
        data = bytes(payload)
    elif isinstance(payload, str):
        data = payload.encode("utf-8")
    elif payload is None or isinstance(payload, (bool, int, float)):
        data = repr(payload).encode("utf-8")
    else:
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    # blake2b runs at C speed and is deterministic across runs/platforms.
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), byteorder="little"
    )


#: Size of a digest message in Msg-PlusHash mode.
DIGEST_NBYTES = struct.calcsize("Q")
