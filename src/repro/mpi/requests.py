"""Request handles for non-blocking operations (mirrors MPI_Request).

A request wraps the kernel event that completes the operation plus the
logic to turn the event's raw value into what the caller expects (the
payload and a :class:`~repro.mpi.status.Status` for receives, ``None``
for sends).  Blocking calls are ``yield from request.wait()``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..errors import RequestError
from ..simkit.events import AllOf, Event
from .matching import Envelope
from .status import Status

#: Request kinds (for diagnostics).
SEND = "send"
RECV = "recv"


class Request:
    """Handle to an in-flight non-blocking operation."""

    __slots__ = (
        "kind",
        "peer",
        "tag",
        "_event",
        "_status",
        "_consumed",
        "_on_complete",
        "_source_map",
    )

    def __init__(
        self,
        kind: str,
        event: Event,
        peer: int,
        tag: int,
        on_complete: Optional[Callable[["Request"], None]] = None,
        source_map: Optional[Callable[[int], int]] = None,
    ) -> None:
        if kind not in (SEND, RECV):
            raise RequestError(f"unknown request kind {kind!r}")
        self.kind = kind
        self.peer = peer
        self.tag = tag
        self._event = event
        self._status: Optional[Status] = None
        self._consumed = False
        self._on_complete = on_complete
        self._source_map = source_map

    @property
    def event(self) -> Event:
        """The underlying kernel event (advanced use / request sets)."""
        return self._event

    @property
    def done(self) -> bool:
        """True once the operation has completed."""
        return self._event.processed

    @property
    def status(self) -> Optional[Status]:
        """Receive status; populated after a completed receive."""
        return self._status

    def _finalize(self, raw: Any) -> Any:
        if self._consumed:
            raise RequestError("request waited on twice")
        self._consumed = True
        result: Any = None
        if self.kind == RECV:
            envelope: Envelope = raw
            source = envelope.source
            if self._source_map is not None:
                source = self._source_map(source)
            self._status = Status(source=source, tag=envelope.tag, nbytes=envelope.nbytes)
            result = (envelope.payload, self._status)
        if self._on_complete is not None:
            self._on_complete(self)
        return result

    def wait(self):
        """Generator: block the calling process until completion.

        Receives return ``(payload, Status)``; sends return ``None``.
        """
        raw = yield self._event
        return self._finalize(raw)

    def test(self) -> Tuple[bool, Any]:
        """Non-blocking completion check.

        Returns ``(False, None)`` while pending, else ``(True, value)``
        where value matches :meth:`wait`'s return.  The request is
        consumed by the first successful test.
        """
        if not self._event.processed:
            return False, None
        return True, self._finalize(self._event.value)


def waitall(env, requests: List[Request]):
    """Generator: wait for every request; returns their values in order.

    This is the primitive the redundancy layer's *request sets* build
    on — one application-level ``MPI_Wait`` maps to ``waitall`` over
    the per-replica requests (Section 3 of the paper).
    """
    if not requests:
        return []
    raw_values = yield AllOf(env, [request.event for request in requests])
    return [request._finalize(raw) for request, raw in zip(requests, raw_values)]


def waitany(env, requests: List[Request]):
    """Generator: wait until one request completes; returns (index, value)."""
    from ..simkit.events import AnyOf

    if not requests:
        raise RequestError("waitany on an empty request list")
    for index, request in enumerate(requests):
        if request.done:
            return index, request._finalize(request.event.value)
    index, raw = yield AnyOf(env, [request.event for request in requests])
    return index, requests[index]._finalize(raw)
