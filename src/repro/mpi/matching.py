"""Per-rank message matching: posted receives and the unexpected queue.

This is the core of MPI semantics.  Each rank owns a
:class:`MatchingEngine`; incoming envelopes either complete a
previously *posted* receive (matched in post order) or join the
*unexpected-message queue* (in arrival order) until a matching receive
is posted.

Matching follows MPI's rules: a posted ``(source, tag)`` pattern
matches an envelope when each field is equal or the pattern field is a
wildcard (:data:`~repro.mpi.status.ANY_SOURCE` /
:data:`~repro.mpi.status.ANY_TAG`).  Non-overtaking holds whenever the
fabric delivers messages of one (source, destination) pair in send
order, which is the case for the default jitter-free fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional
from collections import deque

from ..errors import MPIError
from ..simkit.events import Event
from .status import ANY_SOURCE, ANY_TAG


@dataclass(frozen=True)
class Envelope:
    """One message in flight (or queued): addressing + payload.

    ``cid`` is the communicator context id: messages only ever match
    receives posted on the same communicator, exactly as in MPI.
    """

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    cid: int = 0
    #: Global send sequence number (diagnostics / determinism checks).
    seq: int = field(default=0, compare=False)


@dataclass
class _PostedReceive:
    source: int
    tag: int
    cid: int
    event: Event

    def matches(self, envelope: Envelope) -> bool:
        return _pattern_matches(self.source, self.tag, self.cid, envelope)


def _pattern_matches(source: int, tag: int, cid: int, envelope: Envelope) -> bool:
    if cid != envelope.cid:
        return False
    source_ok = source == ANY_SOURCE or source == envelope.source
    tag_ok = tag == ANY_TAG or tag == envelope.tag
    return source_ok and tag_ok


class MatchingEngine:
    """The receive-side matching state of one rank."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._posted: List[_PostedReceive] = []
        self._unexpected: Deque[Envelope] = deque()
        self._closed = False

    # -- receive side -----------------------------------------------------

    def post(self, env_factory, source: int, tag: int, cid: int = 0) -> Event:
        """Post a receive; returns an event that fires with the Envelope.

        ``env_factory`` is the simulation environment (used to mint the
        completion event).  If an unexpected message already matches,
        the event fires immediately.
        """
        if self._closed:
            raise MPIError(f"rank {self.rank} matching engine is closed")
        event = Event(env_factory)
        for index, envelope in enumerate(self._unexpected):
            if _pattern_matches(source, tag, cid, envelope):
                del self._unexpected[index]
                event.succeed(envelope)
                return event
        self._posted.append(_PostedReceive(source=source, tag=tag, cid=cid, event=event))
        return event

    def cancel(self, event: Event) -> bool:
        """Withdraw a posted receive identified by its event.

        Returns True if it was still pending (and is now cancelled).
        """
        for index, posted in enumerate(self._posted):
            if posted.event is event:
                del self._posted[index]
                return True
        return False

    def probe(self, source: int, tag: int, cid: int = 0) -> Optional[Envelope]:
        """Non-consuming look at the first matching unexpected message."""
        for envelope in self._unexpected:
            if _pattern_matches(source, tag, cid, envelope):
                return envelope
        return None

    # -- delivery side -----------------------------------------------------

    def deliver(self, envelope: Envelope) -> None:
        """Hand an arriving envelope to matching (or queue it)."""
        if self._closed:
            return  # rank died; fail-stop networks drop its traffic
        for index, posted in enumerate(self._posted):
            if posted.matches(envelope):
                del self._posted[index]
                posted.event.succeed(envelope)
                return
        self._unexpected.append(envelope)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down on rank death: drop queues, never complete receives."""
        self._closed = True
        self._posted.clear()
        self._unexpected.clear()

    @property
    def closed(self) -> bool:
        """True once the owning rank has died."""
        return self._closed

    @property
    def pending_receives(self) -> int:
        """Number of posted-but-unmatched receives."""
        return len(self._posted)

    @property
    def unexpected_messages(self) -> int:
        """Number of queued unexpected messages."""
        return len(self._unexpected)
