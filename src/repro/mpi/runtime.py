"""SimMPI: the simulated MPI runtime.

Owns the world — rank processes, per-rank matching engines, the
rank→node placement, liveness, and the traffic accounting the
checkpoint coordinator's bookmark protocol reads.  Programs are
callables taking a :class:`RankContext` and returning a generator.

>>> from repro.simkit import Environment
>>> from repro.mpi import SimMPI
>>> env = Environment()
>>> world = SimMPI(env, size=4)
>>> def program(ctx):
...     total = yield from ctx.comm.allreduce(ctx.rank, ops.SUM)
...     return total
>>> from repro.mpi import ops
>>> world.spawn(program)
>>> world.run()
>>> [world.result_of(r) for r in range(4)]
[6, 6, 6, 6]
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..cluster import Machine, spread_placement
from ..errors import CommunicatorError, MPIError
from ..netsim import Fabric
from ..simkit import Counter, Environment, Resource
from ..simkit.events import AllOf, Event
from ..simkit.process import Process
from .comm import Communicator
from .datatypes import message_wire_size
from .matching import Envelope, MatchingEngine
#: The world communicator's context id; sub-communicators count up.
WORLD_CID = 0


class RankContext:
    """Everything a rank's program sees: its identity, comm and clock."""

    def __init__(self, runtime: "SimMPI", rank: int, comm: Communicator) -> None:
        self.runtime = runtime
        self.rank = rank
        self.comm = comm

    @property
    def env(self) -> Environment:
        """The simulation environment."""
        return self.runtime.env

    @property
    def size(self) -> int:
        """World size."""
        return self.runtime.size

    def compute(self, seconds: float):
        """Event representing ``seconds`` of local computation.

        Yield it from the program.  Scaled by the runtime's
        ``compute_scale`` (useful to shrink experiments).
        """
        return self.env.timeout(seconds * self.runtime.compute_scale)


class SimMPI:
    """The simulated MPI world.

    Parameters
    ----------
    env:
        simkit environment.
    size:
        Number of world ranks to run.
    machine:
        Cluster to place ranks on; defaults to one fresh node per rank.
    fabric:
        Interconnect cost oracle; defaults to jitter-free QDR-like.
    placement:
        Mapping rank→node index; defaults to one-rank-per-node
        (the paper's assumption 2).
    compute_scale:
        Multiplier applied to all ``ctx.compute`` durations.
    """

    def __init__(
        self,
        env: Environment,
        size: int,
        machine: Optional[Machine] = None,
        fabric: Optional[Fabric] = None,
        placement: Optional[Dict[int, int]] = None,
        compute_scale: float = 1.0,
    ) -> None:
        if size < 1:
            raise MPIError(f"world size must be >= 1, got {size}")
        self.env = env
        self.size = size
        self.machine = machine or Machine(node_count=size)
        self.fabric = fabric or Fabric()
        self.placement = placement or spread_placement(self.machine, size)
        if set(self.placement) < set(range(size)):
            raise MPIError("placement must cover every rank")
        self.compute_scale = compute_scale
        self.counters = Counter()
        self._engines: Dict[int, MatchingEngine] = {
            rank: MatchingEngine(rank) for rank in range(size)
        }
        # Per-rank injection channel: a rank can only push one message
        # into the fabric at a time (the LogP overhead/gap), which is
        # what makes the redundancy layer's r-fold fan-out cost r times
        # the sender time (Eq. 1).
        self._nics: Dict[int, "Resource"] = {
            rank: Resource(env, capacity=1) for rank in range(size)
        }
        self._alive: Set[int] = set(range(size))
        self._processes: Dict[int, Process] = {}
        self._next_cid = WORLD_CID + 1
        self._send_seq = 0
        self._death_watchers: List[Callable[[int], None]] = []
        #: Per-(src, dst) sent and consumed message counts — the
        #: bookmark state the checkpoint coordinator equalises.
        self.sent_counts: Dict[tuple, int] = {}
        self.arrived_counts: Dict[tuple, int] = {}

    # -- topology ----------------------------------------------------------

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        try:
            return self.placement[rank]
        except KeyError as exc:
            raise MPIError(f"no placement for rank {rank}") from exc

    def is_alive(self, rank: int) -> bool:
        """Fail-stop liveness of a rank."""
        return rank in self._alive

    @property
    def alive_ranks(self) -> Set[int]:
        """Snapshot of the currently live ranks."""
        return set(self._alive)

    # -- communicators --------------------------------------------------------

    def world_comm(self, rank: int) -> Communicator:
        """The world communicator handle for ``rank``."""
        return Communicator(
            self, group=range(self.size), local_rank=rank, cid=WORLD_CID, name="world"
        )

    def create_comm(self, group: Sequence[int]) -> Dict[int, Communicator]:
        """Mint a sub-communicator over ``group`` (world ranks).

        Returns one handle per member, keyed by world rank.  All
        handles share a fresh context id.
        """
        group = list(group)
        if len(set(group)) != len(group):
            raise CommunicatorError("communicator group has duplicate ranks")
        cid = self._next_cid
        self._next_cid += 1
        return {
            world_rank: Communicator(
                self, group=group, local_rank=local, cid=cid, name=f"comm{cid}"
            )
            for local, world_rank in enumerate(group)
        }

    # -- traffic -----------------------------------------------------------------

    def post_send(self, src: int, dst: int, tag: int, payload: Any, cid: int) -> Event:
        """Inject a message; returns the sender-completion event.

        Fail-stop semantics: sends to dead ranks complete locally (the
        sender cannot know) but the message is dropped.
        """
        if not self.is_alive(src):
            raise MPIError(f"dead rank {src} attempted a send")
        nbytes = message_wire_size(payload)
        src_node = self.node_of(src)
        dst_node = self.node_of(dst)
        busy = self.fabric.sender_busy_time(src_node, dst_node, nbytes)
        self._send_seq += 1
        envelope = Envelope(
            source=src,
            dest=dst,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            cid=cid,
            seq=self._send_seq,
        )
        self.counters.add("p2p_messages")
        self.counters.add("p2p_bytes", nbytes)
        key = (src, dst)
        self.sent_counts[key] = self.sent_counts.get(key, 0) + 1
        completion = Event(self.env)
        self.env.process(
            self._inject(envelope, src, busy, src_node, dst_node, completion),
            name=f"send{envelope.seq}",
        )
        return completion

    def _inject(self, envelope: Envelope, src: int, busy: float, src_node: int, dst_node: int, completion: Event):
        """Serialised injection through the sender's NIC channel."""
        grant = self._nics[src].request()
        yield grant
        try:
            yield self.env.timeout(busy)
        finally:
            self._nics[src].release()
        completion.succeed()
        if self.is_alive(envelope.dest):
            wire = self.fabric.wire_latency(src_node, dst_node)
            arrival = Event(self.env)
            arrival.add_callback(lambda _event: self._arrive(envelope))
            arrival.succeed(delay=wire)
        else:
            self.counters.add("p2p_dropped")

    def _arrive(self, envelope: Envelope) -> None:
        if not self.is_alive(envelope.dest):
            self.counters.add("p2p_dropped")
            return
        key = (envelope.source, envelope.dest)
        self.arrived_counts[key] = self.arrived_counts.get(key, 0) + 1
        self._engines[envelope.dest].deliver(envelope)

    def post_recv(self, rank: int, source: int, tag: int, cid: int) -> Event:
        """Post a receive on ``rank``'s matching engine."""
        if not self.is_alive(rank):
            raise MPIError(f"dead rank {rank} attempted a receive")
        return self._engines[rank].post(self.env, source, tag, cid)

    def probe(self, rank: int, source: int, tag: int, cid: int):
        """Non-consuming probe of ``rank``'s unexpected queue."""
        return self._engines[rank].probe(source, tag, cid)

    def cancel_recv(self, rank: int, event: Event) -> bool:
        """Withdraw a posted receive (redundancy layer, dead peers).

        Returns True if the receive was still pending and is now gone;
        False if it already matched (its message will be delivered).
        """
        return self._engines[rank].cancel(event)

    def channels_quiet(self) -> bool:
        """True when every sent message has arrived (bookmarks equal).

        This is the condition the OpenMPI-style coordinated-checkpoint
        protocol waits for before processes capture their images.
        Traffic to dead ranks is excluded (it was dropped).
        """
        for (src, dst), sent in self.sent_counts.items():
            if not self.is_alive(dst) or not self.is_alive(src):
                continue
            if self.arrived_counts.get((src, dst), 0) != sent:
                return False
        return True

    # -- lifecycle -----------------------------------------------------------------

    def spawn(
        self,
        program: Callable[[RankContext], Any],
        ranks: Optional[Sequence[int]] = None,
    ) -> None:
        """Start ``program(ctx)`` as a process on each rank.

        ``program`` is called once per rank with that rank's context
        and must return a generator.
        """
        for rank in ranks if ranks is not None else range(self.size):
            if rank in self._processes:
                raise MPIError(f"rank {rank} already spawned")
            context = RankContext(self, rank, self.world_comm(rank))
            self._processes[rank] = self.env.process(
                program(context), name=f"rank{rank}"
            )

    def kill_rank(self, rank: int, cause: Any = None) -> None:
        """Fail-stop a rank: close its engine, interrupt its process.

        No-op when the rank is already dead.
        """
        if rank not in self._alive:
            return
        self._alive.discard(rank)
        self._engines[rank].close()
        process = self._processes.get(rank)
        if process is not None:
            process.interrupt(cause)
        self.counters.add("ranks_killed")
        for watcher in list(self._death_watchers):
            watcher(rank)

    def on_rank_death(self, watcher: Callable[[int], None]) -> None:
        """Register a callback for rank deaths (detector, spheres)."""
        self._death_watchers.append(watcher)

    def run(self, until: Optional[float] = None) -> None:
        """Drive the simulation until all spawned ranks finish.

        With ``until`` set, stops at that simulation time instead
        (whether or not ranks finished).
        """
        if not self._processes:
            raise MPIError("run() before spawn()")
        if until is not None:
            self.env.run(until=until)
            return
        everyone = AllOf(self.env, list(self._processes.values()))
        self.env.run(until=everyone)

    def all_done(self) -> bool:
        """True when every spawned rank process has finished."""
        return all(process.triggered for process in self._processes.values())

    def result_of(self, rank: int) -> Any:
        """Return value of a finished rank's program."""
        process = self._processes.get(rank)
        if process is None:
            raise MPIError(f"rank {rank} was never spawned")
        if not process.triggered:
            raise MPIError(f"rank {rank} has not finished")
        return process.value

    def process_of(self, rank: int) -> Process:
        """The simkit process running ``rank`` (for interrupt plumbing)."""
        try:
            return self._processes[rank]
        except KeyError as exc:
            raise MPIError(f"rank {rank} was never spawned") from exc
