"""mpi — a simulated MPI runtime on the simkit kernel.

Implements the slice of MPI the paper's redundancy layer interposes on:
point-to-point send/recv (blocking and non-blocking, with tags and
``ANY_SOURCE``/``ANY_TAG`` wildcards), request handles with
wait/test/waitall, probe, and the standard collectives built from
point-to-point messages (which is exactly why redundancy multiplies
collective cost by ``r`` in Eq. 1 — there are no hardware collectives
here either).

Programs are simkit generator processes; blocking calls are written as
``yield from``:

>>> from repro.simkit import Environment
>>> from repro.mpi import SimMPI
>>> env = Environment()
>>> world = SimMPI(env, size=2)
>>> def program(ctx):
...     if ctx.rank == 0:
...         yield from ctx.comm.send(b"hi", dest=1, tag=7)
...     else:
...         payload, status = yield from ctx.comm.recv(source=0, tag=7)
...         assert payload == b"hi" and status.source == 0
>>> world.spawn(program)
>>> world.run()
"""

from .status import ANY_SOURCE, ANY_TAG, Status
from .datatypes import payload_nbytes
from .matching import Envelope, MatchingEngine
from .requests import Request
from .comm import Communicator
from .runtime import RankContext, SimMPI
from . import ops

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Envelope",
    "MatchingEngine",
    "RankContext",
    "Request",
    "SimMPI",
    "Status",
    "ops",
    "payload_nbytes",
]
