"""Reduction operators for collectives (mirrors MPI_Op).

All provided operators are commutative and associative, so the tree
order used by :mod:`repro.mpi.collectives` does not affect results
(up to floating-point rounding).  Operators are numpy-aware: reducing
two arrays reduces elementwise.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

Op = Callable[[Any, Any], Any]


def SUM(a: Any, b: Any) -> Any:
    """Elementwise / scalar addition (MPI_SUM)."""
    return np.add(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else a + b


def PROD(a: Any, b: Any) -> Any:
    """Elementwise / scalar product (MPI_PROD)."""
    return np.multiply(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else a * b


def MAX(a: Any, b: Any) -> Any:
    """Elementwise / scalar maximum (MPI_MAX)."""
    return np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b)


def MIN(a: Any, b: Any) -> Any:
    """Elementwise / scalar minimum (MPI_MIN)."""
    return np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b)


def LAND(a: Any, b: Any) -> Any:
    """Logical and (MPI_LAND)."""
    return bool(a) and bool(b)


def LOR(a: Any, b: Any) -> Any:
    """Logical or (MPI_LOR)."""
    return bool(a) or bool(b)
