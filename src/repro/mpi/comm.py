"""The communicator: the per-rank handle for all communication.

Each simulated rank holds its own :class:`Communicator` object (as in
real MPI, where the handle is process-local).  A communicator is a view
onto a *group* of global ranks with a private context id, so traffic on
different communicators never cross-matches.

Blocking operations are generators — call them with ``yield from``:

    yield from comm.send(payload, dest=3, tag=0)
    payload, status = yield from comm.recv(source=ANY_SOURCE, tag=0)

Non-blocking operations return :class:`~repro.mpi.requests.Request`
handles; complete them with ``yield from request.wait()`` or
``yield from comm.waitall(requests)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from ..errors import CommunicatorError
from .requests import RECV, Request, waitall as _waitall, waitany as _waitany
from .status import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SimMPI

#: User tags must stay below this; collectives use the space above it.
USER_TAG_LIMIT = 1 << 20
_COLLECTIVE_TAG_BASE = USER_TAG_LIMIT


class CollectiveAPI:
    """Mixin providing collectives + request completion over p2p calls.

    Any class exposing ``rank``, ``size``, ``env``, ``isend``, ``irecv``,
    ``send``, ``recv`` and a ``_coll_seq`` counter gets the full
    collective API.  Used by both the plain :class:`Communicator` and
    the redundancy layer's ``RedComm`` — which is exactly how the paper
    justifies Eq. 1: collectives decompose to (interposed)
    point-to-point messages.
    """

    _coll_seq: int

    def _next_collective_tag(self) -> int:
        """Tag for the next collective call on this communicator.

        Relies on the MPI/SPMD rule that all ranks of a communicator
        invoke collectives in the same order.
        """
        tag = _COLLECTIVE_TAG_BASE + self._coll_seq
        self._coll_seq += 1
        return tag

    def waitall(self, requests: List[Request]):
        """Generator: complete all requests; returns values in order."""
        result = yield from _waitall(self.env, requests)
        return result

    def waitany(self, requests: List[Request]):
        """Generator: complete one request; returns ``(index, value)``."""
        result = yield from _waitany(self.env, requests)
        return result

    def barrier(self):
        """Generator: dissemination barrier."""
        from . import collectives

        yield from collectives.barrier(self)

    def bcast(self, value: Any, root: int = 0):
        """Generator: binomial-tree broadcast; returns the value everywhere."""
        from . import collectives

        result = yield from collectives.bcast(self, value, root)
        return result

    def reduce(self, value: Any, op, root: int = 0):
        """Generator: binomial-tree reduce; returns result at root else None."""
        from . import collectives

        result = yield from collectives.reduce(self, value, op, root)
        return result

    def allreduce(self, value: Any, op):
        """Generator: reduce-to-root + broadcast; returns result everywhere."""
        from . import collectives

        result = yield from collectives.allreduce(self, value, op)
        return result

    def gather(self, value: Any, root: int = 0):
        """Generator: gather values; returns the list at root else None."""
        from . import collectives

        result = yield from collectives.gather(self, value, root)
        return result

    def allgather(self, value: Any):
        """Generator: gather + broadcast; returns the list everywhere."""
        from . import collectives

        result = yield from collectives.allgather(self, value)
        return result

    def scatter(self, values: Optional[List[Any]], root: int = 0):
        """Generator: scatter ``values`` from root; returns this rank's item."""
        from . import collectives

        result = yield from collectives.scatter(self, values, root)
        return result

    def alltoall(self, values: List[Any]):
        """Generator: personalised all-to-all; returns the received list."""
        from . import collectives

        result = yield from collectives.alltoall(self, values)
        return result

    def scan(self, value: Any, op):
        """Generator: inclusive prefix reduction; rank k gets op(v_0..v_k)."""
        from . import collectives

        result = yield from collectives.scan(self, value, op)
        return result


class Communicator(CollectiveAPI):
    """A group-scoped communication handle for one rank."""

    def __init__(
        self,
        runtime: "SimMPI",
        group: Sequence[int],
        local_rank: int,
        cid: int,
        name: str = "comm",
    ) -> None:
        if local_rank < 0 or local_rank >= len(group):
            raise CommunicatorError(
                f"local rank {local_rank} outside group of size {len(group)}"
            )
        self._runtime = runtime
        self._group: List[int] = list(group)
        self._local_rank = local_rank
        self._cid = cid
        self.name = name
        self._global_of: Dict[int, int] = dict(enumerate(self._group))
        self._local_of: Dict[int, int] = {g: l for l, g in self._global_of.items()}
        self._coll_seq = 0

    # -- identity ---------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._local_rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._group)

    @property
    def env(self):
        """The simulation environment (for ``waitall`` etc.)."""
        return self._runtime.env

    @property
    def cid(self) -> int:
        """Context id separating this communicator's traffic."""
        return self._cid

    def global_rank(self, local: int) -> int:
        """Translate a communicator rank to the world rank."""
        try:
            return self._global_of[local]
        except KeyError as exc:
            raise CommunicatorError(f"no local rank {local} in {self.name}") from exc

    def local_rank_of(self, global_rank: int) -> int:
        """Translate a world rank back into this communicator."""
        try:
            return self._local_of[global_rank]
        except KeyError as exc:
            raise CommunicatorError(
                f"world rank {global_rank} not in communicator {self.name}"
            ) from exc

    def peer_alive(self, local: int) -> bool:
        """Liveness of a peer (used by the redundancy layer)."""
        return self._runtime.is_alive(self.global_rank(local))

    # -- point to point ----------------------------------------------------

    def _check_tag(self, tag: int, internal: bool) -> None:
        if tag < 0:
            raise CommunicatorError(f"tag must be >= 0, got {tag}")
        if not internal and tag >= USER_TAG_LIMIT:
            raise CommunicatorError(
                f"user tags must be < {USER_TAG_LIMIT}, got {tag}"
            )

    def isend(self, payload: Any, dest: int, tag: int = 0, _internal: bool = False) -> Request:
        """Non-blocking send; returns a request completing at injection."""
        self._check_tag(tag, _internal)
        global_dest = self.global_rank(dest)
        event = self._runtime.post_send(
            src=self.global_rank(self._local_rank),
            dst=global_dest,
            tag=tag,
            payload=payload,
            cid=self._cid,
        )
        return Request(kind="send", event=event, peer=dest, tag=tag)

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, _internal: bool = True
    ) -> Request:
        """Non-blocking receive; request completes when matched."""
        if tag != ANY_TAG:
            self._check_tag(tag, _internal)
        global_source = source if source == ANY_SOURCE else self.global_rank(source)
        my_global = self.global_rank(self._local_rank)
        event = self._runtime.post_recv(
            rank=my_global, source=global_source, tag=tag, cid=self._cid
        )
        return Request(
            kind=RECV,
            event=event,
            peer=source,
            tag=tag,
            source_map=self.local_rank_of,
        )

    def send(self, payload: Any, dest: int, tag: int = 0, _internal: bool = False):
        """Blocking send (generator)."""
        request = self.isend(payload, dest, tag, _internal=_internal)
        yield from request.wait()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive (generator); returns ``(payload, Status)``."""
        request = self.irecv(source, tag)
        result = yield from request.wait()
        return result

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int = ANY_SOURCE,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ):
        """Combined send+receive (generator); returns ``(payload, Status)``.

        Posts both before waiting, so symmetric exchanges cannot
        deadlock.
        """
        send_request = self.isend(payload, dest, send_tag)
        recv_request = self.irecv(source, recv_tag)
        results = yield from _waitall(self.env, [send_request, recv_request])
        return results[1]

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already queued."""
        global_source = source if source == ANY_SOURCE else self.global_rank(source)
        my_global = self.global_rank(self._local_rank)
        return (
            self._runtime.probe(my_global, global_source, tag, self._cid) is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator {self.name} rank={self.rank}/{self.size}>"
