"""Status objects and wildcard constants (mirrors MPI_Status)."""

from __future__ import annotations

from dataclasses import dataclass

#: Wildcard matching any sending rank (MPI_ANY_SOURCE).
ANY_SOURCE = -1
#: Wildcard matching any message tag (MPI_ANY_TAG).
ANY_TAG = -2


@dataclass(frozen=True)
class Status:
    """Completion metadata of a receive.

    Attributes
    ----------
    source:
        Rank that sent the matched message (the *actual* source, even
        for wildcard receives — this is what the redundancy layer's
        ANY_SOURCE protocol forwards to sibling replicas).
    tag:
        Tag of the matched message.
    nbytes:
        Payload size in bytes.
    """

    source: int
    tag: int
    nbytes: int
