"""Collective operations, built entirely from point-to-point messages.

This matters for the paper's model: because collectives decompose into
point-to-point sends, the redundancy layer's r-fold amplification of
p2p traffic amplifies collective cost by the same factor — that is the
basis of Eq. 1 ("all collective communication in MPI is based on
point-to-point MPI messages").

Algorithms (standard MPICH-style):

* ``barrier``    — dissemination (log2(P) rounds of pairwise exchange);
* ``bcast``      — binomial tree;
* ``reduce``     — binomial tree (commutative ops);
* ``allreduce``  — reduce to rank 0, then broadcast;
* ``gather``     — linear fan-in with posted receives;
* ``allgather``  — gather + broadcast;
* ``scatter``    — linear fan-out;
* ``alltoall``   — pairwise exchange with offset scheduling;
* ``scan``       — linear pipeline inclusive prefix reduction.

All functions are generators and must be driven with ``yield from``
inside a simkit process.  Every rank of the communicator must call the
same collectives in the same order (the usual MPI contract).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..errors import CommunicatorError


def barrier(comm):
    """Dissemination barrier: after this, all ranks have entered."""
    size = comm.size
    if size == 1:
        return
    tag = comm._next_collective_tag()
    rank = comm.rank
    distance = 1
    while distance < size:
        dest = (rank + distance) % size
        source = (rank - distance) % size
        send_request = comm.isend(b"", dest, tag, _internal=True)
        recv_request = comm.irecv(source, tag)
        yield from comm.waitall([send_request, recv_request])
        distance <<= 1


def bcast(comm, value: Any, root: int = 0):
    """Binomial-tree broadcast; returns the root's value on every rank."""
    size = comm.size
    rank = comm.rank
    _check_root(root, size)
    if size == 1:
        return value
    tag = comm._next_collective_tag()
    relative = (rank - root) % size

    # Receive phase: find the round in which this rank gets the value.
    mask = 1
    while mask < size:
        if relative & mask:
            source = (rank - mask) % size
            payload, _status = yield from comm.recv(source, tag)
            value = payload
            break
        mask <<= 1
    else:
        mask = 1 << (size - 1).bit_length()

    # Send phase: forward to the subtree below this rank.
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            dest = (rank + mask) % size
            yield from comm.send(value, dest, tag, _internal=True)
        mask >>= 1
    return value


def reduce(comm, value: Any, op, root: int = 0):
    """Binomial-tree reduction; result lands at ``root``.

    ``op`` must be commutative (all :mod:`repro.mpi.ops` operators are).
    Returns the reduced value at root, ``None`` elsewhere.
    """
    size = comm.size
    rank = comm.rank
    _check_root(root, size)
    if size == 1:
        return value
    tag = comm._next_collective_tag()
    relative = (rank - root) % size
    accumulator = value
    mask = 1
    while mask < size:
        if relative & mask:
            dest = (rank - mask) % size
            yield from comm.send(accumulator, dest, tag, _internal=True)
            break
        partner_relative = relative | mask
        if partner_relative < size:
            source = (rank + mask) % size
            payload, _status = yield from comm.recv(source, tag)
            accumulator = op(accumulator, payload)
        mask <<= 1
    if rank == root:
        return accumulator
    return None


def allreduce(comm, value: Any, op):
    """Reduce to rank 0 then broadcast; returns the result everywhere."""
    reduced = yield from reduce(comm, value, op, root=0)
    result = yield from bcast(comm, reduced, root=0)
    return result


def gather(comm, value: Any, root: int = 0):
    """Linear gather; returns the ordered list at root, None elsewhere."""
    size = comm.size
    rank = comm.rank
    _check_root(root, size)
    tag = comm._next_collective_tag()
    if rank != root:
        yield from comm.send(value, root, tag, _internal=True)
        return None
    collected: List[Any] = [None] * size
    collected[root] = value
    requests = [comm.irecv(peer, tag) for peer in range(size) if peer != root]
    results = yield from comm.waitall(requests)
    for payload, status in results:
        collected[status.source] = payload
    return collected


def allgather(comm, value: Any):
    """Gather at rank 0 then broadcast the list; returns it everywhere."""
    collected = yield from gather(comm, value, root=0)
    result = yield from bcast(comm, collected, root=0)
    return result


def scatter(comm, values: Optional[List[Any]], root: int = 0):
    """Linear scatter from root; returns this rank's element."""
    size = comm.size
    rank = comm.rank
    _check_root(root, size)
    tag = comm._next_collective_tag()
    if rank == root:
        if values is None or len(values) != size:
            raise CommunicatorError(
                f"scatter root needs exactly {size} values, got "
                f"{'None' if values is None else len(values)}"
            )
        requests = [
            comm.isend(values[peer], peer, tag, _internal=True)
            for peer in range(size)
            if peer != root
        ]
        yield from comm.waitall(requests)
        return values[root]
    payload, _status = yield from comm.recv(root, tag)
    return payload


def alltoall(comm, values: List[Any]):
    """Pairwise-exchange personalised all-to-all.

    ``values[i]`` goes to rank ``i``; returns a list whose ``i``-th
    entry came from rank ``i``.
    """
    size = comm.size
    rank = comm.rank
    if len(values) != size:
        raise CommunicatorError(
            f"alltoall needs exactly {size} values, got {len(values)}"
        )
    tag = comm._next_collective_tag()
    received: List[Any] = [None] * size
    received[rank] = values[rank]
    if size == 1:
        return received
    requests = []
    for offset in range(1, size):
        dest = (rank + offset) % size
        source = (rank - offset) % size
        requests.append(comm.isend(values[dest], dest, tag, _internal=True))
        requests.append(comm.irecv(source, tag))
    results = yield from comm.waitall(requests)
    for request, result in zip(requests, results):
        if request.kind == "recv":
            payload, status = result
            received[status.source] = payload
    return received


def scan(comm, value: Any, op):
    """Inclusive prefix reduction (MPI_Scan): rank k gets op(v_0..v_k).

    Linear pipeline: rank k receives the prefix from k-1, folds its own
    value, forwards to k+1.  O(P) latency but exact MPI semantics for
    non-commutative usage (values are folded in rank order).
    """
    size = comm.size
    rank = comm.rank
    if size == 1:
        return value
    tag = comm._next_collective_tag()
    accumulator = value
    if rank > 0:
        prefix, _status = yield from comm.recv(rank - 1, tag)
        accumulator = op(prefix, value)
    if rank < size - 1:
        yield from comm.send(accumulator, rank + 1, tag, _internal=True)
    return accumulator


def _check_root(root: int, size: int) -> None:
    if not 0 <= root < size:
        raise CommunicatorError(f"root {root} outside communicator of size {size}")
