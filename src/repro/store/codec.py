"""Lossless JSON codecs for stored results.

Encodes :class:`~repro.orchestration.job.JobReport` and
:class:`~repro.models.combined.CombinedResult` (and everything nested
inside them) into plain-JSON payloads and back, **bit-identically**:

* non-finite floats — diverged cells carry ``inf`` total times, empty
  histograms ``nan`` — are tagged (``{"__f": "inf"}``) because strict
  JSON cannot represent them; finite floats ride as JSON numbers, whose
  ``repr`` round-trip is exact for float64;
* tuples are tagged (``{"__t": [...]}``) so they come back as tuples,
  not lists — dataclass equality depends on it;
* registered dataclasses are tagged with their type name and rebuilt
  via their constructor (so ``__post_init__`` validation re-runs on
  decode: a payload that no longer satisfies the model's invariants
  fails loudly);
* dicts with awkward keys (non-strings, or strings colliding with the
  tag namespace) are escaped as pair lists.

Unknown object types raise :class:`~repro.errors.CodecError` at encode
time; unknown tags or type names raise it at decode time.  The payload
envelope carries a codec version so a future incompatible change can
refuse old payloads instead of mis-decoding them.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Type

from ..errors import CodecError
from ..faults import StorageFaultConfig
from ..models.advisor import Recommendation
from ..models.checkpointing import TimeBreakdown
from ..models.combined import CombinedModel, CombinedResult
from ..models.optimize import CrossoverPoint, RedundancySweepPoint
from ..models.redundancy import RedundancyPartition
from ..orchestration.job import JobReport, TimelineEvent

__all__ = [
    "CODEC_VERSION",
    "decode",
    "decode_payload",
    "decode_report",
    "decode_result",
    "encode",
    "encode_payload",
    "encode_report",
    "encode_result",
]

#: Bump on incompatible payload layout changes.
CODEC_VERSION = 1

#: Dataclasses the codec may embed.  Name-keyed (not module-keyed) so a
#: payload survives module moves; names must therefore stay unique.
REGISTERED_TYPES: Dict[str, Type] = {
    cls.__name__: cls
    for cls in (
        TimelineEvent,
        JobReport,
        CombinedModel,
        RedundancyPartition,
        TimeBreakdown,
        CombinedResult,
        RedundancySweepPoint,
        CrossoverPoint,
        Recommendation,
        StorageFaultConfig,
    )
}

_TAGS = ("__f", "__t", "__dc", "__d")


def encode(value: Any) -> Any:
    """Encode ``value`` into a strict-JSON-safe structure."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return {"__f": "nan"}
        if math.isinf(value):
            return {"__f": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, tuple):
        return {"__t": [encode(item) for item in value]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        plain = all(
            isinstance(key, str) and not key.startswith("__") for key in value
        )
        if plain:
            return {key: encode(item) for key, item in value.items()}
        return {"__d": [[encode(key), encode(item)] for key, item in value.items()]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in REGISTERED_TYPES:
            raise CodecError(
                f"dataclass {name!r} is not registered with the store codec"
            )
        return {
            "__dc": name,
            "f": {
                field.name: encode(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    # numpy scalars: normalise to the Python number they represent.
    item = getattr(value, "item", None)
    if item is not None:
        try:
            plain = item()
        except Exception:  # noqa: BLE001 - fall through to the error below
            plain = value
        if plain is not value and isinstance(plain, (bool, int, float, str)):
            return encode(plain)
    raise CodecError(
        f"cannot encode {type(value).__name__!r} value for storage: {value!r}"
    )


_NONFINITE = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def decode(value: Any) -> Any:
    """Invert :func:`encode`."""
    if isinstance(value, dict):
        if "__f" in value:
            try:
                return _NONFINITE[value["__f"]]
            except (KeyError, TypeError) as exc:
                raise CodecError(f"bad non-finite float tag: {value!r}") from exc
        if "__t" in value:
            return tuple(decode(item) for item in value["__t"])
        if "__d" in value:
            return {decode(key): decode(item) for key, item in value["__d"]}
        if "__dc" in value:
            name = value["__dc"]
            cls = REGISTERED_TYPES.get(name)
            if cls is None:
                raise CodecError(f"unknown stored dataclass type {name!r}")
            fields = value.get("f", {})
            try:
                return cls(**{key: decode(item) for key, item in fields.items()})
            except TypeError as exc:
                raise CodecError(
                    f"stored {name!r} payload does not match its current "
                    f"field set: {exc}"
                ) from exc
        return {key: decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode(item) for item in value]
    return value


# -- envelopes ---------------------------------------------------------------


def encode_payload(obj: Any) -> Dict[str, Any]:
    """Wrap any encodable object in the versioned storage envelope."""
    return {"codec": CODEC_VERSION, "data": encode(obj)}


def decode_payload(payload: Any) -> Any:
    """Unwrap the storage envelope; refuses foreign codec versions."""
    if not isinstance(payload, dict) or "data" not in payload:
        raise CodecError(f"malformed storage payload: {payload!r}")
    version = payload.get("codec")
    if version != CODEC_VERSION:
        raise CodecError(
            f"stored payload uses codec version {version!r}; this build "
            f"reads version {CODEC_VERSION}"
        )
    return decode(payload["data"])


def encode_report(report: JobReport) -> Dict[str, Any]:
    """Envelope one :class:`~repro.orchestration.job.JobReport`."""
    if not isinstance(report, JobReport):
        raise CodecError(f"expected a JobReport, got {type(report).__name__}")
    return encode_payload(report)


def decode_report(payload: Any) -> JobReport:
    """Decode a payload that must hold a ``JobReport``."""
    report = decode_payload(payload)
    if not isinstance(report, JobReport):
        raise CodecError(
            f"stored payload decoded to {type(report).__name__}, "
            "expected JobReport"
        )
    return report


def encode_result(result: CombinedResult) -> Dict[str, Any]:
    """Envelope one :class:`~repro.models.combined.CombinedResult`."""
    if not isinstance(result, CombinedResult):
        raise CodecError(
            f"expected a CombinedResult, got {type(result).__name__}"
        )
    return encode_payload(result)


def decode_result(payload: Any) -> CombinedResult:
    """Decode a payload that must hold a ``CombinedResult``."""
    result = decode_payload(payload)
    if not isinstance(result, CombinedResult):
        raise CodecError(
            f"stored payload decoded to {type(result).__name__}, "
            "expected CombinedResult"
        )
    return result
