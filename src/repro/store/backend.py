"""On-disk key/value backend: atomic writes, CRC-verified reads, LRU.

Layout: ``root/<key[:2]>/<key[2:]>.json`` — two-hex-char shard
directories keep any one directory small under large campaigns.

Durability/integrity contract:

* **atomic writes** — payloads are written to a same-directory temp
  file and ``os.replace``d into place, so readers (including other
  processes) never observe a half-written entry and a crash never
  leaves a corrupt *final* file, only an orphan temp;
* **CRC-verified reads** — each record stores a CRC32 of the canonical
  JSON of its payload; the CRC is recomputed on every disk read, and a
  mismatch (at-rest bit rot, truncation, manual tampering) is treated
  as a **miss**, counted, and the damaged file is quarantined out of
  the way so a re-run simply recomputes and rewrites the entry;
* **in-process LRU** — a bounded ``OrderedDict`` fronts the disk so a
  hot key (the serving layer's memoized recommendations) costs no I/O
  after first touch.  Cached payloads are shared objects; callers must
  treat them as read-only (the codec builds fresh objects on decode,
  so normal store usage never mutates them).
"""

from __future__ import annotations

import json
import os
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from ..errors import ConfigurationError, StoreError

__all__ = ["DiskBackend"]

_KEY_CHARS = set("0123456789abcdef")


def _canonical_dumps(payload: Any) -> str:
    # allow_nan=False: payloads are codec output, where non-finite
    # floats are tagged; a raw nan/inf here is a bug upstream and would
    # break the CRC canonicalisation (nan != nan after a round trip).
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True,
        allow_nan=False,
    )


class DiskBackend:
    """Sharded, CRC-verified, LRU-fronted on-disk payload store."""

    def __init__(self, root, lru_capacity: int = 256) -> None:
        if lru_capacity < 0:
            raise ConfigurationError(
                f"lru_capacity must be >= 0, got {lru_capacity}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.lru_capacity = int(lru_capacity)
        self._lru: "OrderedDict[str, Any]" = OrderedDict()
        self._tmp_serial = 0
        #: Counters exposed through :meth:`stats`.
        self.lru_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0
        self.deletes = 0

    # -- paths --------------------------------------------------------------

    def _path(self, key: str) -> Path:
        if len(key) < 3 or not set(key) <= _KEY_CHARS:
            raise StoreError(f"malformed store key {key!r}")
        return self.root / key[:2] / f"{key[2:]}.json"

    # -- write --------------------------------------------------------------

    def put(self, key: str, payload: Any) -> None:
        """Atomically persist ``payload`` under ``key`` (overwrites)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = _canonical_dumps(payload)
        record = {"key": key, "crc": zlib.crc32(body.encode("utf-8")), "payload": payload}
        self._tmp_serial += 1
        tmp = path.parent / f".{path.name}.{os.getpid()}.{self._tmp_serial}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(_canonical_dumps(record))
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # write or replace failed midway
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        self._remember(key, payload)
        self.writes += 1

    # -- read ---------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The payload stored under ``key``, or ``None`` (miss).

        Damaged entries (unparseable, wrong key, CRC mismatch) count as
        misses: the file is quarantined and the caller recomputes.
        """
        cached = self._lru.get(key)
        if cached is not None:
            self._lru.move_to_end(key)
            self.lru_hits += 1
            return cached
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._quarantine(path)
            self.corrupt += 1
            self.misses += 1
            return None
        payload = record.get("payload") if isinstance(record, dict) else None
        if (
            not isinstance(record, dict)
            or record.get("key") != key
            or record.get("crc")
            != zlib.crc32(_canonical_dumps(payload).encode("utf-8"))
        ):
            self._quarantine(path)
            self.corrupt += 1
            self.misses += 1
            return None
        self._remember(key, payload)
        self.disk_hits += 1
        return payload

    def has(self, key: str) -> bool:
        """Whether ``key`` exists (no CRC verification)."""
        return key in self._lru or self._path(key).exists()

    # -- delete / enumerate -------------------------------------------------

    def delete(self, key: str) -> bool:
        """Remove ``key``; True when an entry actually existed."""
        self._lru.pop(key, None)
        path = self._path(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        self.deletes += 1
        return True

    def iter_keys(self) -> Iterator[str]:
        """Every key currently on disk (shard scan; no verification)."""
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for entry in sorted(shard.iterdir()):
                if entry.suffix == ".json" and not entry.name.startswith("."):
                    yield shard.name + entry.name[: -len(".json")]

    # -- stats --------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (hits split by tier, misses, corruption)."""
        return {
            "lru_hits": self.lru_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "deletes": self.deletes,
        }

    # -- internals ----------------------------------------------------------

    def _remember(self, key: str, payload: Any) -> None:
        if self.lru_capacity == 0:
            return
        self._lru[key] = payload
        self._lru.move_to_end(key)
        while len(self._lru) > self.lru_capacity:
            self._lru.popitem(last=False)

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a damaged entry aside so a rewrite starts clean."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:  # pragma: no cover - racing delete is fine
            pass
