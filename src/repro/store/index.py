"""Lightweight persistent index over stored keys.

An append-only JSONL operation log (``index.jsonl`` in the store root):
each line is a ``put`` or ``delete`` op carrying the key, its kind
(``"job"``, ``"recommend"``, ...) and the package version that wrote
it.  Appending keeps hot-path writes O(1); the in-memory view is the
log's replay.  A truncated final line (crash mid-append) is skipped on
load — the worst case is re-computing one cell.

Invalidate-by-version: keys are version-salted (see
:mod:`repro.store.keys`), so entries written by an older package
version can never be *read* by a newer one — they are just dead disk.
:meth:`stale_keys` surfaces them so the facade can delete the files,
and :meth:`compact` rewrites the log (atomically) to drop the
accumulated ops.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["StoreIndex"]

_FILENAME = "index.jsonl"


class StoreIndex:
    """Replayable put/delete log of the store's contents."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / _FILENAME
        #: key -> {"kind": str, "version": str}
        self.entries: Dict[str, Dict[str, str]] = {}
        #: Log lines replayed or appended since load (compaction cue).
        self.ops = 0
        self._load()

    # -- load / persist ------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    op = json.loads(line)
                except json.JSONDecodeError:
                    continue  # crash-truncated tail
                self.ops += 1
                if not isinstance(op, dict):
                    continue
                key = op.get("key")
                if not isinstance(key, str):
                    continue
                if op.get("op") == "put":
                    self.entries[key] = {
                        "kind": str(op.get("kind", "")),
                        "version": str(op.get("version", "")),
                    }
                elif op.get("op") == "delete":
                    self.entries.pop(key, None)

    def _append(self, op: Dict[str, str]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(op, sort_keys=True) + "\n")
        self.ops += 1

    # -- mutation ------------------------------------------------------------

    def record_put(self, key: str, kind: str, version: str) -> None:
        """Log that ``key`` (of ``kind``) was written by ``version``."""
        self.entries[key] = {"kind": kind, "version": version}
        self._append({"op": "put", "key": key, "kind": kind, "version": version})

    def record_delete(self, key: str) -> None:
        """Log that ``key`` was removed."""
        self.entries.pop(key, None)
        self._append({"op": "delete", "key": key})

    def compact(self) -> None:
        """Rewrite the log as pure puts of the live entries (atomic)."""
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            for key in sorted(self.entries):
                entry = self.entries[key]
                handle.write(
                    json.dumps(
                        {
                            "op": "put",
                            "key": key,
                            "kind": entry["kind"],
                            "version": entry["version"],
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        os.replace(tmp, self.path)
        self.ops = len(self.entries)

    # -- queries -------------------------------------------------------------

    def keys(self, kind: Optional[str] = None) -> List[str]:
        """Live keys, optionally filtered by kind (sorted)."""
        if kind is None:
            return sorted(self.entries)
        return sorted(
            key for key, entry in self.entries.items() if entry["kind"] == kind
        )

    def stale_keys(self, current_version: str) -> List[str]:
        """Keys written by any version other than ``current_version``."""
        return sorted(
            key
            for key, entry in self.entries.items()
            if entry["version"] != current_version
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: str) -> bool:
        return key in self.entries
