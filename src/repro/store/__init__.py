"""store — persistent, content-addressed results cache.

The paper's model and simulator are deterministic: a
:class:`~repro.orchestration.job.JobConfig` (seed included) fully
determines its :class:`~repro.orchestration.job.JobReport`.  That makes
results *content-addressable* — the config's canonical hash is the
result's identity — and re-running an identical campaign cell pure
waste.  :class:`ResultsStore` exploits this:

* :mod:`keys` — stable canonical cache keys (SHA-256 over a canonical
  serialization of the config + seed + package version);
* :mod:`codec` — lossless, NaN/inf-safe JSON round-trip codecs for
  ``JobReport``/``CombinedResult`` (and the advisor's
  ``Recommendation``);
* :mod:`backend` — sharded on-disk storage with atomic writes,
  CRC-verified reads and an in-process LRU;
* :mod:`index` — an append-only key index with invalidate-by-version
  (entries from older package versions are garbage-collected on open).

The campaign executor consults the store before running a cell and
persists each completed cell as it finishes, so interrupted campaigns
**resume** and repeated campaigns are near-instant with bit-identical
results; the serving layer memoizes ``/recommend`` answers through the
same store.

Resolution order for the CLI: ``--store DIR`` > ``REPRO_STORE`` env >
``--resume`` (default directory ``.repro-store``) > disabled;
``--no-store`` forces disabled.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from ..errors import CodecError, StoreError, UnkeyableError
from ..orchestration.job import JobConfig, JobReport
from .backend import DiskBackend
from .codec import (
    decode_payload,
    decode_report,
    encode_payload,
    encode_report,
)
from .index import StoreIndex
from .keys import CODE_VERSION, fingerprint, job_key, model_key

__all__ = [
    "DEFAULT_STORE_DIR",
    "STORE_ENV",
    "DiskBackend",
    "ResultsStore",
    "StoreIndex",
    "resolve_store",
]

#: Environment variable naming the store directory (same as ``--store``).
STORE_ENV = "REPRO_STORE"

#: Directory used by ``--resume`` when no path is given.
DEFAULT_STORE_DIR = ".repro-store"


class ResultsStore:
    """Facade tying keys + codec + backend + index together.

    Parameters
    ----------
    root:
        Store directory (created if missing).  Payload files live under
        ``root/objects``, the index at ``root/index.jsonl``.
    lru_capacity:
        In-process LRU entries fronting the disk (0 disables).
    version:
        Code version salted into every key; defaults to the package
        version.  Entries from any other version are deleted on open.
    """

    def __init__(
        self,
        root,
        lru_capacity: int = 256,
        version: Optional[str] = None,
    ) -> None:
        self.version = CODE_VERSION if version is None else str(version)
        self.index = StoreIndex(root)
        self.backend = DiskBackend(
            self.index.root / "objects", lru_capacity=lru_capacity
        )
        #: Entries from older code versions dropped on open.
        self.invalidated = 0
        stale = self.index.stale_keys(self.version)
        for key in stale:
            self.backend.delete(key)
            self.index.record_delete(key)
        if stale:
            self.invalidated = len(stale)
            self.index.compact()
        #: Logical hit/miss counters (one per get_* call).
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @property
    def root(self):
        """The store's root directory (a ``pathlib.Path``)."""
        return self.index.root

    # -- job reports --------------------------------------------------------

    def get_report(self, config: JobConfig) -> Optional[JobReport]:
        """The stored report for ``config``, or ``None`` on a miss.

        A payload that fails to decode (codec drift inside one version,
        which should not happen, or manual tampering that preserved the
        CRC) is deleted and counted as a miss rather than raised: the
        store must never make a resumable campaign *less* reliable than
        recomputing.
        """
        key = job_key(config, version=self.version)
        payload = self.backend.get(key)
        if payload is None:
            self.misses += 1
            return None
        try:
            report = decode_report(payload)
        except CodecError:
            self.backend.delete(key)
            self.index.record_delete(key)
            self.misses += 1
            return None
        self.hits += 1
        return report

    def put_report(self, config: JobConfig, report: JobReport) -> None:
        """Persist one completed cell's report under its config key."""
        key = job_key(config, version=self.version)
        self.backend.put(key, encode_report(report))
        self.index.record_put(key, "job", self.version)
        self.writes += 1

    # -- arbitrary memoized objects (serving layer) -------------------------

    def get_object(self, kind: str, params: Any) -> Optional[Any]:
        """A memoized object stored under ``(kind, params)``, or None."""
        key = fingerprint(kind, params, version=self.version)
        payload = self.backend.get(key)
        if payload is None:
            self.misses += 1
            return None
        try:
            obj = decode_payload(payload)
        except CodecError:
            self.backend.delete(key)
            self.index.record_delete(key)
            self.misses += 1
            return None
        self.hits += 1
        return obj

    def put_object(self, kind: str, params: Any, obj: Any) -> None:
        """Memoize ``obj`` under ``(kind, params)``."""
        key = fingerprint(kind, params, version=self.version)
        self.backend.put(key, encode_payload(obj))
        self.index.record_put(key, kind, self.version)
        self.writes += 1

    # -- stats --------------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        """Hits / lookups over this instance's lifetime (0.0 when idle)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Any]:
        """Logical counters plus the backend's tiered counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "hit_ratio": self.hit_ratio,
            "invalidated": self.invalidated,
            "entries": len(self.index),
            "version": self.version,
            "backend": self.backend.stats(),
        }

    def render_stats(self) -> str:
        """One-line human summary (the CLI epilogue)."""
        return (
            f"store: {self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes ({len(self.index)} entries at {self.root})"
        )


def resolve_store(
    path: Optional[str] = None,
    resume: bool = False,
    disabled: bool = False,
    lru_capacity: int = 256,
) -> Optional[ResultsStore]:
    """CLI/env store resolution (see module doc for the order)."""
    if disabled:
        return None
    if path is None:
        path = os.environ.get(STORE_ENV, "").strip() or None
    if path is None and resume:
        path = DEFAULT_STORE_DIR
    if path is None:
        return None
    return ResultsStore(path, lru_capacity=lru_capacity)
