"""Canonical content-addressed cache keys for the results store.

A cache key must be *stable* (the same logical configuration always
produces the same key, across processes and sessions), *complete*
(anything that can change the result changes the key) and *exact*
(floats keyed by value, not by a lossy decimal rendering).  The
canonical form here delivers all three:

* dataclasses serialize as ``{type name: {field: value}}`` with fields
  in declaration order;
* ``functools.partial`` workload factories serialize as the target's
  ``module:qualname`` plus positional args and *sorted* keyword args,
  so two partials built with keywords in different order key
  identically;
* floats serialize via :meth:`float.hex` — exact and locale-free;
* dicts serialize as sorted ``[key, value]`` pairs;
* anything else (open files, lambdas, closures) raises
  :class:`~repro.errors.UnkeyableError` rather than silently keying on
  ``repr``.

The final key is the SHA-256 of the canonical JSON of
``{kind, schema, version, payload}`` — so bumping the package version
(or the key schema) invalidates every previously stored entry, which
:class:`~repro.store.index.StoreIndex` exploits to garbage-collect
stale results.

What is *excluded*: :class:`~repro.orchestration.job.JobConfig`'s
``trace_dir``/``trace_label`` fields.  Tracing never touches the
simulation clock (traced results are bit-identical to untraced ones),
so a traced re-run of a stored campaign must hit the cache.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from typing import Any, Tuple

from .._version import __version__
from ..errors import UnkeyableError

__all__ = [
    "CODE_VERSION",
    "KEY_SCHEMA",
    "JOB_KEY_EXCLUDED_FIELDS",
    "canonical",
    "fingerprint",
    "job_key",
    "model_key",
]

#: Package version baked into every key (invalidate-by-version).
CODE_VERSION = __version__

#: Bump when the canonical form itself changes incompatibly.
KEY_SCHEMA = 1

#: JobConfig fields that cannot affect simulation results.
JOB_KEY_EXCLUDED_FIELDS: Tuple[str, ...] = ("trace_dir", "trace_label")


def _callable_name(func: Any) -> str:
    module = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname or "<lambda>" in qualname:
        raise UnkeyableError(
            f"cannot key callable {func!r}: only importable module-level "
            "callables have a stable identity (lambdas/closures do not)"
        )
    return f"{module}:{qualname}"


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-able canonical form (see module doc)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"__float": value.hex()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        pairs = [[canonical(key), canonical(item)] for key, item in value.items()]
        pairs.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return {"__dict": pairs}
    if isinstance(value, functools.partial):
        return {
            "__partial": _callable_name(value.func),
            "args": [canonical(item) for item in value.args],
            "kwargs": canonical(dict(value.keywords)),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type": type(value).__name__,
            "fields": [
                [field.name, canonical(getattr(value, field.name))]
                for field in dataclasses.fields(value)
            ],
        }
    if callable(value):
        return {"__callable": _callable_name(value)}
    # numpy scalars (np.float64 etc.) expose item(); normalise through it
    # so a config built from array elements keys like one built from
    # Python numbers.
    item = getattr(value, "item", None)
    if item is not None:
        try:
            plain = item()
        except Exception:  # noqa: BLE001 - fall through to the error below
            plain = value
        if plain is not value and isinstance(plain, (bool, int, float, str)):
            return canonical(plain)
    raise UnkeyableError(
        f"cannot canonically serialize {type(value).__name__!r} value for a "
        f"cache key: {value!r}"
    )


def fingerprint(kind: str, payload: Any, version: str = CODE_VERSION) -> str:
    """SHA-256 hex key of ``payload`` under ``kind`` and ``version``."""
    envelope = {
        "kind": kind,
        "schema": KEY_SCHEMA,
        "version": version,
        "payload": canonical(payload),
    }
    blob = json.dumps(
        envelope, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def job_key(config: Any, version: str = CODE_VERSION) -> str:
    """Cache key of one :class:`~repro.orchestration.job.JobConfig`.

    Every field participates except the trace knobs (which cannot
    change results); the seed is an ordinary field, so common-random-
    number sweeps key each cell separately.
    """
    fields = [
        [field.name, canonical(getattr(config, field.name))]
        for field in dataclasses.fields(config)
        if field.name not in JOB_KEY_EXCLUDED_FIELDS
    ]
    return fingerprint("job", {"config": type(config).__name__, "fields": fields},
                       version=version)


def model_key(model: Any, version: str = CODE_VERSION) -> str:
    """Cache key of one :class:`~repro.models.combined.CombinedModel`."""
    return fingerprint("model", model, version=version)
