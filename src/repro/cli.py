"""Command-line entry point: regenerate any paper artifact.

Usage::

    repro-exp list
    repro-exp run table2
    repro-exp run fig13 max_processes=50000
    repro-exp run table4 quick=true workers=4   # reduced grid, 4 workers
    repro-exp campaign --quick --workers 4      # Table 4 grid with progress
    repro-exp campaign --failure-free           # Table 5 sweep
    repro-exp chaos --quick --workers 4         # storage-fault sweep
    repro-exp advise --processes 50000 --mtbf 5y --base-time 128h \
               --alpha 0.2 --checkpoint-cost 8min --restart-cost 12min

The campaign/table sweeps honour the ``REPRO_WORKERS`` environment
variable when no explicit worker count is given; seeds are derived
before fan-out, so parallel grids are bit-identical to serial ones.

Parameter overrides are ``key=value`` pairs; values are parsed as
Python literals when possible (ints, floats, tuples, booleans), else
kept as strings.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any, Dict, List, Optional

from . import units
from ._version import __version__
from .errors import ReproError
from .experiments import list_experiments, run_experiment
from .obs import ObsSession, render_report, report_from_file


def _parse_value(text: str) -> Any:
    try:
        return ast.literal_eval(text)
    except (SyntaxError, ValueError):
        lowered = text.lower()
        if lowered in ("true", "false"):
            return lowered == "true"
        return text


def _parse_overrides(pairs: List[str]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"override {pair!r} is not key=value")
        key, _, value = pair.partition("=")
        overrides[key.strip()] = _parse_value(value.strip())
    return overrides


def _add_obs_flags(subparser: argparse.ArgumentParser) -> None:
    """Observability knobs shared by the sweep subcommands."""
    subparser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL trace of every job (phase spans, fault events) "
        "to FILE; render it later with 'repro-exp report FILE'",
    )
    subparser.add_argument(
        "--metrics",
        action="store_true",
        help="print parent-side campaign metrics (counters, gauges, "
        "wall-time histograms) after the sweep",
    )


def _add_store_flags(subparser: argparse.ArgumentParser) -> None:
    """Results-store knobs shared by the sweep/serve subcommands."""
    subparser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="results-store directory (default: REPRO_STORE env); finished "
        "cells are persisted and already-stored cells are restored",
    )
    subparser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the default store (.repro-store) when no --store "
        "or REPRO_STORE is given",
    )
    subparser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the results store even if REPRO_STORE is set",
    )


def _resolve_store(args):
    """Build the ResultsStore selected by the store flags (or None)."""
    from .store import resolve_store

    return resolve_store(
        path=args.store, resume=args.resume, disabled=args.no_store
    )


def _add_pool_hardening_flags(subparser: argparse.ArgumentParser) -> None:
    """Self-healing executor knobs shared by the sweep subcommands."""
    subparser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="wall-clock seconds one grid cell may run in a worker "
        "(default: REPRO_CELL_TIMEOUT env, else unlimited; pool mode only)",
    )
    subparser.add_argument(
        "--cell-retries",
        type=int,
        default=None,
        help="resubmissions per cell lost to a broken worker pool "
        "(default: REPRO_CELL_RETRIES env, else 2)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Regenerate tables and figures from 'Combining Partial "
        "Redundancy and Checkpointing for HPC' (ICDCS 2012).",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command")
    commands.add_parser("list", help="list available experiments")
    runner = commands.add_parser("run", help="run one experiment")
    runner.add_argument("experiment", help="experiment id (see 'list')")
    runner.add_argument(
        "overrides",
        nargs="*",
        help="parameter overrides as key=value",
    )
    campaign = commands.add_parser(
        "campaign",
        help="run the simulation campaign grid with per-cell progress",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the grid (default: REPRO_WORKERS env, "
        "else serial); results are bit-identical either way",
    )
    campaign.add_argument(
        "--quick",
        action="store_true",
        help="reduced 3x5 grid instead of the full 5x9 grid",
    )
    campaign.add_argument(
        "--failure-free",
        action="store_true",
        help="run the Table 5 failure-free sweep instead of the Table 4 grid",
    )
    _add_pool_hardening_flags(campaign)
    _add_obs_flags(campaign)
    _add_store_flags(campaign)
    campaign.add_argument(
        "overrides",
        nargs="*",
        help="extra experiment parameter overrides as key=value",
    )
    chaos = commands.add_parser(
        "chaos",
        help="sweep completion time vs injected storage-fault probability",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sweep (default: REPRO_WORKERS env, "
        "else serial)",
    )
    chaos.add_argument(
        "--quick",
        action="store_true",
        help="reduced probability grid (0, 0.1, 0.3)",
    )
    _add_pool_hardening_flags(chaos)
    _add_obs_flags(chaos)
    _add_store_flags(chaos)
    chaos.add_argument(
        "overrides",
        nargs="*",
        help="extra experiment parameter overrides as key=value",
    )
    reporter = commands.add_parser(
        "report",
        help="render the per-phase time breakdown from a --trace file",
    )
    reporter.add_argument("trace", help="JSONL trace written by --trace")
    reporter.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="relative disagreement allowed between span sums and each "
        "job's reported totals (default 0.01)",
    )
    advisor = commands.add_parser(
        "advise",
        help="recommend a redundancy degree and checkpoint interval",
    )
    advisor.add_argument("--processes", type=int, required=True,
                         help="application (virtual) process count N")
    advisor.add_argument("--mtbf", required=True,
                         help="per-node MTBF, e.g. 5y, 18h")
    advisor.add_argument("--base-time", required=True,
                         help="failure-free run time, e.g. 128h, 46min")
    advisor.add_argument("--alpha", type=float, default=0.2,
                         help="communication/computation ratio (default 0.2)")
    advisor.add_argument("--checkpoint-cost", default="8min",
                         help="cost of one checkpoint (default 8min)")
    advisor.add_argument("--restart-cost", default="12min",
                         help="cost of one restart (default 12min)")
    advisor.add_argument("--node-budget", type=int, default=None,
                         help="maximum physical processes available")
    advisor.add_argument("--resource-weight", type=float, default=0.0,
                         help="cost-function weight on node usage")
    server = commands.add_parser(
        "serve",
        help="serve model evaluations and recommendations over JSON "
        "(batched /evaluate, /recommend, /healthz, /metrics)",
    )
    server.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    server.add_argument("--port", type=int, default=8787,
                        help="bind port; 0 picks a free port (default 8787)")
    server.add_argument("--max-batch", type=int, default=64,
                        help="most /evaluate requests coalesced into one "
                        "vectorized grid call (default 64)")
    server.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="milliseconds a batch waits for company "
                        "(default 2)")
    server.add_argument("--queue-limit", type=int, default=256,
                        help="bounded request queue; beyond it requests are "
                        "shed with 429 (default 256)")
    _add_store_flags(server)
    bench = commands.add_parser(
        "bench-serve",
        help="load-test the serving endpoint and write BENCH_serve.json",
    )
    bench.add_argument("--threads", type=int, default=8,
                       help="client threads (default 8)")
    bench.add_argument("--requests", type=int, default=200,
                       help="requests per thread (default 200)")
    bench.add_argument("--max-batch", type=int, default=64,
                       help="server-side batch bound (default 64)")
    bench.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="server-side batch window in ms (default 2)")
    bench.add_argument("--quick", action="store_true",
                       help="small run: <=4 threads x 25 requests")
    bench.add_argument("--output", default="BENCH_serve.json",
                       help="report path (default BENCH_serve.json)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Output piped into `head` or similar closed early; not an error.
        return 0


def _dispatch(argv: Optional[List[str]]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment in list_experiments():
            print(experiment)
        return 0
    if args.command == "run":
        try:
            overrides = _parse_overrides(args.overrides)
            result = run_experiment(args.experiment, **overrides)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(result.render())
        return 0
    if args.command == "campaign":
        try:
            return _campaign(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "chaos":
        try:
            return _chaos(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "report":
        try:
            return _report(args)
        except (ReproError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "advise":
        try:
            print(_advise(args))
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0
    if args.command == "serve":
        try:
            return _serve(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "bench-serve":
        try:
            return _bench_serve(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    parser.print_help()
    return 1


def _campaign(args) -> int:
    """Run the Table 4 grid (or Table 5 sweep) with live progress."""
    overrides = _parse_overrides(args.overrides)
    experiment = "table5" if args.failure_free else "table4"
    if not args.failure_free and args.quick:
        overrides.setdefault("quick", True)

    def progress(cell) -> None:
        mtbf = "-" if cell.node_mtbf is None else f"{cell.node_mtbf:.3g}s"
        print(
            f"  cell mtbf={mtbf} r={cell.redundancy}x: "
            f"{cell.minutes:.2f} min",
            flush=True,
        )

    obs = ObsSession(trace_path=args.trace, metrics=args.metrics)
    store = _resolve_store(args)
    result = run_experiment(
        experiment,
        workers=args.workers,
        progress=progress,
        cell_timeout=args.cell_timeout,
        cell_retries=args.cell_retries,
        obs=obs if obs.enabled else None,
        store=store,
        **overrides,
    )
    print(result.render())
    _print_obs(args, obs, store)
    return 0


def _print_obs(args, obs: ObsSession, store=None) -> None:
    """Shared --trace/--metrics/--store epilogue for sweep subcommands."""
    if obs.metrics is not None:
        print()
        print(obs.metrics.render())
    if store is not None:
        print()
        print(store.render_stats())
    if args.trace:
        print(f"\ntrace written to {args.trace} "
              f"(render with: repro-exp report {args.trace})")


def _chaos(args) -> int:
    """Run the storage-fault chaos sweep with live progress."""
    overrides = _parse_overrides(args.overrides)
    if args.quick:
        overrides.setdefault("quick", True)

    def progress(outcome) -> None:
        status = (
            f"{outcome.report.total_time:.3f} s"
            if outcome.ok
            else f"FAILED ({outcome.error_type})"
        )
        print(f"  cell p={outcome.spec.redundancy:g}: {status}", flush=True)

    obs = ObsSession(trace_path=args.trace, metrics=args.metrics)
    store = _resolve_store(args)
    result = run_experiment(
        "chaos",
        workers=args.workers,
        progress=progress,
        cell_timeout=args.cell_timeout,
        cell_retries=args.cell_retries,
        obs=obs if obs.enabled else None,
        store=store,
        **overrides,
    )
    print(result.render())
    _print_obs(args, obs, store)
    return 0


def _report(args) -> int:
    """Render a trace file's per-phase breakdown and reconciliation."""
    report = report_from_file(args.trace, tolerance=args.tolerance)
    print(render_report(report))
    return 0 if report.ok else 2


def _advise(args) -> str:
    """Build the model from CLI arguments and render a recommendation."""
    from .models import CombinedModel, recommend
    from .util import render_table

    model = CombinedModel(
        virtual_processes=args.processes,
        redundancy=1.0,
        node_mtbf=units.parse_duration(args.mtbf),
        alpha=args.alpha,
        base_time=units.parse_duration(args.base_time),
        checkpoint_cost=units.parse_duration(args.checkpoint_cost),
        restart_cost=units.parse_duration(args.restart_cost),
    )
    outcome = recommend(
        model,
        node_budget=args.node_budget,
        resource_weight=args.resource_weight,
    )
    rows = []
    for point in outcome.candidates:
        marker = "<-- run this" if point.redundancy == outcome.redundancy else ""
        time_text = (
            f"{units.to_hours(point.total_time):.1f}"
            if point.result is not None
            else "diverges"
        )
        rows.append([f"{point.redundancy}x", time_text, marker])
    table = render_table(
        ["degree", "T_total [h]", ""],
        rows,
        title=f"Candidates for N={args.processes:,}, node MTBF {args.mtbf}",
    )
    lines = [
        table,
        "",
        f"recommendation: {outcome.redundancy}x redundancy, checkpoint every "
        f"{units.fmt_duration(outcome.checkpoint_interval)}",
        f"expected completion: {units.fmt_duration(outcome.total_time)} on "
        f"{outcome.total_processes:,} processes "
        f"(speedup vs plain: {outcome.speedup_vs_plain:.2f}x)",
        f"why: {outcome.rationale}",
    ]
    return "\n".join(lines)


def _serve(args) -> int:
    """Run the batched model-serving endpoint until SIGTERM/SIGINT."""
    import asyncio

    from .service import ModelServer

    store = _resolve_store(args)

    async def _main() -> None:
        server = ModelServer(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait=args.max_wait_ms / 1000.0,
            queue_limit=args.queue_limit,
            store=store,
        )
        await server.start()
        print(
            f"serving on http://{server.host}:{server.port} "
            f"(batch<={args.max_batch}, window={args.max_wait_ms:g}ms, "
            f"queue<={args.queue_limit}"
            + (", store on" if store is not None else "")
            + ") — SIGTERM drains gracefully",
            flush=True,
        )
        await server.run()
        print(
            f"drained: {server.requests} requests, "
            f"{server.batcher.evaluations} evaluations in "
            f"{server.batcher.batches} batches",
            flush=True,
        )

    asyncio.run(_main())
    return 0


def _bench_serve(args) -> int:
    """Load-test an in-process server and write the BENCH artifact."""
    from .service import run_bench

    report = run_bench(
        threads=args.threads,
        requests_per_thread=args.requests,
        max_batch=args.max_batch,
        max_wait=args.max_wait_ms / 1000.0,
        quick=args.quick,
        output=args.output,
    )
    latency = report["latency_ms"]
    print(
        f"bench-serve: {report['requests']} requests over "
        f"{report['threads']} threads in {report['wall_seconds']}s "
        f"({report['throughput_rps']} req/s)"
    )
    print(
        f"  latency p50={latency['p50']}ms p90={latency['p90']}ms "
        f"p99={latency['p99']}ms max={latency['max']}ms"
    )
    print(
        f"  batching: {report['batching']['batches']} batches, "
        f"mean size {report['batching']['mean_batch_size']:.2f}, "
        f"{report['batching']['shed']} shed"
    )
    print(
        f"  served == scalar model bit-identical: "
        f"{report['bit_identical_sample']}"
    )
    if args.output:
        print(f"  report written to {args.output}")
    if not report["bit_identical_sample"] or report["errors"]:
        print("error: bench detected mismatches or failed requests",
              file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
