"""ResilientJob: one fault-tolerant application run, end to end.

The lifecycle mirrors the paper's experimental framework (Section 5):

1. the world starts with ``N_total`` physical processes (Eq. 8) laid
   out by a :class:`~repro.redundancy.mapping.ReplicaMap`;
2. the failure injector draws per-process Poisson failure times and
   fail-stops processes as they come due (optionally suppressed while
   a checkpoint or restart is in progress, as in the paper's runs);
3. the checkpointer takes coordinated checkpoints at the configured
   interval (Daly's Eq. 15 at the Eq. 10 system MTBF by default);
4. a failure only aborts the attempt when a whole replica sphere is
   exhausted (Figure 7); the job then pays the restart cost, restores
   every virtual rank from the last committed image set, and re-runs
   from that step;
5. the run completes when every rank finishes the workload; the report
   carries the wallclock, failure/checkpoint/rollback counts and the
   application result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from .. import units
from ..checkpoint import CheckpointConfig, CheckpointService, RestartManager, StableStorage
from ..cluster import Machine
from ..errors import CheckpointError, ConfigurationError, NoCheckpointError
from ..faults import (
    Exponential,
    FailureInjector,
    LogNormal,
    StorageFaultConfig,
    StorageFaultModel,
    Weibull,
)
from ..models.checkpointing import daly_interval
from ..models.redundancy import redundant_time, system_mtbf
from ..mpi import SimMPI
from ..netsim import AlphaBetaModel, Fabric
from ..obs.manifest import RunManifest
from ..obs.trace import NULL_TRACER, Tracer
from ..redundancy import ALL_TO_ALL, RedComm, ReplicaMap, SphereTracker
from ..redundancy.voting import MODES
from ..rng import StreamRegistry
from ..simkit import Environment
from ..simkit.events import AllOf, AnyOf
from ..workloads import WorkShell, Workload


@dataclass
class JobConfig:
    """Everything that defines one resilient job run.

    Times are seconds.  ``None`` for ``node_mtbf`` disables failure
    injection; ``None`` for ``checkpoint_interval`` derives Daly's
    interval from the model (requires ``expected_base_time``).
    """

    workload_factory: Callable[[], Workload]
    virtual_processes: int
    redundancy: float = 1.0
    mode: str = ALL_TO_ALL
    replica_strategy: str = "interleaved"
    node_mtbf: Optional[float] = None
    seed: int = 0
    checkpointing: bool = True
    checkpoint_interval: Optional[float] = None
    checkpoint_cost: Optional[float] = None
    restart_cost: Optional[float] = 10.0
    expected_base_time: Optional[float] = None
    alpha_estimate: float = 0.2
    suppress_failures_during_cr: bool = True
    #: Interarrival distribution: "exponential" (the paper's Poisson
    #: assumption), "weibull" (field-study-realistic, shape 0.7) or
    #: "lognormal" — a robustness knob the paper leaves to future work.
    failure_distribution: str = "exponential"
    max_restarts: int = 10_000
    bookmark_exchange: bool = False
    compute_scale: float = 1.0
    network_latency: float = 1.3e-6
    network_bandwidth: float = 3.2e9
    storage_write_bandwidth: float = 1e9
    storage_channels: int = 8
    #: Chaos layer: storage fault probabilities (None, or a config with
    #: all probabilities zero, leaves every code path bit-identical to
    #: the fault-free pipeline).
    storage_faults: Optional[StorageFaultConfig] = None
    #: How many committed recovery lines storage retains for fallback.
    recovery_line_depth: int = 3
    #: Per-rank re-stage attempts after an injected checkpoint write
    #: failure before the interval is skipped.
    checkpoint_max_retries: int = 2
    #: Initial backoff before a checkpoint retry (doubles, capped).
    checkpoint_retry_backoff: float = 0.05
    #: Observability: directory this job writes its trace part file
    #: into (``None`` disables tracing — the default — and keeps the
    #: whole pipeline on the null tracer, bit-identical to untraced).
    #: A plain string so configs still pickle across pool workers.
    trace_dir: Optional[str] = None
    #: Label stamped on every trace record ("job" field).  ``None``
    #: derives one from the cell coordinates and seed.
    trace_label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.virtual_processes < 1:
            raise ConfigurationError("virtual_processes must be >= 1")
        if self.redundancy < 1.0:
            raise ConfigurationError("redundancy must be >= 1")
        if self.mode not in MODES:
            raise ConfigurationError(f"unknown redundancy mode {self.mode!r}")
        if self.node_mtbf is not None and self.node_mtbf <= 0:
            raise ConfigurationError("node_mtbf must be > 0")
        if self.max_restarts < 0:
            raise ConfigurationError("max_restarts must be >= 0")
        if self.failure_distribution not in ("exponential", "weibull", "lognormal"):
            raise ConfigurationError(
                f"unknown failure_distribution {self.failure_distribution!r}"
            )
        if self.recovery_line_depth < 1:
            raise ConfigurationError(
                f"recovery_line_depth must be >= 1, got {self.recovery_line_depth}"
            )
        if self.checkpoint_max_retries < 0:
            raise ConfigurationError(
                f"checkpoint_max_retries must be >= 0, got {self.checkpoint_max_retries}"
            )
        if self.checkpoint_retry_backoff < 0:
            raise ConfigurationError(
                f"checkpoint_retry_backoff must be >= 0, got "
                f"{self.checkpoint_retry_backoff}"
            )

    def resolve_interval(self) -> Optional[float]:
        """The checkpoint interval this job will use (None = no C/R)."""
        if not self.checkpointing:
            return None
        if self.checkpoint_interval is not None:
            return self.checkpoint_interval
        if self.node_mtbf is None:
            raise ConfigurationError(
                "derive-Daly checkpointing needs node_mtbf (or pass an "
                "explicit checkpoint_interval)"
            )
        if self.expected_base_time is None:
            raise ConfigurationError(
                "derive-Daly checkpointing needs expected_base_time (the "
                "Eq. 10 exposure) or an explicit checkpoint_interval"
            )
        if self.checkpoint_cost is None:
            raise ConfigurationError(
                "derive-Daly checkpointing needs a checkpoint_cost estimate"
            )
        exposure = redundant_time(
            self.expected_base_time, self.alpha_estimate, self.redundancy
        )
        # Exact (exponential-CDF) reliability: at simulation scale the
        # exposure time is comparable to the node MTBF, where the paper's
        # t/theta linearisation is meaningless.
        theta_sys = system_mtbf(
            self.virtual_processes,
            self.redundancy,
            exposure,
            self.node_mtbf,
            exact=True,
        )
        if math.isinf(theta_sys):
            return exposure  # effectively failure-free: one checkpoint
        return daly_interval(self.checkpoint_cost, theta_sys)


@dataclass(frozen=True)
class TimelineEvent:
    """One entry in a job's event log."""

    time: float
    kind: str
    detail: str = ""


@dataclass
class JobReport:
    """What one job run produced."""

    completed: bool
    total_time: float
    attempts: int
    failures_injected: int
    rollbacks: int
    checkpoints_committed: int
    time_in_checkpoints: float
    result: Any
    #: Wallclock the *application* spent checkpointing: the union of
    #: per-rank checkpoint windows (``time_in_checkpoints`` sums the
    #: overlapping per-rank windows, so it overcounts by ~the rank
    #: count; this is the phase-breakdown quantity).
    checkpoint_union_time: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    checkpoint_interval: Optional[float] = None
    physical_processes: int = 0
    #: Ordered job events: attempts, failures, commits, rollbacks.
    timeline: list = field(default_factory=list)
    #: Chaos stats — all zero/empty when no storage faults are injected.
    checkpoints_skipped: int = 0
    checkpoint_retries: int = 0
    checkpoint_write_failures: int = 0
    #: Deepest recovery-line fallback any restart needed (1 = newest
    #: line sufficed; > 1 means older lines were used; 0 = no restores).
    max_rollback_depth: int = 0
    #: Recovery lines skipped during restores (corrupt or unreadable).
    recovery_lines_skipped: int = 0
    #: Restarts that found every retained line bad and re-ran from step 0.
    cold_starts: int = 0
    #: Raw injection counts from the storage fault model.
    storage_fault_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total_minutes(self) -> float:
        """Completion time in minutes (Table 4's unit)."""
        return units.to_minutes(self.total_time)


class ResilientJob:
    """Assemble and run one job; see module docstring for the lifecycle."""

    def __init__(self, config: JobConfig) -> None:
        self.config = config
        self._world: Optional[SimMPI] = None
        self._service: Optional[CheckpointService] = None
        self._in_restart = False
        self._restart_disturbed = False
        self._failures_delivered = 0
        self._timeline: list = []
        self._env: Optional[Environment] = None
        self._tracer = NULL_TRACER

    def _log(self, env: Environment, kind: str, detail: str = "") -> None:
        self._timeline.append(TimelineEvent(time=env.now, kind=kind, detail=detail))
        self._tracer.event(kind, sim_time=env.now, detail=detail)

    def _trace_label(self) -> str:
        cfg = self.config
        if cfg.trace_label:
            return cfg.trace_label
        mtbf = 0.0 if cfg.node_mtbf is None else cfg.node_mtbf
        return f"r{cfg.redundancy:g}-mtbf{mtbf:g}-seed{cfg.seed}"

    # -- injector plumbing ---------------------------------------------------

    def _cr_active(self) -> bool:
        if self._in_restart:
            return True
        service = self._service
        return service is not None and service.cr_active

    def _kill(self, slot: int) -> None:
        self._failures_delivered += 1
        if self._env is not None:
            self._log(self._env, "failure", f"slot {slot}")
        if self._in_restart:
            self._restart_disturbed = True
            return
        world = self._world
        if world is not None and world.is_alive(slot):
            world.kill_rank(slot, cause="injected failure")

    # -- main entry ------------------------------------------------------------

    def run(self) -> JobReport:
        """Execute the job to completion (or restart exhaustion)."""
        cfg = self.config
        env = Environment()
        self._env = env
        if cfg.trace_dir is not None:
            # The tracer only *reads* env.now: even a traced run is
            # sim-identical to an untraced one.
            self._tracer = Tracer(common={"job": self._trace_label()})
            self._tracer.record(
                "manifest",
                **RunManifest.for_job(cfg, label=self._trace_label()).as_record(),
            )
        rng = StreamRegistry(cfg.seed)
        replica_map = ReplicaMap(
            cfg.virtual_processes, cfg.redundancy, strategy=cfg.replica_strategy
        )
        total_physical = replica_map.total_physical
        fault_model = (
            StorageFaultModel(cfg.storage_faults)
            if cfg.storage_faults is not None
            else None
        )
        storage = StableStorage(
            env,
            write_bandwidth=cfg.storage_write_bandwidth,
            channels=cfg.storage_channels,
            faults=fault_model,
            keep_sets=cfg.recovery_line_depth,
        )
        restart_manager = RestartManager(storage, tracer=self._tracer)
        delta = cfg.resolve_interval()

        injector = None
        if cfg.node_mtbf is not None:
            distributions = {
                "exponential": Exponential,
                "weibull": Weibull,
                "lognormal": LogNormal,
            }
            injector = FailureInjector(
                env,
                slots=total_physical,
                distribution=distributions[cfg.failure_distribution](cfg.node_mtbf),
                rng=rng.stream("faults"),
                kill=self._kill,
                cr_active=self._cr_active,
                suppress_during_cr=cfg.suppress_failures_during_cr,
                tracer=self._tracer,
            )
            injector.start()

        attempts = 0
        restored: Optional[tuple] = None
        completed = False
        result: Any = None
        total_checkpoint_time = 0.0
        checkpoint_union_time = 0.0
        checkpoints_skipped = 0
        checkpoint_retries = 0
        checkpoint_write_failures = 0
        cold_starts = 0
        merged_counters: Dict[str, float] = {}
        while True:
            attempts += 1
            self._log(env, "attempt_start", f"attempt {attempts}")
            # The attempt and restart spans tile the whole run: the
            # clock only advances inside them, so the trace report can
            # reconcile phase sums against total_time *exactly*.
            attempt_span = self._tracer.begin(
                "attempt", sim_time=env.now, attempt=attempts
            )
            attempt = self._run_attempt(
                env, rng, replica_map, storage, restart_manager, restored, delta
            )
            attempt_span.end(sim_time=env.now, completed=attempt["completed"])
            total_checkpoint_time += attempt["checkpoint_time"]
            checkpoint_union_time += attempt["checkpoint_union"]
            checkpoints_skipped += attempt["checkpoints_skipped"]
            checkpoint_retries += attempt["checkpoint_retries"]
            checkpoint_write_failures += attempt["checkpoint_write_failures"]
            for name, value in attempt["counters"].items():
                merged_counters[name] = merged_counters.get(name, 0.0) + value
            if attempt["completed"]:
                completed = True
                result = attempt["result"]
                break
            if attempts > cfg.max_restarts:
                self._log(env, "gave_up", f"after {attempts} attempts")
                break
            restart_manager.note_rollback()
            self._log(env, "rollback", f"to step {restart_manager.line.step if restart_manager.has_checkpoint else 0}")
            restart_span = self._tracer.begin(
                "restart", sim_time=env.now, attempt=attempts
            )
            self._pay_restart(env, storage, restart_manager)
            restart_span.end(sim_time=env.now)
            self._log(env, "restart_paid", "")
            if restart_manager.has_checkpoint:
                try:
                    line, images = restart_manager.restore_states(
                        range(cfg.virtual_processes)
                    )
                except NoCheckpointError:
                    # Every retained recovery line is corrupt or
                    # unreadable: degrade to a cold start from step 0
                    # instead of crashing the job.
                    cold_starts += 1
                    self._log(env, "cold_start", "all recovery lines unusable")
                    restored = None
                else:
                    if restart_manager.last_rollback_depth > 1:
                        self._log(
                            env,
                            "recovery_fallback",
                            f"depth {restart_manager.last_rollback_depth} "
                            f"to set {line.set_id}",
                        )
                    states = {rank: image["state"] for rank, image in images.items()}
                    restored = (line.step, states)
            else:
                restored = None

        if injector is not None:
            injector.stop()
        if completed:
            self._log(env, "completed", "")
        for line in restart_manager.history:
            self._timeline.append(
                TimelineEvent(
                    time=line.committed_at,
                    kind="checkpoint_commit",
                    detail=f"step {line.step}",
                )
            )
        self._timeline.sort(key=lambda event: event.time)
        self._env = None
        if self._tracer.enabled:
            self._tracer.record(
                "summary",
                completed=completed,
                total_time=env.now,
                attempts=attempts,
                failures_injected=self._failures_delivered,
                rollbacks=restart_manager.rollbacks,
                checkpoints_committed=restart_manager.commits,
                time_in_checkpoints=total_checkpoint_time,
                checkpoint_union_time=checkpoint_union_time,
                checkpoint_interval=delta,
                physical_processes=total_physical,
            )
            self._tracer.write_part(cfg.trace_dir, label=self._trace_label())
            self._tracer = NULL_TRACER
        return JobReport(
            completed=completed,
            total_time=env.now,
            attempts=attempts,
            failures_injected=self._failures_delivered,
            rollbacks=restart_manager.rollbacks,
            checkpoints_committed=restart_manager.commits,
            time_in_checkpoints=total_checkpoint_time,
            checkpoint_union_time=checkpoint_union_time,
            result=result,
            counters=merged_counters,
            checkpoint_interval=delta,
            physical_processes=total_physical,
            timeline=list(self._timeline),
            checkpoints_skipped=checkpoints_skipped,
            checkpoint_retries=checkpoint_retries,
            checkpoint_write_failures=checkpoint_write_failures,
            max_rollback_depth=restart_manager.max_rollback_depth,
            recovery_lines_skipped=(
                restart_manager.corrupt_lines_skipped
                + restart_manager.unreadable_lines_skipped
            ),
            cold_starts=cold_starts,
            storage_fault_counts=(
                fault_model.counters() if fault_model is not None else {}
            ),
        )

    # -- one attempt --------------------------------------------------------------

    def _run_attempt(
        self,
        env: Environment,
        rng: StreamRegistry,
        replica_map: ReplicaMap,
        storage: StableStorage,
        restart_manager: RestartManager,
        restored: Optional[tuple],
        delta: Optional[float],
    ) -> Dict[str, Any]:
        cfg = self.config
        total_physical = replica_map.total_physical
        machine = Machine(node_count=total_physical)
        fabric = Fabric(
            model=AlphaBetaModel(
                latency=cfg.network_latency, bandwidth=cfg.network_bandwidth
            )
        )
        world = SimMPI(
            env,
            size=total_physical,
            machine=machine,
            fabric=fabric,
            compute_scale=cfg.compute_scale,
        )
        self._world = world
        tracker = SphereTracker(replica_map)
        failed_event = env.event()
        tracker.on_sphere_exhausted(
            lambda virtual: None if failed_event.triggered else failed_event.succeed(virtual)
        )

        service = None
        if delta is not None:
            service = CheckpointService(
                runtime=world,
                storage=storage,
                restart_manager=restart_manager,
                config=CheckpointConfig(
                    interval=delta,
                    fixed_cost=cfg.checkpoint_cost,
                    bookmark_exchange=cfg.bookmark_exchange,
                    max_retries=cfg.checkpoint_max_retries,
                    retry_backoff=cfg.checkpoint_retry_backoff,
                    max_backoff=max(1.0, cfg.checkpoint_retry_backoff),
                ),
                tracer=self._tracer,
            )
        self._service = service

        results: Dict[int, Any] = {}

        def program(ctx):
            red = RedComm(ctx, replica_map, tracker, mode=cfg.mode)
            workload = cfg.workload_factory()
            workload.configure(
                red.rank,
                cfg.virtual_processes,
                rng.stream(f"workload/{red.rank}"),
            )
            start_step = 0
            if restored is not None:
                start_step, states = restored
                workload.load(states[red.rank])
            shell = WorkShell(ctx, red)
            for step in range(start_step, workload.total_steps):
                yield from workload.step(shell, step)
                if service is not None:
                    yield from service.at_step_boundary(red, workload, step)
            outcome = yield from workload.finalize(shell)
            results[ctx.rank] = outcome
            return outcome

        world.spawn(program)
        everyone = AllOf(env, [world.process_of(p) for p in range(total_physical)])
        env.run(until=AnyOf(env, [everyone, failed_event]))

        checkpoint_time = service.time_in_checkpoints if service else 0.0
        checkpoint_union = service.checkpoint_union_time if service else 0.0
        counters = world.counters.as_dict()
        chaos_stats = {
            "checkpoints_skipped": service.checkpoints_skipped if service else 0,
            "checkpoint_retries": service.checkpoint_retries if service else 0,
            "checkpoint_write_failures": (
                service.checkpoint_write_failures if service else 0
            ),
        }
        if everyone.triggered and everyone.ok:
            lead_result = results.get(tracker.lead_replica(0))
            self._world = None
            self._service = None
            return {
                "completed": True,
                "result": lead_result,
                "checkpoint_time": checkpoint_time,
                "checkpoint_union": checkpoint_union,
                "counters": counters,
                **chaos_stats,
            }
        # Sphere exhausted: tear the attempt down.
        for rank in list(world.alive_ranks):
            world.kill_rank(rank, cause="attempt aborted")
        self._world = None
        self._service = None
        return {
            "completed": False,
            "result": None,
            "checkpoint_time": checkpoint_time,
            "checkpoint_union": checkpoint_union,
            "counters": counters,
            **chaos_stats,
        }

    # -- restart window ---------------------------------------------------------------

    def _pay_restart(
        self,
        env: Environment,
        storage: StableStorage,
        restart_manager: RestartManager,
    ) -> None:
        """Advance the clock by the restart cost (repeats if disturbed)."""
        cfg = self.config
        self._in_restart = True
        try:
            while True:
                self._restart_disturbed = False
                if cfg.restart_cost is not None:
                    pause = env.process(self._pause(env, cfg.restart_cost))
                    env.run(until=pause)
                elif restart_manager.has_checkpoint:
                    readers = [
                        env.process(restart_manager.read_state(v))
                        for v in range(cfg.virtual_processes)
                    ]
                    done = AllOf(env, readers)
                    try:
                        env.run(until=done)
                    except CheckpointError:
                        # Injected read fault or corrupt image on the
                        # timed path: the I/O time spent so far *is* the
                        # restart cost; the authoritative restore (with
                        # line-by-line fallback) happens afterwards in
                        # restore_states.
                        pass
                if not self._restart_disturbed:
                    return
                # With suppression off a failure struck mid-restart: the
                # model says the restart phase itself is failure-prone,
                # so pay it again (Eq. 13's compounding).
        finally:
            self._in_restart = False

    @staticmethod
    def _pause(env: Environment, seconds: float):
        yield env.timeout(seconds)
