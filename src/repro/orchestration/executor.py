"""Parallel campaign execution over independent grid cells.

Campaign grids (Table 4/5, Figures 8-10) are embarrassingly parallel:
every cell is one self-contained :class:`~repro.orchestration.job.ResilientJob`
whose outcome depends only on its :class:`~repro.orchestration.job.JobConfig`
(including the seed).  :class:`CampaignExecutor` fans cells out over a
``concurrent.futures.ProcessPoolExecutor`` while preserving exactly the
serial semantics:

* **determinism** — seeds are derived *before* submission, so a parallel
  run is bit-identical to a serial run of the same specs;
* **ordered results** — outcomes come back in spec order regardless of
  completion order;
* **progress** — an optional callback fires in the *parent* process as
  cells complete (completion order, which may differ from spec order);
* **error capture** — one diverged/broken cell is recorded as a failed
  :class:`CellOutcome`; the rest of the campaign keeps running;
* **graceful fallback** — anything that prevents pooling (``workers <= 1``,
  a single cell, unpicklable configs, a sandbox without process support)
  silently drops to the serial path.

Self-healing (the chaos-hardening layer):

* **completeness** — every spec produces exactly one outcome, always;
  a cell the pool lost is synthesized as a failed outcome, never
  silently dropped;
* **broken-pool recovery** — a worker dying mid-campaign
  (``BrokenProcessPool``) no longer kills the sweep: completed results
  are kept, not-yet-completed cells are resubmitted to a *fresh* pool
  (up to ``cell_retries`` times per cell and ``MAX_POOL_REBUILDS``
  rebuilds overall) before any cell is declared lost;
* **per-cell wall-clock timeouts** — ``cell_timeout`` (or the
  ``REPRO_CELL_TIMEOUT`` env var) bounds how long one cell may run in
  a worker; an overdue cell is recorded as a failed outcome, its
  worker is terminated and the survivors move to a fresh pool.
  Timeouts apply only under pooling (the serial path cannot preempt).

Worker count resolution order: explicit argument, then the
``REPRO_WORKERS`` environment variable, then serial (1).
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ReproError
from ..obs.trace import NULL_TRACER
from .job import JobConfig, JobReport, ResilientJob

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"
#: Environment variable: per-cell wall-clock timeout in seconds.
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"
#: Environment variable: resubmissions allowed per cell lost to a
#: broken pool.
CELL_RETRIES_ENV = "REPRO_CELL_RETRIES"


class CampaignExecutionError(ReproError):
    """One or more campaign cells failed (strict mode).

    Carries the failed :class:`CellOutcome` records in ``failures``.
    """

    def __init__(self, failures: Sequence["CellOutcome"]) -> None:
        summary = "; ".join(
            f"(mtbf={o.spec.node_mtbf}, r={o.spec.redundancy}): "
            f"{o.error_type}: {o.error}"
            for o in failures
        )
        super().__init__(f"{len(failures)} campaign cell(s) failed: {summary}")
        self.failures = list(failures)


@dataclass(frozen=True)
class CellSpec:
    """One grid cell to execute: a fully-resolved config plus coordinates.

    The coordinates (``node_mtbf``, ``redundancy``) are carried alongside
    the config so results can be pivoted back into the campaign matrix
    without re-deriving them.
    """

    node_mtbf: Optional[float]
    redundancy: float
    config: JobConfig


@dataclass(frozen=True)
class CellOutcome:
    """What one cell produced: a report, or a captured error."""

    spec: CellSpec
    report: Optional[JobReport] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: True when the report was restored from the results store rather
    #: than executed (resumed campaigns).
    cached: bool = False

    @property
    def ok(self) -> bool:
        """True when the cell ran to a report (even an incomplete job)."""
        return self.report is not None


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_WORKERS`` env > 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from exc
    return max(1, int(workers))


def resolve_cell_timeout(cell_timeout: Optional[float] = None) -> Optional[float]:
    """Resolve the per-cell timeout: argument > env > None (no timeout)."""
    if cell_timeout is None:
        raw = os.environ.get(CELL_TIMEOUT_ENV, "").strip()
        if not raw:
            return None
        try:
            cell_timeout = float(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"{CELL_TIMEOUT_ENV} must be a number, got {raw!r}"
            ) from exc
    if cell_timeout <= 0:
        raise ConfigurationError(
            f"cell timeout must be > 0, got {cell_timeout}"
        )
    return float(cell_timeout)


def resolve_cell_retries(cell_retries: Optional[int] = None) -> int:
    """Resolve the lost-cell retry cap: argument > env > 2."""
    if cell_retries is None:
        raw = os.environ.get(CELL_RETRIES_ENV, "").strip()
        if not raw:
            return 2
        try:
            cell_retries = int(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"{CELL_RETRIES_ENV} must be an integer, got {raw!r}"
            ) from exc
    if cell_retries < 0:
        raise ConfigurationError(
            f"cell retries must be >= 0, got {cell_retries}"
        )
    return int(cell_retries)


def _execute_spec(spec: CellSpec) -> Tuple[Optional[JobReport], Optional[str], Optional[str]]:
    """Run one cell, capturing any error as data (worker-side).

    Returns ``(report, error_type, error_message)`` rather than raising
    so a broken cell never tears down the pool, and exceptions that do
    not pickle cleanly cannot poison the result channel.
    """
    try:
        return ResilientJob(spec.config).run(), None, None
    except Exception as error:  # noqa: BLE001 - per-cell capture is the point
        return None, type(error).__name__, str(error)


class CampaignExecutor:
    """Run cell specs serially or across a self-healing process pool.

    Parameters
    ----------
    workers:
        Worker processes to use.  ``None`` consults ``REPRO_WORKERS``;
        ``<= 1`` runs serially in-process.
    cell_timeout:
        Wall-clock seconds one cell may spend in a worker before it is
        declared failed.  ``None`` consults ``REPRO_CELL_TIMEOUT``;
        unset means no timeout.  Pool mode only.
    cell_retries:
        How many times a cell lost to a broken pool is resubmitted
        before being synthesized as a failed outcome.  ``None``
        consults ``REPRO_CELL_RETRIES``; default 2.
    tracer:
        Parent-side :class:`~repro.obs.trace.Tracer` for wall-clock
        cell spans and pool events (queue/run timings, timeouts,
        rebuilds).  Defaults to the null tracer: zero overhead.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` that
        receives cell counters, wall-time histograms and the final
        worker-utilization gauge.
    store:
        Optional :class:`~repro.store.ResultsStore`.  Before execution,
        every spec is looked up by its canonical config key: stored
        cells come back as ``cached=True`` outcomes (progress fires for
        them too, in spec order) and are *not* re-run; every cell that
        does run to a report is persisted from the parent process as it
        completes.  This is what makes campaigns resumable — and a
        repeat of an identical campaign all cache hits, bit-identical
        to the original.  Hit/miss counters land in ``metrics`` as
        ``campaign.cache_hits``/``campaign.cache_misses``.
    """

    #: Fresh pools built after breakage before the remaining cells are
    #: declared lost (a poison cell would otherwise rebuild forever).
    MAX_POOL_REBUILDS = 3

    def __init__(
        self,
        workers: Optional[int] = None,
        cell_timeout: Optional[float] = None,
        cell_retries: Optional[int] = None,
        tracer=NULL_TRACER,
        metrics=None,
        store=None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cell_timeout = resolve_cell_timeout(cell_timeout)
        self.cell_retries = resolve_cell_retries(cell_retries)
        self.tracer = tracer
        self.metrics = metrics
        self.store = store
        #: How the last :meth:`run` actually executed ("serial"/
        #: "process"; "cached" when the store restored every cell).
        self.last_mode: Optional[str] = None
        #: Broken-pool events survived during the last :meth:`run`.
        self.pool_breakages = 0
        #: Cells resubmitted to a fresh pool during the last :meth:`run`.
        self.cells_resubmitted = 0
        #: Cells failed by the wall-clock timeout during the last run.
        self.cells_timed_out = 0
        #: Cells restored from the results store during the last run.
        self.cells_cached = 0
        #: Store writes that failed during the last run (best-effort).
        self.store_write_failures = 0
        #: Open per-cell spans + wall start stamps, keyed by spec index.
        self._cell_spans: Dict[int, tuple] = {}
        #: Summed per-cell wall time (utilization numerator).
        self._busy_seconds = 0.0

    # -- public API ---------------------------------------------------------

    def run(
        self,
        specs: Sequence[CellSpec],
        progress: Optional[Callable[[CellOutcome], None]] = None,
    ) -> List[CellOutcome]:
        """Execute every spec; outcomes are returned in spec order.

        Exactly one outcome per spec, always — cells the pool lost come
        back as failed outcomes rather than disappearing.  ``progress``
        is invoked in the calling process once per cell: first for
        store-restored cells (spec order, ``cached=True``), then for
        executed cells as they complete (completion order under
        pooling).
        """
        specs = list(specs)
        self.pool_breakages = 0
        self.cells_resubmitted = 0
        self.cells_timed_out = 0
        self.cells_cached = 0
        self.store_write_failures = 0
        self._cell_spans = {}
        self._busy_seconds = 0.0
        if not specs:
            return []
        started = time.monotonic()
        campaign_span = self.tracer.begin(
            "campaign", cells=len(specs), workers=self.workers
        )
        try:
            restored, remaining = self._restore_cached(specs, progress)
            if not remaining:
                self.last_mode = "cached"
                outcomes = [restored[i] for i in range(len(specs))]
                return outcomes
            live = [specs[i] for i in remaining]
            if self.workers <= 1 or len(live) == 1 or not self._poolable(live):
                executed = self._run_serial(live, progress)
            else:
                try:
                    executed = self._run_pool(live, progress)
                except (OSError, PermissionError, ImportError, BrokenProcessPool):
                    # Pool could not be created or broke beyond repair —
                    # BrokenProcessPool is a RuntimeError subclass, so it
                    # must be caught explicitly (a pool whose creation
                    # half-succeeds surfaces it here rather than
                    # OSError).  The cells themselves are untouched, so
                    # serial is equivalent.
                    self.last_mode = "serial-fallback"
                    self.tracer.event("serial_fallback")
                    executed = self._run_serial(live, progress)
            merged: List[Optional[CellOutcome]] = [None] * len(specs)
            for index, outcome in restored.items():
                merged[index] = outcome
            for index, outcome in zip(remaining, executed):
                merged[index] = outcome
            outcomes = [outcome for outcome in merged if outcome is not None]
            assert len(outcomes) == len(specs)
        finally:
            elapsed = time.monotonic() - started
            lanes = self.workers if self.last_mode == "process" else 1
            utilization = (
                self._busy_seconds / (elapsed * lanes) if elapsed > 0.0 else 0.0
            )
            campaign_span.end(
                mode=self.last_mode,
                utilization=round(utilization, 4),
                pool_breakages=self.pool_breakages,
                cells_resubmitted=self.cells_resubmitted,
                cells_timed_out=self.cells_timed_out,
                cells_cached=self.cells_cached,
            )
            if self.metrics is not None:
                self.metrics.gauge("campaign.workers").set(self.workers)
                self.metrics.gauge("campaign.utilization").set(utilization)
                self.metrics.counter("campaign.pool_breakages").inc(
                    self.pool_breakages
                )
                self.metrics.counter("campaign.cells_resubmitted").inc(
                    self.cells_resubmitted
                )
                self.metrics.counter("campaign.cells_timed_out").inc(
                    self.cells_timed_out
                )
        return outcomes

    # -- results store ------------------------------------------------------

    def _restore_cached(
        self,
        specs: Sequence[CellSpec],
        progress: Optional[Callable[[CellOutcome], None]],
    ) -> Tuple[Dict[int, CellOutcome], List[int]]:
        """Look every spec up in the store; return (restored, to-run).

        Restored outcomes fire ``progress`` immediately (spec order)
        with ``cached=True`` so TTY progress and traces account for
        resumed cells instead of silently under-counting them.
        """
        if self.store is None:
            return {}, list(range(len(specs)))
        restored: Dict[int, CellOutcome] = {}
        remaining: List[int] = []
        for index, spec in enumerate(specs):
            report = self.store.get_report(spec.config)
            if report is None:
                remaining.append(index)
                continue
            outcome = CellOutcome(spec=spec, report=report, cached=True)
            restored[index] = outcome
            self.cells_cached += 1
            self.tracer.event(
                "cell_cached", index=index, mtbf=spec.node_mtbf, r=spec.redundancy
            )
            if self.metrics is not None:
                self.metrics.counter("campaign.cells").inc()
                self.metrics.counter("campaign.cache_hits").inc()
            if progress is not None:
                progress(outcome)
        if self.metrics is not None and remaining:
            self.metrics.counter("campaign.cache_misses").inc(len(remaining))
        return restored, remaining

    def _persist(self, outcome: CellOutcome) -> None:
        """Write one executed cell's report through to the store.

        Best-effort: a store write failure (disk full, permissions)
        must never fail the campaign — the cell simply is not resumable
        and will recompute next time.
        """
        if (
            self.store is None
            or not outcome.ok
            or outcome.cached
        ):
            return
        try:
            self.store.put_report(outcome.spec.config, outcome.report)
        except Exception as error:  # noqa: BLE001 - persistence is optional
            self.store_write_failures += 1
            self.tracer.event("store_write_failed", error=str(error))
            if self.metrics is not None:
                self.metrics.counter("campaign.store_write_failures").inc()

    # -- observability ------------------------------------------------------

    def _begin_cell(self, index: int, spec: CellSpec) -> None:
        """Open the wall-clock span for one cell (at submit/run time)."""
        span = self.tracer.begin(
            "cell", index=index, mtbf=spec.node_mtbf, r=spec.redundancy
        )
        self._cell_spans[index] = (span, time.monotonic())

    def _finish_cell(
        self, index: int, outcome: Optional[CellOutcome], status: str = ""
    ) -> None:
        """Close a cell's span and fold its wall time into the metrics."""
        entry = self._cell_spans.pop(index, None)
        seconds = 0.0
        if entry is not None:
            span, cell_started = entry
            seconds = time.monotonic() - cell_started
            if not status:
                if outcome is None:
                    status = "lost"
                else:
                    status = outcome.error_type or "ok"
            span.end(
                ok=outcome.ok if outcome is not None else False,
                status=status,
                seconds=round(seconds, 6),
            )
        self._busy_seconds += seconds
        if self.metrics is not None and outcome is not None:
            self.metrics.counter("campaign.cells").inc()
            if not outcome.ok:
                self.metrics.counter("campaign.cell_failures").inc()
            self.metrics.histogram("campaign.cell_wall_seconds").observe(seconds)
        if outcome is not None:
            self._persist(outcome)

    # -- execution paths ----------------------------------------------------

    @staticmethod
    def _poolable(specs: Sequence[CellSpec]) -> bool:
        """Whether the specs survive the trip to a worker process."""
        try:
            pickle.dumps(specs)
            return True
        except Exception:  # noqa: BLE001 - any pickling failure means serial
            return False

    def _run_serial(
        self,
        specs: Sequence[CellSpec],
        progress: Optional[Callable[[CellOutcome], None]],
    ) -> List[CellOutcome]:
        if self.last_mode != "serial-fallback":
            self.last_mode = "serial"
        outcomes = []
        for index, spec in enumerate(specs):
            self._begin_cell(index, spec)
            report, error_type, error = _execute_spec(spec)
            outcome = CellOutcome(
                spec=spec, report=report, error=error, error_type=error_type
            )
            self._finish_cell(index, outcome)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        return outcomes

    def _run_pool(
        self,
        specs: Sequence[CellSpec],
        progress: Optional[Callable[[CellOutcome], None]],
    ) -> List[CellOutcome]:
        self.last_mode = "process"
        total = len(specs)
        outcomes: List[Optional[CellOutcome]] = [None] * total
        lost_counts = [0] * total
        todo = list(range(total))
        rebuilds = 0
        while todo:
            try:
                resubmit = self._drain_pool(specs, todo, outcomes, progress)
            except BrokenProcessPool as breakage:
                self.pool_breakages += 1
                rebuilds += 1
                self.tracer.event(
                    "pool_breakage", rebuilds=rebuilds, error=str(breakage)
                )
                if rebuilds == 1 and not any(outcomes):
                    # Nothing ever completed: the pool likely never
                    # worked at all (creation half-succeeded).  Let the
                    # caller fall back to the serial path wholesale.
                    raise
                survivors = []
                for index in todo:
                    if outcomes[index] is not None:
                        continue
                    lost_counts[index] += 1
                    exhausted = (
                        lost_counts[index] > self.cell_retries
                        or rebuilds > self.MAX_POOL_REBUILDS
                    )
                    if exhausted:
                        outcomes[index] = self._lost_outcome(
                            specs[index], breakage, lost_counts[index]
                        )
                        self._finish_cell(index, outcomes[index], status="lost")
                        if progress is not None:
                            progress(outcomes[index])
                    else:
                        self._finish_cell(index, None, status="resubmitted")
                        self.tracer.event("cell_resubmitted", index=index)
                        survivors.append(index)
                self.cells_resubmitted += len(survivors)
                todo = survivors
                continue
            # Timeout rebuild: overdue cells already have outcomes; the
            # rest move to a fresh pool (their workers were reclaimed).
            todo = resubmit
        # Completeness invariant: exactly one outcome per spec.  A None
        # here would mean a cell was silently dropped — synthesize a
        # failure loudly instead of truncating the result list.
        for index, outcome in enumerate(outcomes):
            if outcome is None:  # pragma: no cover - defensive backstop
                outcomes[index] = CellOutcome(
                    spec=specs[index],
                    error_type="LostCell",
                    error="cell produced no outcome (executor bug backstop)",
                )
        assert len(outcomes) == total
        return list(outcomes)

    def _drain_pool(
        self,
        specs: Sequence[CellSpec],
        indices: Sequence[int],
        outcomes: List[Optional[CellOutcome]],
        progress: Optional[Callable[[CellOutcome], None]],
    ) -> List[int]:
        """One pool round over ``indices``, filling ``outcomes`` in place.

        Cells are fed to the pool in a window of ``workers`` so every
        submitted future is actually running — which is what makes the
        wall-clock deadline per cell meaningful.  Returns indices that
        must be resubmitted to a fresh pool (after a timeout reclaimed
        this pool's workers); raises ``BrokenProcessPool`` when a worker
        died (the caller heals).
        """
        workers = min(self.workers, len(indices))
        queue = deque(indices)
        pending: Dict[object, int] = {}
        deadlines: Dict[object, float] = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        abandoned = False
        try:
            def fill() -> None:
                while queue and len(pending) < workers:
                    index = queue.popleft()
                    # The submit window equals the worker count, so a
                    # submitted cell is running: its span measures run
                    # time, not queue time.
                    self._begin_cell(index, specs[index])
                    future = pool.submit(_execute_spec, specs[index])
                    pending[future] = index
                    if self.cell_timeout is not None:
                        deadlines[future] = time.monotonic() + self.cell_timeout

            fill()
            while pending:
                done, _ = wait(
                    pending,
                    timeout=self._wait_budget(deadlines),
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    index = pending.pop(future)
                    deadlines.pop(future, None)
                    try:
                        report, error_type, error = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as exc:  # result unpicklable etc.
                        report, error_type, error = None, type(exc).__name__, str(exc)
                    outcome = CellOutcome(
                        spec=specs[index],
                        report=report,
                        error=error,
                        error_type=error_type,
                    )
                    outcomes[index] = outcome
                    self._finish_cell(index, outcome)
                    if progress is not None:
                        progress(outcome)
                overdue = self._collect_overdue(pending, deadlines)
                if overdue:
                    for future in overdue:
                        index = pending.pop(future)
                        deadlines.pop(future, None)
                        future.cancel()
                        self.cells_timed_out += 1
                        outcomes[index] = CellOutcome(
                            spec=specs[index],
                            error_type="CellTimeout",
                            error=(
                                f"cell exceeded the {self.cell_timeout}s "
                                "wall-clock timeout"
                            ),
                        )
                        self._finish_cell(index, outcomes[index], status="timeout")
                        self.tracer.event(
                            "cell_timeout", index=index, limit=self.cell_timeout
                        )
                        if progress is not None:
                            progress(outcomes[index])
                    # The overdue cells' workers are still grinding;
                    # terminate them and hand the survivors to a fresh
                    # pool so the campaign keeps its full parallelism.
                    abandoned = True
                    self._terminate_workers(pool)
                    pool.shutdown(wait=False, cancel_futures=True)
                    # Survivors move to a fresh pool: close their spans
                    # (a new one opens when they are resubmitted).
                    for index in pending.values():
                        self._finish_cell(index, None, status="repooled")
                    return list(pending.values()) + list(queue)
                fill()
            return []
        finally:
            if not abandoned:
                pool.shutdown(wait=True)

    # -- helpers ------------------------------------------------------------

    def _wait_budget(self, deadlines: Dict[object, float]) -> Optional[float]:
        """Seconds ``wait`` may block before the next deadline check."""
        if not deadlines:
            return None
        budget = min(deadlines.values()) - time.monotonic()
        return max(budget, 0.01)

    @staticmethod
    def _collect_overdue(
        pending: Dict[object, int], deadlines: Dict[object, float]
    ) -> List[object]:
        if not deadlines:
            return []
        now = time.monotonic()
        return [
            future
            for future in pending
            if future in deadlines and deadlines[future] <= now
        ]

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool's worker processes (timeout reclamation)."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 - best-effort reclamation
                pass

    @staticmethod
    def _lost_outcome(
        spec: CellSpec, breakage: BaseException, attempts: int
    ) -> CellOutcome:
        return CellOutcome(
            spec=spec,
            error_type=type(breakage).__name__,
            error=(
                f"cell lost to a broken worker pool after {attempts} "
                f"attempt(s): {breakage}"
            ),
        )
