"""Parallel campaign execution over independent grid cells.

Campaign grids (Table 4/5, Figures 8-10) are embarrassingly parallel:
every cell is one self-contained :class:`~repro.orchestration.job.ResilientJob`
whose outcome depends only on its :class:`~repro.orchestration.job.JobConfig`
(including the seed).  :class:`CampaignExecutor` fans cells out over a
``concurrent.futures.ProcessPoolExecutor`` while preserving exactly the
serial semantics:

* **determinism** — seeds are derived *before* submission, so a parallel
  run is bit-identical to a serial run of the same specs;
* **ordered results** — outcomes come back in spec order regardless of
  completion order;
* **progress** — an optional callback fires in the *parent* process as
  cells complete (completion order, which may differ from spec order);
* **error capture** — one diverged/broken cell is recorded as a failed
  :class:`CellOutcome`; the rest of the campaign keeps running;
* **graceful fallback** — anything that prevents pooling (``workers <= 1``,
  a single cell, unpicklable configs, a sandbox without process support)
  silently drops to the serial path.

Worker count resolution order: explicit argument, then the
``REPRO_WORKERS`` environment variable, then serial (1).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ReproError
from .job import JobConfig, JobReport, ResilientJob

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


class CampaignExecutionError(ReproError):
    """One or more campaign cells failed (strict mode).

    Carries the failed :class:`CellOutcome` records in ``failures``.
    """

    def __init__(self, failures: Sequence["CellOutcome"]) -> None:
        summary = "; ".join(
            f"(mtbf={o.spec.node_mtbf}, r={o.spec.redundancy}): "
            f"{o.error_type}: {o.error}"
            for o in failures
        )
        super().__init__(f"{len(failures)} campaign cell(s) failed: {summary}")
        self.failures = list(failures)


@dataclass(frozen=True)
class CellSpec:
    """One grid cell to execute: a fully-resolved config plus coordinates.

    The coordinates (``node_mtbf``, ``redundancy``) are carried alongside
    the config so results can be pivoted back into the campaign matrix
    without re-deriving them.
    """

    node_mtbf: Optional[float]
    redundancy: float
    config: JobConfig


@dataclass(frozen=True)
class CellOutcome:
    """What one cell produced: a report, or a captured error."""

    spec: CellSpec
    report: Optional[JobReport] = None
    error: Optional[str] = None
    error_type: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the cell ran to a report (even an incomplete job)."""
        return self.report is not None


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_WORKERS`` env > 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from exc
    return max(1, int(workers))


def _execute_spec(spec: CellSpec) -> Tuple[Optional[JobReport], Optional[str], Optional[str]]:
    """Run one cell, capturing any error as data (worker-side).

    Returns ``(report, error_type, error_message)`` rather than raising
    so a broken cell never tears down the pool, and exceptions that do
    not pickle cleanly cannot poison the result channel.
    """
    try:
        return ResilientJob(spec.config).run(), None, None
    except Exception as error:  # noqa: BLE001 - per-cell capture is the point
        return None, type(error).__name__, str(error)


class CampaignExecutor:
    """Run cell specs serially or across a process pool.

    Parameters
    ----------
    workers:
        Worker processes to use.  ``None`` consults ``REPRO_WORKERS``;
        ``<= 1`` runs serially in-process.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)
        #: How the last :meth:`run` actually executed ("serial"/"process").
        self.last_mode: Optional[str] = None

    # -- public API ---------------------------------------------------------

    def run(
        self,
        specs: Sequence[CellSpec],
        progress: Optional[Callable[[CellOutcome], None]] = None,
    ) -> List[CellOutcome]:
        """Execute every spec; outcomes are returned in spec order.

        ``progress`` is invoked in the calling process once per cell as
        it completes (completion order under pooling).
        """
        specs = list(specs)
        if not specs:
            return []
        if self.workers <= 1 or len(specs) == 1 or not self._poolable(specs):
            return self._run_serial(specs, progress)
        try:
            return self._run_pool(specs, progress)
        except (OSError, PermissionError, ImportError):
            # Pool could not be created (restricted environment); the
            # cells themselves are untouched, so serial is equivalent.
            self.last_mode = "serial-fallback"
            return self._run_serial(specs, progress)

    # -- execution paths ----------------------------------------------------

    @staticmethod
    def _poolable(specs: Sequence[CellSpec]) -> bool:
        """Whether the specs survive the trip to a worker process."""
        try:
            pickle.dumps(specs)
            return True
        except Exception:  # noqa: BLE001 - any pickling failure means serial
            return False

    def _run_serial(
        self,
        specs: Sequence[CellSpec],
        progress: Optional[Callable[[CellOutcome], None]],
    ) -> List[CellOutcome]:
        if self.last_mode != "serial-fallback":
            self.last_mode = "serial"
        outcomes = []
        for spec in specs:
            report, error_type, error = _execute_spec(spec)
            outcome = CellOutcome(
                spec=spec, report=report, error=error, error_type=error_type
            )
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        return outcomes

    def _run_pool(
        self,
        specs: Sequence[CellSpec],
        progress: Optional[Callable[[CellOutcome], None]],
    ) -> List[CellOutcome]:
        self.last_mode = "process"
        workers = min(self.workers, len(specs))
        outcomes: List[Optional[CellOutcome]] = [None] * len(specs)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {
                pool.submit(_execute_spec, spec): index
                for index, spec in enumerate(specs)
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    spec = specs[index]
                    try:
                        report, error_type, error = future.result()
                    except Exception as exc:  # worker died / result unpicklable
                        report, error_type, error = None, type(exc).__name__, str(exc)
                    outcome = CellOutcome(
                        spec=spec, report=report, error=error, error_type=error_type
                    )
                    outcomes[index] = outcome
                    if progress is not None:
                        progress(outcome)
        return [outcome for outcome in outcomes if outcome is not None]
