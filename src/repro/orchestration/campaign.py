"""Sweep campaigns: the grids behind Table 4/5 and Figures 8-10.

A campaign runs one :class:`~repro.orchestration.job.ResilientJob` per
(MTBF, redundancy) grid cell with common random numbers (same seed →
same failure-time draws per physical slot), exactly how the paper's
experiments sweep node MTBF 6-30 h against redundancy 1x-3x in 0.25x
steps.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from .job import JobConfig, JobReport, ResilientJob


@dataclass(frozen=True)
class CampaignCell:
    """One grid cell's outcome."""

    node_mtbf: Optional[float]
    redundancy: float
    report: JobReport

    @property
    def minutes(self) -> float:
        """Completion time in minutes (the paper's Table 4 unit)."""
        return self.report.total_minutes


def _job_for(base: JobConfig, **overrides) -> ResilientJob:
    return ResilientJob(replace(copy.copy(base), **overrides))


def run_redundancy_sweep(
    base: JobConfig,
    node_mtbfs: Sequence[float],
    degrees: Sequence[float],
    seed_offset: int = 0,
    progress: Optional[Callable[[CampaignCell], None]] = None,
) -> List[CampaignCell]:
    """The Table 4 grid: completion time per (MTBF, redundancy) cell.

    Every cell reuses the base config with only ``node_mtbf``,
    ``redundancy`` and the seed changed; seeds differ per MTBF row (the
    failure processes differ) but are shared across degrees in a row so
    degrees are compared under common random numbers.
    """
    if not node_mtbfs or not degrees:
        raise ConfigurationError("sweep needs at least one MTBF and one degree")
    cells: List[CampaignCell] = []
    for row, mtbf in enumerate(node_mtbfs):
        for degree in degrees:
            job = _job_for(
                base,
                node_mtbf=mtbf,
                redundancy=degree,
                seed=base.seed + seed_offset + 1000 * row,
            )
            cell = CampaignCell(
                node_mtbf=mtbf, redundancy=degree, report=job.run()
            )
            cells.append(cell)
            if progress is not None:
                progress(cell)
    return cells


def run_failure_free_sweep(
    base: JobConfig,
    degrees: Sequence[float],
    progress: Optional[Callable[[CampaignCell], None]] = None,
) -> List[CampaignCell]:
    """The Table 5 sweep: failure-free execution time vs redundancy.

    Failure injection and checkpointing are disabled; what remains is
    the pure redundancy overhead (Figure 10's super-linear curve).
    """
    if not degrees:
        raise ConfigurationError("sweep needs at least one degree")
    cells: List[CampaignCell] = []
    for degree in degrees:
        job = _job_for(
            base,
            node_mtbf=None,
            redundancy=degree,
            checkpointing=False,
        )
        cell = CampaignCell(node_mtbf=None, redundancy=degree, report=job.run())
        cells.append(cell)
        if progress is not None:
            progress(cell)
    return cells


def cells_to_matrix(
    cells: Sequence[CampaignCell],
) -> Dict[float, Dict[float, float]]:
    """Pivot cells into {mtbf: {degree: minutes}} for table rendering."""
    matrix: Dict[float, Dict[float, float]] = {}
    for cell in cells:
        row = matrix.setdefault(cell.node_mtbf, {})
        row[cell.redundancy] = cell.minutes
    return matrix
