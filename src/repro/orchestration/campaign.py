"""Sweep campaigns: the grids behind Table 4/5 and Figures 8-10.

A campaign runs one :class:`~repro.orchestration.job.ResilientJob` per
(MTBF, redundancy) grid cell with common random numbers (same seed →
same failure-time draws per physical slot), exactly how the paper's
experiments sweep node MTBF 6-30 h against redundancy 1x-3x in 0.25x
steps.

Cells are independent, so both sweeps delegate to
:class:`~repro.orchestration.executor.CampaignExecutor`: pass
``workers > 1`` (or set ``REPRO_WORKERS``) to fan the grid out over a
process pool.  Seeds are derived before submission, so parallel runs
are bit-identical to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..obs.trace import NULL_TRACER
from .executor import (
    CampaignExecutionError,
    CampaignExecutor,
    CellOutcome,
    CellSpec,
)
from .job import JobConfig, JobReport, ResilientJob


@dataclass(frozen=True)
class CampaignCell:
    """One grid cell's outcome."""

    node_mtbf: Optional[float]
    redundancy: float
    report: JobReport
    #: True when the report came from the results store (resumed run).
    cached: bool = False

    @property
    def minutes(self) -> float:
        """Completion time in minutes (the paper's Table 4 unit)."""
        return self.report.total_minutes


def _job_for(base: JobConfig, **overrides) -> ResilientJob:
    return ResilientJob(replace(base, **overrides))


def _cell_from(outcome: CellOutcome) -> CampaignCell:
    return CampaignCell(
        node_mtbf=outcome.spec.node_mtbf,
        redundancy=outcome.spec.redundancy,
        report=outcome.report,
        cached=outcome.cached,
    )


def _run_specs(
    specs: Sequence[CellSpec],
    progress: Optional[Callable[[CampaignCell], None]],
    workers: Optional[int],
    strict: bool,
    cell_timeout: Optional[float] = None,
    cell_retries: Optional[int] = None,
    tracer=NULL_TRACER,
    metrics=None,
    store=None,
) -> List[CampaignCell]:
    """Execute specs and convert outcomes, enforcing error policy.

    ``strict=True`` (the default) raises
    :class:`~repro.orchestration.executor.CampaignExecutionError` if any
    cell failed — after every other cell has finished; ``strict=False``
    silently drops failed cells from the result.  ``tracer``/``metrics``
    feed the executor's parent-side observability (cell spans, pool
    events, utilization); the defaults collect nothing.  ``store`` (a
    :class:`~repro.store.ResultsStore`) makes the sweep resumable:
    stored cells are restored instead of re-run — the ``progress``
    callback still fires for them, with ``cached=True`` on the cell —
    and completed cells are persisted as they finish.
    """

    def on_outcome(outcome: CellOutcome) -> None:
        if progress is not None and outcome.ok:
            progress(_cell_from(outcome))

    executor = CampaignExecutor(
        workers=workers,
        cell_timeout=cell_timeout,
        cell_retries=cell_retries,
        tracer=tracer,
        metrics=metrics,
        store=store,
    )
    outcomes = executor.run(specs, progress=on_outcome)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures and strict:
        raise CampaignExecutionError(failures)
    return [_cell_from(outcome) for outcome in outcomes if outcome.ok]


def redundancy_sweep_specs(
    base: JobConfig,
    node_mtbfs: Sequence[float],
    degrees: Sequence[float],
    seed_offset: int = 0,
) -> List[CellSpec]:
    """The Table 4 grid as executable cell specs (row-major order).

    Seeds differ per MTBF row (the failure processes differ) but are
    shared across degrees in a row so degrees are compared under common
    random numbers.
    """
    if not node_mtbfs or not degrees:
        raise ConfigurationError("sweep needs at least one MTBF and one degree")
    specs = []
    for row, mtbf in enumerate(node_mtbfs):
        for degree in degrees:
            config = replace(
                base,
                node_mtbf=mtbf,
                redundancy=degree,
                seed=base.seed + seed_offset + 1000 * row,
            )
            specs.append(CellSpec(node_mtbf=mtbf, redundancy=degree, config=config))
    return specs


def run_redundancy_sweep(
    base: JobConfig,
    node_mtbfs: Sequence[float],
    degrees: Sequence[float],
    seed_offset: int = 0,
    progress: Optional[Callable[[CampaignCell], None]] = None,
    workers: Optional[int] = None,
    strict: bool = True,
    cell_timeout: Optional[float] = None,
    cell_retries: Optional[int] = None,
    tracer=NULL_TRACER,
    metrics=None,
    store=None,
) -> List[CampaignCell]:
    """The Table 4 grid: completion time per (MTBF, redundancy) cell.

    Every cell reuses the base config with only ``node_mtbf``,
    ``redundancy`` and the seed changed.  ``workers`` (default: the
    ``REPRO_WORKERS`` env var, else serial) selects the process-pool
    fan-out; results are identical and ordered either way.
    ``cell_timeout``/``cell_retries`` bound wall-clock per cell and
    broken-pool resubmissions (pool mode only); ``store`` resumes the
    grid from previously persisted cells.
    """
    specs = redundancy_sweep_specs(base, node_mtbfs, degrees, seed_offset)
    return _run_specs(
        specs,
        progress,
        workers,
        strict,
        cell_timeout,
        cell_retries,
        tracer=tracer,
        metrics=metrics,
        store=store,
    )


def failure_free_sweep_specs(
    base: JobConfig,
    degrees: Sequence[float],
) -> List[CellSpec]:
    """The Table 5 sweep as executable cell specs."""
    if not degrees:
        raise ConfigurationError("sweep needs at least one degree")
    specs = []
    for degree in degrees:
        config = replace(
            base,
            node_mtbf=None,
            redundancy=degree,
            checkpointing=False,
        )
        specs.append(CellSpec(node_mtbf=None, redundancy=degree, config=config))
    return specs


def run_failure_free_sweep(
    base: JobConfig,
    degrees: Sequence[float],
    progress: Optional[Callable[[CampaignCell], None]] = None,
    workers: Optional[int] = None,
    strict: bool = True,
    cell_timeout: Optional[float] = None,
    cell_retries: Optional[int] = None,
    tracer=NULL_TRACER,
    metrics=None,
    store=None,
) -> List[CampaignCell]:
    """The Table 5 sweep: failure-free execution time vs redundancy.

    Failure injection and checkpointing are disabled; what remains is
    the pure redundancy overhead (Figure 10's super-linear curve).
    """
    specs = failure_free_sweep_specs(base, degrees)
    return _run_specs(
        specs,
        progress,
        workers,
        strict,
        cell_timeout,
        cell_retries,
        tracer=tracer,
        metrics=metrics,
        store=store,
    )


def cells_to_matrix(
    cells: Sequence[CampaignCell],
) -> Dict[float, Dict[float, float]]:
    """Pivot cells into {mtbf: {degree: minutes}} for table rendering."""
    matrix: Dict[float, Dict[float, float]] = {}
    for cell in cells:
        row = matrix.setdefault(cell.node_mtbf, {})
        row[cell.redundancy] = cell.minutes
    return matrix
