"""orchestration — run workloads under redundancy + C/R + failures.

:class:`ResilientJob` is the top of the systems half: it assembles the
cluster, the simulated MPI world, the RedMPI-style redundancy layer,
the coordinated checkpoint service, the failure injector and a
workload into one fault-tolerant job run — the exact setup of the
paper's Section 5 experimental framework — and reports the completion
time and event counts the evaluation tables are built from.

:mod:`campaign` sweeps jobs over (MTBF, redundancy) grids to
regenerate Table 4 / Figures 8-9, and failure-free runs for
Table 5 / Figure 10.
"""

from .job import JobConfig, JobReport, ResilientJob
from .campaign import CampaignCell, run_failure_free_sweep, run_redundancy_sweep

__all__ = [
    "CampaignCell",
    "JobConfig",
    "JobReport",
    "ResilientJob",
    "run_failure_free_sweep",
    "run_redundancy_sweep",
]
