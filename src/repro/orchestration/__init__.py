"""orchestration — run workloads under redundancy + C/R + failures.

:class:`ResilientJob` is the top of the systems half: it assembles the
cluster, the simulated MPI world, the RedMPI-style redundancy layer,
the coordinated checkpoint service, the failure injector and a
workload into one fault-tolerant job run — the exact setup of the
paper's Section 5 experimental framework — and reports the completion
time and event counts the evaluation tables are built from.

:mod:`campaign` sweeps jobs over (MTBF, redundancy) grids to
regenerate Table 4 / Figures 8-9, and failure-free runs for
Table 5 / Figure 10.  :mod:`executor` fans independent grid cells out
over a process pool (``workers``/``REPRO_WORKERS``) with bit-identical
results, ordered collection and per-cell error capture.
"""

from .job import JobConfig, JobReport, ResilientJob
from .campaign import CampaignCell, run_failure_free_sweep, run_redundancy_sweep
from .executor import (
    CampaignExecutionError,
    CampaignExecutor,
    CellOutcome,
    CellSpec,
    resolve_cell_retries,
    resolve_cell_timeout,
    resolve_workers,
)

__all__ = [
    "CampaignCell",
    "CampaignExecutionError",
    "CampaignExecutor",
    "CellOutcome",
    "CellSpec",
    "JobConfig",
    "JobReport",
    "ResilientJob",
    "resolve_cell_retries",
    "resolve_cell_timeout",
    "resolve_workers",
    "run_failure_free_sweep",
    "run_redundancy_sweep",
]
