"""The failure injector (Section 5's first background process).

Maintains a per-physical-process next-failure schedule drawn from the
configured interarrival distribution and fires fail-stop events into
the running world.  Mirrors the paper's four injector steps:

1. keep the virtual→physical map (owned by the orchestrator; the
   injector addresses physical *slots* 0..P-1, which survive restarts);
2. draw each slot's next failure time from the exponential
   distribution;
3. when a slot's time arrives, mark it dead (the ``kill`` callback
   fail-stops the rank in whatever world is currently running);
4. sphere exhaustion → job restart is the orchestrator's reaction to
   the deaths this injector delivers.

The ``suppress_during_cr`` option reproduces the experimental setup:
failures are *not* triggered while a checkpoint or restart is in
progress — a due failure is re-armed until the window closes.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..obs.trace import NULL_TRACER
from ..simkit import Environment
from .distributions import Distribution, Exponential


@dataclass(frozen=True)
class FailureRecord:
    """One delivered failure."""

    time: float
    slot: int


class FailureInjector:
    """Poisson (or custom-distribution) fail-stop injector."""

    def __init__(
        self,
        env: Environment,
        slots: int,
        distribution: Distribution,
        rng: np.random.Generator,
        kill: Callable[[int], None],
        cr_active: Optional[Callable[[], bool]] = None,
        suppress_during_cr: bool = True,
        retry_interval: Optional[float] = None,
        tracer=NULL_TRACER,
    ) -> None:
        if slots < 1:
            raise ConfigurationError(f"slots must be >= 1, got {slots}")
        self.env = env
        self.tracer = tracer
        self.slots = slots
        self.distribution = distribution
        self.rng = rng
        self.kill = kill
        self.cr_active = cr_active or (lambda: False)
        self.suppress_during_cr = suppress_during_cr
        #: How long a suppressed failure waits before re-checking.
        self.retry_interval = retry_interval or distribution.mean * 1e-4
        self.records: List[FailureRecord] = []
        #: Delivery times only, kept in lockstep with ``records`` so
        #: :meth:`injected_since` can bisect (simulation time is
        #: monotone, so this list is sorted by construction).
        self._record_times: List[float] = []
        self.suppressed = 0
        self._schedule: List[tuple] = []
        self._process = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Arm every slot and start the injector daemon."""
        if self._process is not None:
            raise ConfigurationError("injector already started")
        now = self.env.now
        for slot in range(self.slots):
            heapq.heappush(
                self._schedule, (now + self.distribution.sample(self.rng), slot)
            )
        self._process = self.env.process(self._run(), name="failure-injector")

    def stop(self) -> None:
        """Tear the daemon down (end of a campaign run)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("injector stopped")
        self._process = None

    # -- daemon -------------------------------------------------------------

    def _run(self):
        from ..errors import ProcessInterrupted

        try:
            while self._schedule:
                due, slot = self._schedule[0]
                if due > self.env.now:
                    yield self.env.timeout(due - self.env.now)
                    continue
                heapq.heappop(self._schedule)
                if self.suppress_during_cr and self.cr_active():
                    # The paper's experiments do not trigger failures while
                    # a checkpoint or restart is in progress.  The failure
                    # is *dropped* and the slot re-armed with a fresh draw
                    # (memoryless, so this is exactly "the Poisson process
                    # pauses during C/R windows") — deferring it instead
                    # would bunch failures at the window's end.
                    self.suppressed += 1
                    self.tracer.event(
                        "failure_suppressed", sim_time=self.env.now, slot=slot
                    )
                    heapq.heappush(
                        self._schedule,
                        (self.env.now + self.distribution.sample(self.rng), slot),
                    )
                    continue
                self.records.append(FailureRecord(time=self.env.now, slot=slot))
                self._record_times.append(self.env.now)
                self.tracer.event(
                    "failure_injected", sim_time=self.env.now, slot=slot
                )
                self.kill(slot)
                # Step 2 again: the replacement process on the spare node
                # is just as mortal (assumption 5: spares are plentiful).
                heapq.heappush(
                    self._schedule,
                    (self.env.now + self.distribution.sample(self.rng), slot),
                )
        except ProcessInterrupted:
            return

    # -- statistics ----------------------------------------------------------

    @property
    def injected(self) -> int:
        """Failures delivered so far."""
        return len(self.records)

    def injected_since(self, time: float) -> int:
        """Failures delivered at or after ``time`` (per-attempt counts).

        O(log n) bisection over the time-ordered record list rather
        than an O(n) scan — campaigns call this once per attempt and
        long hostile runs accumulate thousands of records.
        """
        return len(self._record_times) - bisect_left(self._record_times, time)


def exponential_injector(
    env: Environment,
    slots: int,
    mtbf: float,
    rng: np.random.Generator,
    kill: Callable[[int], None],
    **kwargs,
) -> FailureInjector:
    """Convenience: the paper's Poisson injector at a per-process MTBF."""
    return FailureInjector(
        env=env,
        slots=slots,
        distribution=Exponential(mtbf),
        rng=rng,
        kill=kill,
        **kwargs,
    )
