"""Failure detection with latency.

The paper assumes fail-stop failures "detected via timeout-based
monitoring" (Section 4, assumption 4).  The simulator's runtime knows
a death instantly; this wrapper delays the *notification* by a
configurable detection latency, modelling the heartbeat/timeout delay
a real monitor pays before declaring a process dead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List

from ..errors import ConfigurationError
from ..obs.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.runtime import SimMPI


class FailureDetector:
    """Latency-delayed death notifications."""

    def __init__(
        self, runtime: "SimMPI", latency: float = 0.0, tracer=NULL_TRACER
    ) -> None:
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency}")
        self.runtime = runtime
        self.latency = latency
        self.tracer = tracer
        self._subscribers: List[Callable[[int], None]] = []
        self.detections: List[tuple] = []
        runtime.on_rank_death(self._on_death)

    def subscribe(self, callback: Callable[[int], None]) -> None:
        """Register for (delayed) death notifications."""
        self._subscribers.append(callback)

    def _on_death(self, rank: int) -> None:
        if self.latency == 0.0:
            self._notify(rank)
            return
        event = self.runtime.env.timeout(self.latency, value=rank)
        event.add_callback(lambda fired: self._notify(fired.value))

    def _notify(self, rank: int) -> None:
        self.detections.append((self.runtime.env.now, rank))
        self.tracer.event(
            "failure_detected",
            sim_time=self.runtime.env.now,
            rank=rank,
            latency=self.latency,
        )
        for callback in list(self._subscribers):
            callback(rank)
