"""Storage fault injection: the chaos model for stable storage.

The paper's harness assumes the fault-tolerance machinery itself is
perfect — checkpoints always commit, images are never damaged, reads
always succeed.  Real parallel file systems violate all three: writes
fail transiently under load, data rots at rest (silent bit corruption,
the regime of Aupy et al.'s silent-error work), and contention produces
latency spikes.  :class:`StorageFaultModel` injects exactly those four
fault classes into :class:`~repro.checkpoint.storage.StableStorage`,
deterministically from a seed, so chaos campaigns are reproducible and
sweepable under common random numbers.

Determinism contract:

* a disabled model (all probabilities zero) draws **nothing** from its
  stream and injects nothing — the chaos layer is a strict no-op;
* an enabled model draws a fixed number of variates per storage
  operation *regardless of which individual probabilities are zero*,
  so sweeping one probability while holding the seed keeps every other
  fault decision aligned (common random numbers across sweep points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import ConfigurationError

#: Spawn key mixed into the seed so the fault stream never collides
#: with the failure injector's stream for the same campaign seed.
_STREAM_KEY = 0x5F0C5

_PROBABILITIES = (
    "write_fail_prob",
    "read_fail_prob",
    "corrupt_prob",
    "latency_spike_prob",
)


@dataclass(frozen=True)
class StorageFaultConfig:
    """Chaos knobs for stable storage.

    All probabilities are per *operation* (one blob write or read).
    ``corrupt_prob`` is the chance a successfully written blob is
    silently damaged at rest — its payload is bit-flipped while the
    recorded CRC keeps the original value, so the damage surfaces only
    on read-back verification, exactly like real at-rest corruption.
    """

    write_fail_prob: float = 0.0
    read_fail_prob: float = 0.0
    corrupt_prob: float = 0.0
    latency_spike_prob: float = 0.0
    #: Extra seconds charged to an operation that draws a spike.
    latency_spike: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _PROBABILITIES:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if self.latency_spike < 0:
            raise ConfigurationError(
                f"latency_spike must be >= 0, got {self.latency_spike}"
            )

    @property
    def enabled(self) -> bool:
        """True when any fault class can actually fire."""
        return any(getattr(self, name) > 0.0 for name in _PROBABILITIES)


@dataclass(frozen=True)
class WriteVerdict:
    """What the fault model decided about one write."""

    fail: bool = False
    corrupt: bool = False
    extra_latency: float = 0.0


@dataclass(frozen=True)
class ReadVerdict:
    """What the fault model decided about one read."""

    fail: bool = False
    extra_latency: float = 0.0


#: Verdicts returned on every operation while the model is disabled —
#: shared constants so the no-op path allocates nothing per call.
_CLEAN_WRITE = WriteVerdict()
_CLEAN_READ = ReadVerdict()


class StorageFaultModel:
    """Seeded, deterministic fault decisions for stable storage.

    One model instance serves one job (all attempts): the stream
    advances across restarts, so a retried write sees a *fresh* draw —
    which is what makes retry-with-backoff effective against transient
    write failures.
    """

    def __init__(self, config: StorageFaultConfig) -> None:
        self.config = config
        sequence = np.random.SeedSequence(
            entropy=int(config.seed), spawn_key=(_STREAM_KEY,)
        )
        self._rng = np.random.default_rng(sequence)
        self.writes_failed = 0
        self.reads_failed = 0
        self.blobs_corrupted = 0
        self.latency_spikes = 0

    @property
    def enabled(self) -> bool:
        """True when the model can inject anything at all."""
        return self.config.enabled

    # -- per-operation decisions -------------------------------------------

    def on_write(self) -> WriteVerdict:
        """Decide the fate of one blob write (three aligned draws)."""
        if not self.enabled:
            return _CLEAN_WRITE
        cfg = self.config
        spike, fail, corrupt = self._rng.random(3)
        extra = 0.0
        if spike < cfg.latency_spike_prob:
            self.latency_spikes += 1
            extra = cfg.latency_spike
        if fail < cfg.write_fail_prob:
            self.writes_failed += 1
            return WriteVerdict(fail=True, extra_latency=extra)
        if corrupt < cfg.corrupt_prob:
            self.blobs_corrupted += 1
            return WriteVerdict(corrupt=True, extra_latency=extra)
        return WriteVerdict(extra_latency=extra)

    def on_read(self) -> ReadVerdict:
        """Decide the fate of one blob read (two aligned draws)."""
        if not self.enabled:
            return _CLEAN_READ
        cfg = self.config
        spike, fail = self._rng.random(2)
        extra = 0.0
        if spike < cfg.latency_spike_prob:
            self.latency_spikes += 1
            extra = cfg.latency_spike
        if fail < cfg.read_fail_prob:
            self.reads_failed += 1
            return ReadVerdict(fail=True, extra_latency=extra)
        return ReadVerdict(extra_latency=extra)

    def damage(self, data: bytes) -> bytes:
        """Flip one bit of ``data`` at a position drawn from the stream."""
        if not data:
            return data
        position = int(self._rng.integers(0, len(data)))
        bit = 1 << int(self._rng.integers(0, 8))
        damaged = bytearray(data)
        damaged[position] ^= bit
        return bytes(damaged)

    def counters(self) -> Dict[str, int]:
        """Injection counts so far (surfaced in job reports)."""
        return {
            "storage_writes_failed": self.writes_failed,
            "storage_reads_failed": self.reads_failed,
            "storage_blobs_corrupted": self.blobs_corrupted,
            "storage_latency_spikes": self.latency_spikes,
        }
