"""faults — failure distributions, injection and detection.

Implements the first "background process" of the paper's Section 5:
the failure injector.  Per physical process, failure interarrival
times are drawn from an exponential distribution (Poisson process,
model assumption 3); when a process's time comes it is fail-stopped in
the current MPI world.  Whether failures may strike *during*
checkpoint/restart phases is configurable — the paper's experiments
suppress them (Section 6, observation 5), its full model does not.
"""

from .distributions import Exponential, LogNormal, Weibull
from .injector import FailureInjector, FailureRecord, exponential_injector
from .detector import FailureDetector

__all__ = [
    "Exponential",
    "FailureDetector",
    "FailureInjector",
    "FailureRecord",
    "LogNormal",
    "Weibull",
    "exponential_injector",
]
