"""faults — failure distributions, injection and detection.

Implements the first "background process" of the paper's Section 5:
the failure injector.  Per physical process, failure interarrival
times are drawn from an exponential distribution (Poisson process,
model assumption 3); when a process's time comes it is fail-stopped in
the current MPI world.  Whether failures may strike *during*
checkpoint/restart phases is configurable — the paper's experiments
suppress them (Section 6, observation 5), its full model does not.

:mod:`storage_faults` extends injection to the fault-tolerance
machinery itself: seeded write failures, read failures, at-rest bit
corruption and latency spikes for stable storage (the chaos layer).
"""

from .distributions import Exponential, LogNormal, Weibull
from .injector import FailureInjector, FailureRecord, exponential_injector
from .detector import FailureDetector
from .storage_faults import (
    ReadVerdict,
    StorageFaultConfig,
    StorageFaultModel,
    WriteVerdict,
)

__all__ = [
    "Exponential",
    "FailureDetector",
    "FailureInjector",
    "FailureRecord",
    "LogNormal",
    "ReadVerdict",
    "StorageFaultConfig",
    "StorageFaultModel",
    "Weibull",
    "WriteVerdict",
    "exponential_injector",
]
