"""Failure interarrival distributions.

The paper's model assumes exponential interarrivals (Poisson failures,
"electrical devices in mid-life" [Yang 2007]).  Weibull and lognormal
are provided for the robustness ablation: field studies (Schroeder &
Gibson) find Weibull shape < 1 fits real HPC failure logs better, and
the ablation benchmark measures how much that violates the model.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from ..errors import ConfigurationError


class Distribution(Protocol):
    """Interface: positive random interarrival times with a known mean."""

    mean: float

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one interarrival time."""
        ...  # pragma: no cover - protocol


class Exponential:
    """Exponential interarrivals — the paper's Poisson assumption."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be > 0, got {mean}")
        self.mean = mean

    def sample(self, rng: np.random.Generator) -> float:
        """Draw from Exp(1/mean)."""
        return float(rng.exponential(scale=self.mean))


class Weibull:
    """Weibull interarrivals with the given mean and shape.

    ``shape < 1`` gives a decreasing hazard (infant-mortality-like
    clustering), which is what real failure logs show.
    """

    def __init__(self, mean: float, shape: float = 0.7) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be > 0, got {mean}")
        if shape <= 0:
            raise ConfigurationError(f"shape must be > 0, got {shape}")
        self.mean = mean
        self.shape = shape
        # scale chosen so the distribution mean equals `mean`.
        self._scale = mean / math.gamma(1.0 + 1.0 / shape)

    def sample(self, rng: np.random.Generator) -> float:
        """Draw from Weibull(shape) scaled to the requested mean."""
        return float(self._scale * rng.weibull(self.shape))


class LogNormal:
    """Lognormal interarrivals with the given mean and coefficient of variation."""

    def __init__(self, mean: float, cv: float = 1.0) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be > 0, got {mean}")
        if cv <= 0:
            raise ConfigurationError(f"cv must be > 0, got {cv}")
        self.mean = mean
        self.cv = cv
        self._sigma = math.sqrt(math.log1p(cv**2))
        self._mu = math.log(mean) - 0.5 * self._sigma**2

    def sample(self, rng: np.random.Generator) -> float:
        """Draw from LogNormal(mu, sigma) with the requested mean/CV."""
        return float(rng.lognormal(mean=self._mu, sigma=self._sigma))
