"""Analytic models from Section 4 of the paper.

This subpackage is the paper's primary contribution: a closed-form model
of the total wallclock time of a parallel job protected by *partial
process redundancy* combined with coordinated checkpoint/restart.

Quick tour
----------

>>> from repro.models import CombinedModel
>>> from repro import units
>>> model = CombinedModel(
...     virtual_processes=100_000,
...     redundancy=2.0,
...     node_mtbf=units.years(5),
...     alpha=0.2,
...     base_time=units.hours(128),
...     checkpoint_cost=units.minutes(5),
...     restart_cost=units.minutes(10),
... )
>>> result = model.evaluate()
>>> result.total_time > result.redundant_time
True

Module map
----------

``reliability``
    Per-node and per-sphere survival probabilities (Eqs. 2-4).
``redundancy``
    Redundant execution time (Eq. 1), the partial-redundancy partition
    (Eqs. 5-8), system reliability / failure rate / MTBF (Eqs. 9-10) and
    the birthday-problem approximation from Section 4.3.
``checkpointing``
    Expected lost work (Eq. 12), the restart+rework phase (Eq. 13), the
    total-time recurrence (Eq. 14), Daly's optimal interval (Eq. 15) and
    Young's first-order interval for comparison.
``combined``
    :class:`CombinedModel` — the end-to-end pipeline gluing the above.
``grid``
    Vectorized (NumPy) evaluation of the combined pipeline over whole
    parameter grids — the fast path behind the Fig. 4-6/13/14 sweeps.
``simplified``
    The experiment-matched model of Section 6, observation (5).
``optimize``
    Optimal redundancy/interval search and crossover finding.
``cost``
    Node-hour accounting and weighted time/resource cost functions.
"""

from .reliability import (
    node_failure_probability,
    node_reliability,
    sphere_reliability,
)
from .redundancy import (
    RedundancyPartition,
    birthday_collision_probability,
    partition_processes,
    redundant_time,
    system_failure_rate,
    system_mtbf,
    system_reliability,
)
from .checkpointing import (
    TimeBreakdown,
    daly_interval,
    expected_lost_work,
    expected_restart_rework,
    segment_failure_pdf,
    time_breakdown,
    total_time,
    young_interval,
)
from .combined import CombinedModel, CombinedResult
from .grid import ModelGrid, evaluate_grid, evaluate_model_grid, total_time_grid
from .simplified import simplified_total_time
from .optimize import (
    CrossoverPoint,
    RedundancySweepPoint,
    clear_model_cache,
    find_crossover,
    model_cache_info,
    optimal_interval,
    optimal_redundancy,
    sweep_processes,
    sweep_redundancy,
    throughput_break_even,
)
from .redundancy import PAPER_REDUNDANCY_GRID, shadow_hit_probability
from .advisor import (
    Recommendation,
    clear_recommend_cache,
    recommend,
    recommend_cache_info,
)
from .cost import node_hours, weighted_cost

__all__ = [
    "PAPER_REDUNDANCY_GRID",
    "Recommendation",
    "recommend",
    "recommend_cache_info",
    "clear_recommend_cache",
    "CombinedModel",
    "ModelGrid",
    "clear_model_cache",
    "evaluate_grid",
    "evaluate_model_grid",
    "model_cache_info",
    "optimal_interval",
    "sweep_processes",
    "total_time_grid",
    "CombinedResult",
    "CrossoverPoint",
    "RedundancyPartition",
    "RedundancySweepPoint",
    "TimeBreakdown",
    "birthday_collision_probability",
    "daly_interval",
    "expected_lost_work",
    "expected_restart_rework",
    "find_crossover",
    "node_failure_probability",
    "node_hours",
    "node_reliability",
    "optimal_redundancy",
    "partition_processes",
    "redundant_time",
    "segment_failure_pdf",
    "simplified_total_time",
    "shadow_hit_probability",
    "sphere_reliability",
    "sweep_redundancy",
    "system_failure_rate",
    "system_mtbf",
    "system_reliability",
    "throughput_break_even",
    "time_breakdown",
    "total_time",
    "weighted_cost",
    "young_interval",
]
