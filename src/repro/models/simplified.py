"""The experiment-matched simplified model (Section 6, observation 5).

The paper's experimental harness differs from the full Section 4 model
in one way: failures are *not* injected while a checkpoint or a restart
is in progress.  The paper therefore simplifies the time function for
the model-vs-measurement comparison (Figures 11 and 12) to

``T_total = t_Red + (checkpoint count) * c + t_Red * lambda_sys * R``

i.e. redundant execution time, plus the cost of the checkpoints taken
over it, plus one restart per expected failure — with no compounding of
failures during recovery and no rework term (the injector rolls back to
the last checkpoint, and the lost-work rework is folded into the
measured restart cost ``R``).

The paper prints the middle term as ``t_Red * sqrt(2 c Theta)``, which
is dimensionally time-squared; read as intended, ``sqrt(2 c Theta)`` is
Young's *interval*, so the number of checkpoints is
``t_Red / sqrt(2 c Theta)`` and the middle term is that count times
``c``.  :func:`simplified_total_time` implements the intended form by
default and the literal printed form behind ``literal=True`` so the
difference can be examined.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError, ModelDivergence
from .checkpointing import daly_interval, young_interval
from .redundancy import redundant_time, system_failure_rate


def simplified_total_time(
    virtual_processes: int,
    redundancy: float,
    node_mtbf: float,
    alpha: float,
    base_time: float,
    checkpoint_cost: float,
    restart_cost: float,
    interval_rule: str = "young",
    exact_reliability: bool = False,
    literal: bool = False,
) -> float:
    """Section 6's simplified completion-time estimate.

    Parameters mirror :class:`repro.models.CombinedModel`; the interval
    rule defaults to Young's ``sqrt(2 c Theta)`` because that is the
    term the paper's simplified formula embeds (``"daly"`` is accepted
    for the ablation).

    With ``literal=True`` the exact printed expression
    ``t_Red + t_Red sqrt(2 c Theta) + t_Red lambda R`` is evaluated
    instead (units are inconsistent; provided only for comparison).
    """
    if interval_rule not in ("young", "daly"):
        raise ConfigurationError(
            f"interval_rule must be 'young' or 'daly', got {interval_rule!r}"
        )
    t_red = redundant_time(base_time, alpha, redundancy)
    rate = system_failure_rate(
        virtual_processes, redundancy, t_red, node_mtbf, exact=exact_reliability
    )
    if math.isinf(rate):
        raise ModelDivergence("system failure rate diverged in simplified model")
    restart_term = t_red * rate * restart_cost
    if rate == 0.0:
        return t_red + restart_term
    mtbf = 1.0 / rate
    if literal:
        return t_red + t_red * math.sqrt(2.0 * checkpoint_cost * mtbf) + restart_term
    if interval_rule == "young":
        delta = young_interval(checkpoint_cost, mtbf)
    else:
        delta = daly_interval(checkpoint_cost, mtbf)
    checkpoint_term = (t_red / delta) * checkpoint_cost
    return t_red + checkpoint_term + restart_term
