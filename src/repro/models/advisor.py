"""The configuration advisor: the paper's conclusion as an API.

    "Using this model, HPC users can configure their application to
    select the right redundancy degree and checkpoint frequency to
    obtain the maximum performance for the available resources."
    — Section 8

:func:`recommend` turns that sentence into a function: given the
machine (process count, node MTBF, optionally a node budget), the
application (base time, communication share) and the C/R costs, it
returns the redundancy degree and Daly interval to run with, plus the
quantified alternatives so the user can see what the recommendation
buys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence

from ..errors import ConfigurationError, ModelDivergence
from .combined import CombinedModel, CombinedResult
from .cost import weighted_cost
from .optimize import RedundancySweepPoint, sweep_redundancy
from .redundancy import PAPER_REDUNDANCY_GRID, partition_processes


@dataclass(frozen=True)
class Recommendation:
    """What the advisor tells the user to run."""

    #: Chosen redundancy degree.
    redundancy: float
    #: Daly-optimal checkpoint interval at that degree (seconds).
    checkpoint_interval: float
    #: Expected completion time (seconds).
    total_time: float
    #: Physical processes (== nodes under assumption 2) required.
    total_processes: int
    #: Speedup over running without redundancy (>= 1 when r=1 feasible;
    #: ``inf`` when plain execution diverges).
    speedup_vs_plain: float
    #: Full evaluation record of the chosen configuration.
    result: CombinedResult
    #: Every candidate considered (for the user's own judgement).
    candidates: List[RedundancySweepPoint]
    #: One-line human-readable rationale.
    rationale: str


def recommend(
    model: CombinedModel,
    grid: Sequence[float] = PAPER_REDUNDANCY_GRID,
    node_budget: Optional[int] = None,
    time_weight: float = 1.0,
    resource_weight: float = 0.0,
) -> Recommendation:
    """Select the redundancy degree and checkpoint interval to run with.

    Parameters
    ----------
    model:
        The machine/application/C-R parameter set (its ``redundancy``
        field is ignored; the grid is swept).
    grid:
        Candidate degrees (default: the paper's 1x..3x quarter steps).
    node_budget:
        If given, degrees whose Eq. 8 physical-process count exceeds
        the budget are excluded ("the least number of required
        resources" goal from Section 1).
    time_weight / resource_weight:
        The Section 1 cost-function weights.  The default (time only)
        recommends the fastest feasible configuration; adding resource
        weight trades wallclock for nodes.

    Raises
    ------
    ModelDivergence
        When no candidate in the (budget-filtered) grid has a finite
        expected completion time.
    ConfigurationError
        When the budget excludes every candidate.

    Calls are memoized on the exact input tuple (the model is a frozen
    dataclass, so it hashes by value): the advisor is pure, and serving
    it interactively (see :mod:`repro.service`) hits the same few
    machine descriptions over and over.  See
    :func:`recommend_cache_info` / :func:`clear_recommend_cache`.
    """
    return _cached_recommend(
        model, tuple(float(d) for d in grid), node_budget,
        float(time_weight), float(resource_weight),
    )


def recommend_cache_info():
    """Hit/miss statistics of the :func:`recommend` memo cache."""
    return _cached_recommend.cache_info()


def clear_recommend_cache() -> None:
    """Drop every memoized :func:`recommend` result."""
    _cached_recommend.cache_clear()


@lru_cache(maxsize=4096)
def _cached_recommend(
    model: CombinedModel,
    grid: Sequence[float],
    node_budget: Optional[int],
    time_weight: float,
    resource_weight: float,
) -> Recommendation:
    if node_budget is not None and node_budget < model.virtual_processes:
        raise ConfigurationError(
            f"node budget {node_budget} cannot host even r=1 "
            f"({model.virtual_processes} processes)"
        )
    candidates = sweep_redundancy(model, grid)
    feasible = []
    for point in candidates:
        if node_budget is not None:
            needed = partition_processes(
                model.virtual_processes, point.redundancy
            ).total_processes
            if needed > node_budget:
                continue
        feasible.append(point)
    if not feasible:
        raise ConfigurationError("node budget excludes every candidate degree")
    finite = [p for p in feasible if p.result is not None]
    if not finite:
        raise ModelDivergence(
            "no feasible redundancy degree yields a finite completion time"
        )
    plain = next((p for p in candidates if p.redundancy == 1.0), None)
    reference = plain.result if plain is not None and plain.result else finite[0].result

    def cost_of(point: RedundancySweepPoint) -> float:
        return weighted_cost(
            point.result, time_weight, resource_weight, reference=reference
        )

    best = min(finite, key=cost_of)
    plain_time = (
        plain.total_time if plain is not None else math.inf
    )
    speedup = (
        plain_time / best.total_time if not math.isinf(plain_time) else math.inf
    )
    rationale = _rationale(model, best, plain, node_budget, resource_weight)
    return Recommendation(
        redundancy=best.redundancy,
        checkpoint_interval=best.result.checkpoint_interval,
        total_time=best.total_time,
        total_processes=best.result.total_processes,
        speedup_vs_plain=speedup,
        result=best.result,
        candidates=candidates,
        rationale=rationale,
    )


def _rationale(
    model: CombinedModel,
    best: RedundancySweepPoint,
    plain: Optional[RedundancySweepPoint],
    node_budget: Optional[int],
    resource_weight: float,
) -> str:
    parts = []
    if best.redundancy == 1.0:
        parts.append(
            f"at N={model.virtual_processes:,} the failure rate is low "
            "enough that redundancy's communication overhead outweighs "
            "its reliability gain; run plain with Daly-interval C/R"
        )
    else:
        mtbf_gain = (
            best.result.system_mtbf
            / plain.result.system_mtbf
            if plain is not None and plain.result is not None
            else math.inf
        )
        parts.append(
            f"{best.redundancy}x redundancy multiplies the system MTBF "
            f"by {mtbf_gain:,.0f}x" if not math.isinf(mtbf_gain) else
            f"{best.redundancy}x redundancy makes an otherwise-divergent "
            "job finish"
        )
        parts.append(
            f"cutting expected failures to "
            f"{best.result.expected_failures:.1f} per run"
        )
    if node_budget is not None:
        parts.append(f"within the {node_budget:,}-node budget")
    if resource_weight > 0:
        parts.append("weighted for node usage per the user's cost function")
    return "; ".join(parts)
