"""Vectorized evaluation of the combined model over parameter grids.

:class:`~repro.models.combined.CombinedModel` evaluates one scalar
configuration at a time; the sweeps behind Figures 4-6, 13 and 14 (and
any design-space exploration over ``(N, r, theta, delta)``) evaluate
thousands.  :func:`evaluate_grid` runs the whole Section 4.3 pipeline —
Eq. 1 (redundant time), Eqs. 5-8 (partition), Eq. 9 (reliability),
Eq. 10 (failure rate), Eq. 15/Young (interval) and Eq. 14 (total time)
— over NumPy arrays in one shot, broadcasting its inputs.

The arithmetic mirrors the scalar implementation operation-for-operation
(including the paper's ``t/theta`` linearisation clamp, the partition's
float-artifact epsilon, Daly's ``c >= 2 Theta`` guard, and the
``exp``/``log`` round trip in Eq. 10), so results agree with
``CombinedModel.evaluate()`` to float64 rounding — the equivalence test
in ``tests/models/test_grid.py`` asserts 1e-9 relative error.

Divergent cells (where the scalar model raises
:class:`~repro.errors.ModelDivergence`) carry ``inf`` total time, the
same convention as ``CombinedModel.total_time_or_inf()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .combined import INTERVAL_RULES, CombinedModel
from .reliability import integer_power

__all__ = [
    "ModelGrid",
    "evaluate_grid",
    "evaluate_model_grid",
    "total_time_grid",
]


@dataclass(frozen=True)
class ModelGrid:
    """Array-valued results of one vectorized combined-model evaluation.

    All fields share one broadcast shape.  Cells where the model
    diverges (no finite completion time) hold ``inf`` in ``total_time``
    and ``nan`` in ``checkpoint_interval``; ``diverged`` masks them.
    """

    #: Eq. 1 — execution time with redundant communication.
    redundant_time: np.ndarray
    #: Eq. 8 — physical processes consumed.
    total_processes: np.ndarray
    #: Eq. 9 — probability the system survives one ``t_Red`` run.
    system_reliability: np.ndarray
    #: Eq. 10 — system failure rate (failures per second).
    failure_rate: np.ndarray
    #: Eq. 10 — system MTBF (``inf`` when failure-free).
    system_mtbf: np.ndarray
    #: Eq. 15 (or Young / override) — checkpoint interval used.
    checkpoint_interval: np.ndarray
    #: Eq. 14 — expected total wallclock time (``inf`` where diverged).
    total_time: np.ndarray

    @property
    def diverged(self) -> np.ndarray:
        """Boolean mask of cells with no finite completion time."""
        return ~np.isfinite(self.total_time)

    @property
    def expected_checkpoints(self) -> np.ndarray:
        """Expected checkpoints taken, ``t_Red / delta``.

        Diverged cells (whose interval is ``nan``) report ``inf``
        explicitly — the job restarts forever — rather than silently
        propagating ``nan`` into downstream aggregations.
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            counts = self.redundant_time / self.checkpoint_interval
        return np.where(self.diverged, np.inf, counts)

    @property
    def expected_failures(self) -> np.ndarray:
        """Eq. 11 — ``T_total * lambda`` (``inf``/``nan`` where diverged)."""
        return self.total_time * self.failure_rate

    @property
    def node_seconds(self) -> np.ndarray:
        """Resource usage: physical processes x wallclock time."""
        return self.total_processes * self.total_time


def _as_float(value) -> np.ndarray:
    return np.asarray(value, dtype=np.float64)


def _sphere_power(p: np.ndarray, levels: np.ndarray) -> np.ndarray:
    """``p ** levels`` for integer-valued level arrays, bit-identical to
    the scalar path's :func:`~repro.models.reliability.integer_power`.

    ``np.power``'s array loop and numpy's scalar path disagree in the
    last ULP for some inputs (e.g. squaring), so the sphere failure
    probability is computed with the same ascending multiply chain the
    scalar model uses, one chain per distinct replication level.
    """
    result = np.empty_like(p)
    for level in np.unique(levels):
        mask = levels == level
        result[mask] = integer_power(p[mask], int(level))
    return result


def evaluate_grid(
    virtual_processes,
    redundancy,
    node_mtbf,
    alpha,
    base_time,
    checkpoint_cost,
    restart_cost,
    interval_rule: str = "daly",
    checkpoint_interval=None,
    exact_reliability: bool = False,
) -> ModelGrid:
    """Evaluate the combined model over broadcast parameter arrays.

    Every parameter accepts a scalar or an array; arrays broadcast
    against each other with normal NumPy rules (e.g. a column of
    degrees against a row of process counts yields the full 2-D grid).
    """
    if interval_rule not in INTERVAL_RULES:
        raise ConfigurationError(
            f"interval_rule must be one of {INTERVAL_RULES}, got {interval_rule!r}"
        )
    n = _as_float(virtual_processes)
    r = _as_float(redundancy)
    theta = _as_float(node_mtbf)
    a = _as_float(alpha)
    t = _as_float(base_time)
    c = _as_float(checkpoint_cost)
    rc = _as_float(restart_cost)
    if np.any(n < 1):
        raise ConfigurationError("virtual_processes must be >= 1")
    if np.any(r < 1.0):
        raise ConfigurationError("redundancy must be >= 1")
    if np.any(theta <= 0):
        raise ConfigurationError("node_mtbf must be > 0")
    if np.any((a < 0.0) | (a > 1.0)):
        raise ConfigurationError("alpha must be in [0, 1]")
    if np.any(t < 0):
        raise ConfigurationError("base_time must be >= 0")
    if np.any(c <= 0):
        raise ConfigurationError("checkpoint_cost must be > 0")
    if np.any(rc < 0):
        raise ConfigurationError("restart_cost must be >= 0")
    override = None
    if checkpoint_interval is not None:
        override = _as_float(checkpoint_interval)
        if np.any(override <= 0):
            raise ConfigurationError("checkpoint_interval override must be > 0")

    shape = np.broadcast_shapes(
        n.shape, r.shape, theta.shape, a.shape, t.shape, c.shape, rc.shape,
        override.shape if override is not None else (),
    )
    n, r, theta, a, t, c, rc = (
        np.broadcast_to(x, shape).astype(np.float64)
        for x in (n, r, theta, a, t, c, rc)
    )
    if override is not None:
        override = np.broadcast_to(override, shape).astype(np.float64)

    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        # Eq. 1 — redundant execution time.
        t_red = (1.0 - a) * t + a * t * r

        # Eqs. 5-8 — the partial-redundancy partition.
        floor_level = np.floor(r)
        ceil_level = np.ceil(r)
        integer_r = floor_level == ceil_level
        # Epsilon mirrors the scalar partition's float-artifact guard.
        floor_count = np.where(
            integer_r, 0.0, np.floor((ceil_level - r) * n + 1e-9)
        )
        ceil_count = n - floor_count
        total_processes = ceil_count * ceil_level + floor_count * floor_level

        # Eq. 9 — log-space system reliability.
        if exact_reliability:
            p = -np.expm1(-t_red / theta)
        else:
            p = np.minimum(1.0, t_red / theta)
        log_r = np.zeros(shape, dtype=np.float64)
        dead = np.zeros(shape, dtype=bool)
        for count, level in ((floor_count, floor_level), (ceil_count, ceil_level)):
            active = count > 0
            sphere_fail = _sphere_power(p, level)
            dead |= active & (sphere_fail >= 1.0)
            term = np.where(
                active & (sphere_fail < 1.0),
                count * np.log1p(-np.where(sphere_fail < 1.0, sphere_fail, 0.0)),
                0.0,
            )
            log_r = log_r + term
        r_sys = np.where(dead, 0.0, np.exp(log_r))

        # Eq. 10 — failure rate and system MTBF (round trip through
        # exp/log exactly like the scalar path).
        rate = np.where(r_sys <= 0.0, np.inf, -np.log(r_sys) / t_red)
        failure_free = rate == 0.0
        diverged = np.isinf(rate)
        mtbf = np.where(failure_free, np.inf, 1.0 / np.where(rate > 0, rate, 1.0))

        # Eq. 15 / Young / override — checkpoint interval.
        safe_mtbf = np.where(np.isfinite(mtbf) & (mtbf > 0), mtbf, 1.0)
        if interval_rule == "young":
            rule_delta = np.sqrt(2.0 * c * safe_mtbf)
        else:
            ratio = c / (2.0 * safe_mtbf)
            base = np.sqrt(2.0 * c * safe_mtbf)
            correction = 1.0 + np.sqrt(ratio) / 3.0 + ratio / 9.0
            rule_delta = np.where(ratio >= 1.0, safe_mtbf, base * correction - c)
        if override is not None:
            delta = override.copy()
        else:
            # Failure-free in expectation: nominal one-checkpoint run.
            # Elsewhere the rule interval is clamped to that same
            # nominal run, so the failure-free branch is the continuous
            # rate -> 0 limit (rule_delta -> inf) — mirroring the
            # scalar path exactly; see CombinedModel.evaluate().
            delta = np.where(failure_free, t_red, np.minimum(rule_delta, t_red))
        delta = np.where(diverged, np.nan, delta)

        # Eq. 14 — total time via Eqs. 12-13.
        safe_delta = np.where(np.isfinite(delta) & (delta > 0), delta, 1.0)
        useful = t_red + t_red * c / safe_delta
        delta_c = safe_delta + c
        denom = -np.expm1(-delta_c / safe_mtbf)
        denom = np.where(denom > 0, denom, 1.0)
        # Clipped to the mathematical bound 0 <= t_lw <= delta: for
        # delta << mtbf the numerator cancels to machine precision and
        # can leave a tiny negative residue (mirrors the scalar clamp).
        t_lw = np.clip(
            (
                -safe_mtbf * np.expm1(-safe_delta / safe_mtbf)
                - safe_delta * np.exp(-delta_c / safe_mtbf)
            ) / denom,
            0.0,
            safe_delta,
        )
        x = rc + t_lw
        survive = np.exp(-x / safe_mtbf)
        fail = -np.expm1(-x / safe_mtbf)
        truncated = safe_mtbf - survive * (x + safe_mtbf)
        t_rr = np.where(x == 0.0, 0.0, fail * truncated + survive * x)
        loss = rate * t_rr
        no_progress = diverged | (loss >= 1.0) | ~np.isfinite(loss)
        total = np.where(
            failure_free, useful, np.where(no_progress, np.inf, useful / (1.0 - loss))
        )
        mtbf_out = np.where(diverged, 0.0, mtbf)

    return ModelGrid(
        redundant_time=t_red,
        total_processes=total_processes,
        system_reliability=r_sys,
        failure_rate=rate,
        system_mtbf=mtbf_out,
        checkpoint_interval=delta,
        total_time=total,
    )


def evaluate_model_grid(model: CombinedModel, **axes) -> ModelGrid:
    """Evaluate ``model`` with some fields replaced by arrays.

    ``axes`` maps :class:`~repro.models.combined.CombinedModel` field
    names (``virtual_processes``, ``redundancy``, ``node_mtbf``,
    ``alpha``, ``base_time``, ``checkpoint_cost``, ``restart_cost``,
    ``checkpoint_interval``) to scalars or arrays; everything else is
    taken from ``model``.
    """
    params = {
        "virtual_processes": model.virtual_processes,
        "redundancy": model.redundancy,
        "node_mtbf": model.node_mtbf,
        "alpha": model.alpha,
        "base_time": model.base_time,
        "checkpoint_cost": model.checkpoint_cost,
        "restart_cost": model.restart_cost,
        "checkpoint_interval": model.checkpoint_interval,
    }
    unknown = set(axes) - set(params)
    if unknown:
        raise ConfigurationError(f"unknown model grid axes: {sorted(unknown)}")
    params.update(axes)
    return evaluate_grid(
        interval_rule=model.interval_rule,
        exact_reliability=model.exact_reliability,
        **params,
    )


def total_time_grid(
    model: CombinedModel,
    processes=None,
    redundancy=None,
) -> np.ndarray:
    """Total completion times over process/redundancy axes (seconds).

    The fast-path equivalent of looping
    ``model.with_processes(n).with_redundancy(r).total_time_or_inf()``;
    divergent cells are ``inf``.
    """
    axes = {}
    if processes is not None:
        axes["virtual_processes"] = processes
    if redundancy is not None:
        axes["redundancy"] = redundancy
    return evaluate_model_grid(model, **axes).total_time
