"""Optimal-configuration search and crossover finding (Figs. 4-6, 13-14).

Three questions the paper answers with its model, made executable:

* *Which redundancy degree minimises wallclock time?* —
  :func:`sweep_redundancy` / :func:`optimal_redundancy` over the
  paper's 0.25-step grid (or any grid).
* *At what scale does degree r2 start beating degree r1?* —
  :func:`find_crossover` reproduces Fig. 13's 1x→2x crossover at 4,351
  processes and 1x→3x at 12,551.
* *When can two redundant jobs finish within one plain job?* —
  :func:`throughput_break_even` reproduces Fig. 14's 78,536-process
  point where ``T(r=1) >= 2 * T(r=2)``.

Also provides :func:`optimal_interval`, a numerical check that Daly's
closed form (Eq. 15) sits at the true minimum of Eq. 14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Iterable, List, Optional, Sequence

from scipy import optimize as _sciopt

from ..errors import ConfigurationError, ModelDivergence
from .combined import CombinedModel, CombinedResult
from .redundancy import PAPER_REDUNDANCY_GRID


@dataclass(frozen=True)
class RedundancySweepPoint:
    """One (redundancy, total time) sample from a sweep."""

    redundancy: float
    total_time: float
    #: Full evaluation record; ``None`` when the model diverged.
    result: Optional[CombinedResult]

    @property
    def diverged(self) -> bool:
        """True when Eq. 14 had no finite solution at this degree."""
        return self.result is None


def sweep_redundancy(
    model: CombinedModel,
    grid: Sequence[float] = PAPER_REDUNDANCY_GRID,
) -> List[RedundancySweepPoint]:
    """Evaluate ``model`` at every redundancy degree in ``grid``."""
    points = []
    for degree in grid:
        candidate = model.with_redundancy(degree)
        try:
            result = candidate.evaluate()
            point = RedundancySweepPoint(degree, result.total_time, result)
        except ModelDivergence:
            point = RedundancySweepPoint(degree, math.inf, None)
        points.append(point)
    return points


def optimal_redundancy(
    model: CombinedModel,
    grid: Sequence[float] = PAPER_REDUNDANCY_GRID,
) -> RedundancySweepPoint:
    """The sweep point with the smallest total time (ties: lower r)."""
    points = sweep_redundancy(model, grid)
    best = min(points, key=lambda p: (p.total_time, p.redundancy))
    if math.isinf(best.total_time):
        raise ModelDivergence("no redundancy degree in the grid yields a finite time")
    return best


def optimal_interval(
    model: CombinedModel,
    bracket_factor: float = 50.0,
) -> float:
    """Numerically optimal checkpoint interval for ``model``.

    Minimises Eq. 14 over ``delta`` with scipy's bounded scalar
    optimizer, bracketing around Daly's closed form.  Used by the
    ablation benchmark to confirm Eq. 15 is (near-)optimal.
    """
    if bracket_factor <= 1.0:
        raise ConfigurationError("bracket_factor must be > 1")
    reference = model.evaluate()
    daly = reference.checkpoint_interval

    def objective(delta: float) -> float:
        # dataclasses.replace keeps every other field — including ones
        # added after this code was written — in the objective.
        candidate = replace(model, checkpoint_interval=float(delta))
        return candidate.total_time_or_inf()

    outcome = _sciopt.minimize_scalar(
        objective,
        bounds=(daly / bracket_factor, daly * bracket_factor),
        method="bounded",
    )
    return float(outcome.x)


@dataclass(frozen=True)
class CrossoverPoint:
    """Smallest process count where one degree beats another."""

    low_redundancy: float
    high_redundancy: float
    processes: int
    low_time: float
    high_time: float


@lru_cache(maxsize=65536)
def _cached_total_time(
    model: CombinedModel, processes: int, redundancy: float
) -> float:
    return (
        model.with_processes(processes).with_redundancy(redundancy).total_time_or_inf()
    )


def _time_at(model: CombinedModel, processes: int, redundancy: float) -> float:
    """Memoized Eq. 14 evaluation at ``(N, r)``.

    The exponential-scan + bisection loops below probe the *same*
    low-degree configurations over and over (``find_crossover`` holds
    ``low_redundancy`` fixed while halving on ``N``;
    ``throughput_break_even`` re-evaluates the plain 1x job at every
    probe).  ``CombinedModel`` is a frozen — hence hashable — dataclass,
    so an LRU memo on the full configuration is exact.
    """
    return _cached_total_time(model, processes, redundancy)


def clear_model_cache() -> None:
    """Drop the memoized ``(model, N, r)`` evaluations (for tests/benchmarks)."""
    _cached_total_time.cache_clear()


def model_cache_info():
    """Statistics of the memoized evaluation cache."""
    return _cached_total_time.cache_info()


def find_crossover(
    model: CombinedModel,
    low_redundancy: float,
    high_redundancy: float,
    max_processes: int = 10_000_000,
    min_processes: int = 2,
) -> CrossoverPoint:
    """Smallest ``N`` where ``high_redundancy`` completes no later.

    Exponential scan followed by binary search; reproduces the Fig. 13
    crossovers.  Raises :class:`ModelDivergence` if the high degree
    never wins within ``max_processes``.
    """
    if min_processes < 1 or max_processes <= min_processes:
        raise ConfigurationError("need 1 <= min_processes < max_processes")

    def high_wins(processes: int) -> bool:
        low = _time_at(model, processes, low_redundancy)
        high = _time_at(model, processes, high_redundancy)
        return high <= low

    # Exponential scan for a bracketing interval.
    lo = min_processes
    hi = lo
    while hi <= max_processes and not high_wins(hi):
        lo = hi
        hi *= 2
    if hi > max_processes:
        if high_wins(max_processes):
            hi = max_processes
        else:
            raise ModelDivergence(
                f"{high_redundancy}x never beats {low_redundancy}x "
                f"up to N={max_processes}"
            )
    # Binary search for the boundary inside (lo, hi].
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if high_wins(mid):
            hi = mid
        else:
            lo = mid
    return CrossoverPoint(
        low_redundancy=low_redundancy,
        high_redundancy=high_redundancy,
        processes=hi,
        low_time=_time_at(model, hi, low_redundancy),
        high_time=_time_at(model, hi, high_redundancy),
    )


def throughput_break_even(
    model: CombinedModel,
    redundancy: float = 2.0,
    jobs: int = 2,
    max_processes: int = 10_000_000,
    min_processes: int = 2,
) -> CrossoverPoint:
    """Smallest ``N`` where ``jobs`` redundant runs fit in one plain run.

    Fig. 14's headline: at ~78,536 processes two back-to-back 2x jobs of
    128 h complete within the wallclock of a single 1x job, i.e.
    ``jobs * T(r) <= T(1)``.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")

    def wins(processes: int) -> bool:
        plain = _time_at(model, processes, 1.0)
        redundant = _time_at(model, processes, redundancy)
        if math.isinf(plain):
            return True
        return jobs * redundant <= plain

    lo = min_processes
    hi = lo
    while hi <= max_processes and not wins(hi):
        lo = hi
        hi *= 2
    if hi > max_processes:
        if wins(max_processes):
            hi = max_processes
        else:
            raise ModelDivergence(
                f"{jobs} jobs at {redundancy}x never fit in one 1x job "
                f"up to N={max_processes}"
            )
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if wins(mid):
            hi = mid
        else:
            lo = mid
    return CrossoverPoint(
        low_redundancy=1.0,
        high_redundancy=redundancy,
        processes=hi,
        low_time=_time_at(model, hi, 1.0),
        high_time=_time_at(model, hi, redundancy),
    )


def sweep_processes(
    model: CombinedModel,
    redundancy: float,
    process_counts: Iterable[int],
) -> List[RedundancySweepPoint]:
    """Total time across process counts at a fixed degree (Figs. 13-14).

    Returns sweep points whose ``redundancy`` field carries the fixed
    degree; the varying quantity is in ``result.model.virtual_processes``.
    """
    points = []
    for count in process_counts:
        candidate = model.with_processes(int(count)).with_redundancy(redundancy)
        try:
            result = candidate.evaluate()
            points.append(RedundancySweepPoint(redundancy, result.total_time, result))
        except ModelDivergence:
            points.append(RedundancySweepPoint(redundancy, math.inf, None))
    return points
