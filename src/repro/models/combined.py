"""End-to-end combined redundancy + checkpointing model (Section 4.3).

:class:`CombinedModel` wires together Eq. 1 (redundant time), Eqs. 5-10
(partial-redundancy system reliability and failure rate), Eq. 15 (Daly's
interval) and Eq. 14 (total completion time) exactly the way the paper's
Figures 4-6 and 13-14 are produced:

1. amplify the base time for redundant communication:
   ``t_Red = (1 - alpha) t + alpha t r``;
2. compute the system failure rate over the ``t_Red`` exposure from the
   partial-redundancy partition;
3. choose the checkpoint interval (Daly's Eq. 15 by default, Young's
   rule optionally) at the *system* MTBF;
4. evaluate the Eq. 14 fixed point with the redundant time as the work
   term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import ConfigurationError, ModelDivergence
from .checkpointing import (
    TimeBreakdown,
    daly_interval,
    time_breakdown,
    young_interval,
)
from .redundancy import (
    RedundancyPartition,
    partition_processes,
    redundant_time,
    system_failure_rate,
    system_reliability,
)

#: Supported checkpoint-interval rules.
INTERVAL_RULES = ("daly", "young")


@dataclass(frozen=True)
class CombinedResult:
    """Everything the combined model derives for one configuration."""

    #: Input configuration echo (useful in sweep records).
    model: "CombinedModel"
    #: Eq. 1 — execution time with redundant communication, no failures.
    redundant_time: float
    #: Eqs. 5-8 — how virtual processes map to replication levels.
    partition: RedundancyPartition
    #: Eq. 9 — probability the whole system survives one ``t_Red`` run.
    system_reliability: float
    #: Eq. 10 — system failure rate (failures per second).
    failure_rate: float
    #: Eq. 10 — system MTBF (seconds; ``inf`` if failure-free).
    system_mtbf: float
    #: Eq. 15 (or Young) — checkpoint interval used.
    checkpoint_interval: float
    #: Eq. 14 — expected total wallclock time.
    total_time: float
    #: Work/checkpoint/recompute/restart split of ``total_time``.
    breakdown: TimeBreakdown

    @property
    def expected_checkpoints(self) -> float:
        """Expected number of checkpoints taken (``t_Red / delta``)."""
        return self.breakdown.checkpoints_taken

    @property
    def expected_failures(self) -> float:
        """Eq. 11 — ``T_total * lambda``."""
        return self.breakdown.expected_failures

    @property
    def total_processes(self) -> int:
        """Eq. 8 — physical processes (== nodes, assumption 2) consumed."""
        return self.partition.total_processes

    @property
    def node_seconds(self) -> float:
        """Resource usage: physical processes x wallclock time."""
        return self.total_processes * self.total_time


@dataclass(frozen=True)
class CombinedModel:
    """Parameter set for one combined C/R + redundancy configuration.

    Parameters mirror Section 4's symbol table; all times in seconds.

    Attributes
    ----------
    virtual_processes:
        ``N`` — application (virtual) process count.
    redundancy:
        ``r`` — real-valued redundancy degree in ``[1, ...)``.
    node_mtbf:
        ``theta`` — MTBF of one node.
    alpha:
        Communication/computation ratio of the application.
    base_time:
        ``t`` — failure-free, redundancy-free execution time.
    checkpoint_cost:
        ``c`` — wallclock cost of writing one coordinated checkpoint.
    restart_cost:
        ``R`` — cost of restarting from an image (read + respawn +
        coordination).
    interval_rule:
        ``"daly"`` (Eq. 15, default) or ``"young"``.
    checkpoint_interval:
        Optional explicit ``delta`` override; when set, the interval
        rule is ignored.
    exact_reliability:
        Use the exponential CDF instead of the paper's ``t/theta``
        linearisation in Eqs. 3-4-9.
    """

    virtual_processes: int
    redundancy: float
    node_mtbf: float
    alpha: float
    base_time: float
    checkpoint_cost: float
    restart_cost: float
    interval_rule: str = "daly"
    checkpoint_interval: Optional[float] = field(default=None)
    exact_reliability: bool = False

    def __post_init__(self) -> None:
        if self.interval_rule not in INTERVAL_RULES:
            raise ConfigurationError(
                f"interval_rule must be one of {INTERVAL_RULES}, got {self.interval_rule!r}"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigurationError(
                f"checkpoint_interval override must be > 0, got {self.checkpoint_interval}"
            )

    def with_redundancy(self, redundancy: float) -> "CombinedModel":
        """Copy of this configuration at a different redundancy degree."""
        return replace(self, redundancy=redundancy)

    def with_processes(self, virtual_processes: int) -> "CombinedModel":
        """Copy of this configuration at a different process count."""
        return replace(self, virtual_processes=virtual_processes)

    def interval(self, system_mtbf: float) -> float:
        """The checkpoint interval this configuration will use."""
        if self.checkpoint_interval is not None:
            return self.checkpoint_interval
        if self.interval_rule == "young":
            return young_interval(self.checkpoint_cost, system_mtbf)
        return daly_interval(self.checkpoint_cost, system_mtbf)

    def evaluate(self) -> CombinedResult:
        """Run the full Section 4.3 pipeline for this configuration.

        Raises
        ------
        ModelDivergence
            When the configuration has no finite expected completion
            time (see :func:`repro.models.checkpointing.total_time`).
        """
        t_red = redundant_time(self.base_time, self.alpha, self.redundancy)
        partition = partition_processes(self.virtual_processes, self.redundancy)
        r_sys = system_reliability(
            self.virtual_processes,
            self.redundancy,
            t_red,
            self.node_mtbf,
            exact=self.exact_reliability,
        )
        rate = system_failure_rate(
            self.virtual_processes,
            self.redundancy,
            t_red,
            self.node_mtbf,
            exact=self.exact_reliability,
        )
        if math.isinf(rate):
            raise ModelDivergence(
                "system failure rate diverged (t_Red >= node MTBF under the "
                "linearised model); use exact_reliability=True or reduce scale"
            )
        mtbf = math.inf if rate == 0.0 else 1.0 / rate
        if self.checkpoint_interval is not None:
            delta = self.checkpoint_interval
        elif math.isinf(mtbf):
            # Failure-free in expectation: still checkpoint at a nominal
            # interval so the breakdown is well defined.
            delta = t_red
        else:
            # Clamp the rule interval to the nominal one-checkpoint run.
            # As rate -> 0 the rule interval grows without bound, so the
            # clamp makes this branch converge continuously to the
            # failure-free branch above; an unclamped interval longer
            # than the run itself is meaningless and opened a
            # one-checkpoint-cost discontinuity at the boundary where
            # the rate underflows to exactly 0.0.
            delta = min(self.interval(mtbf), t_red)
        breakdown = time_breakdown(
            t_red, delta, self.checkpoint_cost, rate, self.restart_cost
        )
        return CombinedResult(
            model=self,
            redundant_time=t_red,
            partition=partition,
            system_reliability=r_sys,
            failure_rate=rate,
            system_mtbf=mtbf,
            checkpoint_interval=delta,
            total_time=breakdown.total_time,
            breakdown=breakdown,
        )

    def total_time_or_inf(self) -> float:
        """``evaluate().total_time``, with divergence mapped to ``inf``.

        Convenience for sweeps and optimizers that want to treat
        impossible configurations as infinitely expensive rather than
        exceptional.
        """
        try:
            return self.evaluate().total_time
        except ModelDivergence:
            return math.inf
