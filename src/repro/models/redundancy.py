"""Redundant execution time and system reliability (Eqs. 1, 5-10).

This module covers everything the paper derives about the *redundancy*
side of the combined model:

* Eq. 1  — communication-amplified execution time ``t_Red``;
* Eqs. 5-8 — partitioning ``N`` virtual processes under a real-valued
  (partial) redundancy degree ``r`` into a ``floor(r)``-replicated set
  and a ``ceil(r)``-replicated set;
* Eq. 9  — system reliability ``R_sys`` (product of all sphere
  survival probabilities);
* Eq. 10 — derived system failure rate ``lambda_sys`` and MTBF
  ``Theta_sys``;
* Section 4.3's birthday-problem approximation for the probability of a
  primary and its shadow failing together.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .reliability import integer_power, node_failure_probability

#: Redundancy degrees the paper sweeps (1x .. 3x in 0.25 steps).
PAPER_REDUNDANCY_GRID = tuple(1.0 + 0.25 * i for i in range(9))


def redundant_time(base_time: float, alpha: float, redundancy: float) -> float:
    """Execution time under ``r``-way redundancy (Eq. 1).

    ``t_Red = (1 - alpha) * t + alpha * t * r``

    Only the communication share ``alpha`` of the base time ``t`` is
    amplified: the interposition layer turns every point-to-point call
    into ``r`` point-to-point calls, while computation is unaffected
    because replicas run on *extra* nodes (model assumption 2).

    Parameters
    ----------
    base_time:
        Failure-free execution time ``t`` without redundancy (seconds).
    alpha:
        Communication-to-computation ratio in ``[0, 1]`` (CG: 0.2).
    redundancy:
        Real-valued redundancy degree ``r >= 1``.
    """
    if base_time < 0:
        raise ConfigurationError(f"base_time must be >= 0, got {base_time}")
    if not 0.0 <= alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
    if redundancy < 1.0:
        raise ConfigurationError(f"redundancy must be >= 1, got {redundancy}")
    return (1.0 - alpha) * base_time + alpha * base_time * redundancy


@dataclass(frozen=True)
class RedundancyPartition:
    """The Eq. 5-8 partition of ``N`` virtual processes under degree ``r``.

    Attributes
    ----------
    virtual_processes:
        ``N`` — the application's (virtual) process count.
    redundancy:
        The requested real-valued degree ``r``.
    floor_level / ceil_level:
        ``floor(r)`` and ``ceil(r)`` — the two integer replication
        levels present in the system.
    floor_count / ceil_count:
        ``N_{floor(r)}`` and ``N_{ceil(r)}`` — how many virtual
        processes run at each level (Eqs. 6-7).
    total_processes:
        ``N_total`` — physical processes consumed (Eq. 8).
    """

    virtual_processes: int
    redundancy: float
    floor_level: int
    ceil_level: int
    floor_count: int
    ceil_count: int
    total_processes: int

    @property
    def effective_redundancy(self) -> float:
        """Realised degree ``N_total / N`` (≤ requested ``r``, Eq. 8)."""
        return self.total_processes / self.virtual_processes

    def replication_of(self, virtual_rank: int) -> int:
        """Integer replication level assigned to one virtual rank.

        By convention (matching the paper's experiments, where "1.5x
        means every other process has a replica"), the *lower*-numbered
        virtual ranks get the *higher* replication level.
        """
        if not 0 <= virtual_rank < self.virtual_processes:
            raise ConfigurationError(
                f"virtual rank {virtual_rank} outside [0, {self.virtual_processes})"
            )
        if virtual_rank < self.ceil_count:
            return self.ceil_level
        return self.floor_level


def partition_processes(virtual_processes: int, redundancy: float) -> RedundancyPartition:
    """Split ``N`` virtual processes into the Eq. 5-8 partial-r partition.

    ``N_{floor(r)} = floor((ceil(r) - r) * N)`` (Eq. 6) and
    ``N_{ceil(r)} = N - N_{floor(r)}`` (Eq. 7).  When ``r`` is an
    integer the floor set is empty and every process runs at level
    ``r`` exactly.
    """
    if virtual_processes < 1:
        raise ConfigurationError(
            f"virtual_processes must be >= 1, got {virtual_processes}"
        )
    if redundancy < 1.0:
        raise ConfigurationError(f"redundancy must be >= 1, got {redundancy}")
    floor_level = math.floor(redundancy)
    ceil_level = math.ceil(redundancy)
    if floor_level == ceil_level:  # integer r: homogeneous system
        floor_count = 0
        ceil_count = virtual_processes
    else:
        # Tiny epsilon guards against float artifacts like
        # (2 - 1.1) * 30 == 26.999999999999996 flooring to 26.
        floor_count = math.floor(
            (ceil_level - redundancy) * virtual_processes + 1e-9
        )
        ceil_count = virtual_processes - floor_count
    total = ceil_count * ceil_level + floor_count * floor_level
    return RedundancyPartition(
        virtual_processes=virtual_processes,
        redundancy=redundancy,
        floor_level=floor_level,
        ceil_level=ceil_level,
        floor_count=floor_count,
        ceil_count=ceil_count,
        total_processes=total,
    )


def system_reliability(
    virtual_processes: int,
    redundancy: float,
    exposure_time: float,
    node_mtbf: float,
    exact: bool = False,
) -> float:
    """Probability that *every* virtual process survives (Eq. 9).

    ``R_sys = [1 - p^floor(r)]^{N_floor} * [1 - p^ceil(r)]^{N_ceil}``

    where ``p = Pr(node failure before exposure_time)`` — linearised
    ``t_Red/theta`` by default, exact exponential CDF with
    ``exact=True``.

    Computed in log space: at the paper's scales (``N`` up to 10^6) the
    direct product underflows.

    Bit-identical to the vectorized pipeline in
    :mod:`repro.models.grid`: transcendentals go through numpy's scalar
    ufuncs and sphere powers through
    :func:`~repro.models.reliability.integer_power`, in the same
    floor-then-ceil accumulation order.
    """
    part = partition_processes(virtual_processes, redundancy)
    p = node_failure_probability(exposure_time, node_mtbf, exact=exact)
    log_r = 0.0
    for count, level in ((part.floor_count, part.floor_level), (part.ceil_count, part.ceil_level)):
        if count == 0:
            continue
        sphere_fail = integer_power(p, level)
        if sphere_fail >= 1.0:
            return 0.0
        log_r = log_r + count * float(np.log1p(-sphere_fail))
    return float(np.exp(log_r))


def system_failure_rate(
    virtual_processes: int,
    redundancy: float,
    exposure_time: float,
    node_mtbf: float,
    exact: bool = False,
) -> float:
    """System failure rate ``lambda_sys = -ln(R_sys) / t_Red`` (Eq. 10).

    Returns ``math.inf`` when the system reliability is zero over the
    exposure interval (the linearised model with ``t_Red >= theta``).
    """
    if exposure_time <= 0:
        raise ConfigurationError(f"exposure_time must be > 0, got {exposure_time}")
    r_sys = system_reliability(
        virtual_processes, redundancy, exposure_time, node_mtbf, exact=exact
    )
    if r_sys <= 0.0:
        return math.inf
    return float(-np.log(r_sys) / exposure_time)


def system_mtbf(
    virtual_processes: int,
    redundancy: float,
    exposure_time: float,
    node_mtbf: float,
    exact: bool = False,
) -> float:
    """System MTBF ``Theta_sys = 1 / lambda_sys`` (Eq. 10).

    Returns ``math.inf`` for a failure-free system (``R_sys == 1``) and
    ``0.0`` when the failure rate diverges.
    """
    rate = system_failure_rate(
        virtual_processes, redundancy, exposure_time, node_mtbf, exact=exact
    )
    if rate == 0.0:
        return math.inf
    if math.isinf(rate):
        return 0.0
    return 1.0 / rate


def birthday_collision_probability(n: int) -> float:
    """Section 4.3's printed birthday-problem approximation.

    ``p(n) ~= 1 - ((n - 2) / n)^(n (n - 1) / 2)`` for ``n`` nodes —
    implemented exactly as printed.  Note the printed expression is the
    probability of *some* pairwise collision over many failures, which
    tends to **1** as ``n`` grows (``ln`` of the power behaves like
    ``-(n-1)``); the quantity the paper's surrounding text reasons
    about — a failure striking one *specific* shadow node out of the
    remaining ``n - 1`` — is :func:`shadow_hit_probability`, which does
    vanish, motivating why dual redundancy scales.  Both are provided;
    the discrepancy is documented in DESIGN.md.
    """
    if n < 3:
        raise ConfigurationError(f"birthday approximation needs n >= 3, got {n}")
    exponent = n * (n - 1) / 2.0
    return -math.expm1(exponent * math.log1p(-2.0 / n))


def shadow_hit_probability(n: int) -> float:
    """Probability that the next failure hits one specific shadow node.

    After a primary fails, only one of the remaining ``n - 1`` nodes is
    its shadow; a uniformly-arriving second failure hits it with
    probability ``1 / (n - 1)`` — the vanishing quantity behind "and
    choosing just that shadow node becomes less likely as the number of
    nodes increases" (Section 1).
    """
    if n < 2:
        raise ConfigurationError(f"need n >= 2 nodes, got {n}")
    return 1.0 / (n - 1)
