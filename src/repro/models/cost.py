"""Resource/time cost functions (Section 1's "tuning knob").

The paper frames redundancy as a trade between *wallclock time* and
*resources*: dual redundancy doubles the node count but, past ~80k
processes, more than halves the completion time, so throughput per
node-hour improves.  These helpers make that trade explicit.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .combined import CombinedResult


def node_hours(result: CombinedResult) -> float:
    """Node-hours consumed: physical processes x wallclock hours."""
    return result.node_seconds / 3600.0


def weighted_cost(
    result: CombinedResult,
    time_weight: float = 1.0,
    resource_weight: float = 0.0,
    reference: CombinedResult = None,
) -> float:
    """User-weighted scalar cost ``w_t * T + w_r * N_total`` (normalised).

    The paper (Section 1) notes users may "create a cost function giving
    different weights to execution time and number of resources used".
    When ``reference`` is given (conventionally the r=1 configuration),
    both terms are expressed relative to it so the weights are unitless
    and a cost of 1.0 means "as expensive as the reference".

    Parameters
    ----------
    time_weight, resource_weight:
        Non-negative weights; at least one must be positive.
    reference:
        Optional baseline :class:`CombinedResult` for normalisation.
    """
    if time_weight < 0 or resource_weight < 0:
        raise ConfigurationError("weights must be >= 0")
    if time_weight == 0 and resource_weight == 0:
        raise ConfigurationError("at least one weight must be > 0")
    time_term = result.total_time
    resource_term = float(result.total_processes)
    if reference is not None:
        time_term /= reference.total_time
        resource_term /= reference.total_processes
    return time_weight * time_term + resource_weight * resource_term
