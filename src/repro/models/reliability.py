"""Per-node and per-sphere reliability (Eqs. 2-4 of the paper).

The paper assumes fail-stop node failures arriving as a Poisson process,
i.e. exponentially distributed interarrival times with node MTBF
``theta``.  A node therefore survives an interval of length ``t`` with
probability ``R(t) = exp(-t/theta)`` (Eq. 2).

For large ``theta`` the paper linearises the failure probability as
``Pr(node failure) = t/theta`` (Eq. 3) and builds the rest of the
analysis on that form.  Both forms are provided here; every function
takes an ``exact`` flag (default ``False`` = the paper's linearisation)
so the ablation benchmark can quantify the linearisation error.

The linearised probability is clamped to ``[0, 1]`` — for very unreliable
configurations (``t > theta``) the raw linearisation exceeds 1 and would
otherwise produce negative reliabilities downstream in Eq. 9.

Arithmetic substrate: every transcendental on the model's evaluation
path goes through :mod:`numpy`'s scalar ufuncs (``np.expm1`` here) and
integer powers through :func:`integer_power`, so the scalar pipeline is
**bit-identical** to the vectorized :mod:`repro.models.grid` pipeline —
numpy's element-wise loops give the same last-ULP result for a batch of
one and a batch of a thousand, while ``libm``'s ``math.*`` functions do
not always agree with them.  The serving layer's batched answers equal
direct scalar calls because of this invariant; don't reintroduce
``math.exp``-family calls on this path.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


def integer_power(base, exponent: int):
    """``base ** exponent`` by ascending repeated multiplication.

    ``pow``'s result differs between numpy's scalar path, numpy's array
    loops and libm; a fixed multiply chain is correctly rounded per step
    and therefore bit-identical for Python floats and numpy arrays
    alike.  Exponents on the model path are sphere replication levels —
    tiny integers — so the chain is short.  Works element-wise when
    ``base`` is an array.
    """
    if exponent < 1:
        raise ConfigurationError(
            f"integer_power exponent must be >= 1, got {exponent}"
        )
    result = base
    for _ in range(int(exponent) - 1):
        result = result * base
    return result


def _validate_time(t: float) -> None:
    if t < 0:
        raise ConfigurationError(f"time must be >= 0, got {t}")


def _validate_mtbf(theta: float) -> None:
    if theta <= 0:
        raise ConfigurationError(f"node MTBF must be > 0, got {theta}")


def node_failure_probability(t: float, theta: float, exact: bool = False) -> float:
    """Probability that one node fails before time ``t``.

    Parameters
    ----------
    t:
        Exposure interval (seconds).
    theta:
        Node mean time between failures (seconds).
    exact:
        ``True`` uses the exponential CDF ``1 - exp(-t/theta)`` (Eq. 2);
        ``False`` (default) uses the paper's linearisation ``t/theta``
        (Eq. 3), clamped to ``[0, 1]``.
    """
    _validate_time(t)
    _validate_mtbf(theta)
    if exact:
        return float(-np.expm1(-t / theta))
    return min(1.0, t / theta)


def node_reliability(t: float, theta: float, exact: bool = False) -> float:
    """Probability that one node survives until time ``t`` (Eqs. 2-3)."""
    return 1.0 - node_failure_probability(t, theta, exact=exact)


def sphere_reliability(t: float, theta: float, k: int, exact: bool = False) -> float:
    """Probability that a ``k``-way replicated virtual process survives.

    Eq. 4 of the paper: a sphere of ``k`` independent, identically
    distributed replicas fails only if *all* replicas fail, so

    ``R_red(t) = 1 - (Pr(node failure))^k``.

    Parameters
    ----------
    k:
        Positive integer redundancy level of this sphere (1 = no
        redundancy).  Partial redundancy is handled one level up, by
        partitioning processes into integer-``k`` sets (Eqs. 5-8).
    """
    if not isinstance(k, int) or k < 1:
        raise ConfigurationError(f"sphere redundancy k must be an int >= 1, got {k!r}")
    failure = node_failure_probability(t, theta, exact=exact)
    return 1.0 - integer_power(failure, k)
