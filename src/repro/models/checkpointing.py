"""Checkpoint/restart cost model (Eqs. 12-15 of the paper).

The application alternates work segments of length ``delta`` with
checkpoint phases of length ``c``.  Failures arrive with system rate
``lambda = 1/Theta`` and can strike at any point — including during a
checkpoint or a restart (model assumption 5).  The model yields:

* :func:`expected_lost_work` — Eq. 12, the expected work lost when a
  failure strikes somewhere in a ``delta + c`` segment;
* :func:`expected_restart_rework` — Eq. 13, the expected duration of the
  combined restart + rework phase (itself failure-prone);
* :func:`total_time` — Eq. 14, the fixed point
  ``T_total = (t + t c / delta) / (1 - lambda * t_RR)``;
* :func:`daly_interval` — Eq. 15, Daly's higher-order optimum
  checkpoint interval, and :func:`young_interval` for the classic
  first-order rule;
* :func:`time_breakdown` — the work / checkpoint / recompute / restart
  shares reported in the paper's Tables 2 and 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ModelDivergence


def _validate_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")


def _validate_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")


def segment_failure_pdf(t: float, delta: float, checkpoint_cost: float, mtbf: float) -> float:
    """Density of the failure position within a work+checkpoint segment.

    The paper folds the global exponential failure density into one
    segment of length ``delta_c = delta + checkpoint_cost``:

    ``p(t) = exp(-t/Theta) / (Theta * (1 - exp(-delta_c/Theta)))``

    for ``0 <= t <= delta_c``.  Integrates to 1 over the segment.
    """
    _validate_positive("delta", delta)
    _validate_non_negative("checkpoint_cost", checkpoint_cost)
    _validate_positive("mtbf", mtbf)
    delta_c = delta + checkpoint_cost
    if not 0.0 <= t <= delta_c:
        raise ConfigurationError(f"t must lie in [0, {delta_c}], got {t}")
    denominator = -math.expm1(-delta_c / mtbf)
    return math.exp(-t / mtbf) / (mtbf * denominator)


def expected_lost_work(delta: float, checkpoint_cost: float, mtbf: float) -> float:
    """Expected work lost to one failure, ``t_lw`` (Eq. 12).

    A failure at offset ``t <= delta`` into the segment loses ``t`` of
    work; a failure during the checkpoint phase loses the full
    ``delta``.  Integrating against :func:`segment_failure_pdf`:

    ``t_lw = [Theta - Theta e^(-delta/Theta) - delta e^(-delta_c/Theta)]
    / (1 - e^(-delta_c/Theta))``

    Always satisfies ``0 <= t_lw <= delta``.
    """
    _validate_positive("delta", delta)
    _validate_non_negative("checkpoint_cost", checkpoint_cost)
    _validate_positive("mtbf", mtbf)
    delta_c = delta + checkpoint_cost
    # numpy scalar ufuncs keep this bit-identical to the vectorized
    # pipeline in repro.models.grid (see reliability.py's substrate
    # note).
    denominator = float(-np.expm1(-delta_c / mtbf))
    numerator = float(
        -mtbf * np.expm1(-delta / mtbf) - delta * np.exp(-delta_c / mtbf)
    )
    # Enforce the mathematical bound numerically: for delta << mtbf the
    # two terms of the numerator cancel to machine precision and can
    # leave a tiny negative residue, which downstream validation (and
    # Eq. 13's exp/expm1 calls) must never see.
    return min(max(numerator / denominator, 0.0), delta)


def expected_restart_rework(
    lost_work: float, restart_cost: float, mtbf: float
) -> float:
    """Expected duration of the restart + rework phase, ``t_RR`` (Eq. 13).

    The phase nominally lasts ``x = R + t_lw`` but is itself exposed to
    failures.  The paper composes the phase duration as

    ``t_RR = (1 - e^(-x/Theta)) * [Theta - e^(-x/Theta) (x + Theta)]
    + e^(-x/Theta) * x``

    i.e. (probability of failing inside the phase) x (truncated expected
    failure time) + (probability of surviving the phase) x (full phase
    length).  We implement the formula exactly as printed — note it uses
    the *unconditional* truncated expectation, which slightly
    underweights early failures; this is the paper's model, and the
    model-vs-simulation benchmarks quantify the residual.

    Always satisfies ``0 <= t_RR <= R + t_lw``.
    """
    _validate_non_negative("lost_work", lost_work)
    _validate_non_negative("restart_cost", restart_cost)
    _validate_positive("mtbf", mtbf)
    x = restart_cost + lost_work
    if x == 0.0:
        return 0.0
    survive = float(np.exp(-x / mtbf))
    fail = float(-np.expm1(-x / mtbf))
    truncated_expectation = mtbf - survive * (x + mtbf)
    return fail * truncated_expectation + survive * x


def total_time(
    base_time: float,
    delta: float,
    checkpoint_cost: float,
    failure_rate: float,
    restart_cost: float,
) -> float:
    """Total completion time ``T_total`` (Eq. 14).

    ``T_total = (t + t c / delta) / (1 - lambda t_RR)``

    with ``t_RR`` from Eq. 13 evaluated at the system MTBF
    ``Theta = 1/lambda``.

    Raises
    ------
    ModelDivergence
        When ``lambda * t_RR >= 1``: the expected repair time per
        failure exceeds the time between failures, so the job makes no
        expected forward progress.
    """
    _validate_non_negative("base_time", base_time)
    _validate_positive("delta", delta)
    _validate_non_negative("checkpoint_cost", checkpoint_cost)
    _validate_non_negative("failure_rate", failure_rate)
    _validate_non_negative("restart_cost", restart_cost)
    useful_plus_checkpoints = base_time + base_time * checkpoint_cost / delta
    if failure_rate == 0.0:
        return useful_plus_checkpoints
    if math.isinf(failure_rate):
        raise ModelDivergence("failure rate is infinite; job never completes")
    mtbf = 1.0 / failure_rate
    t_lw = expected_lost_work(delta, checkpoint_cost, mtbf)
    t_rr = expected_restart_rework(t_lw, restart_cost, mtbf)
    loss = failure_rate * t_rr
    if loss >= 1.0:
        raise ModelDivergence(
            f"lambda * t_RR = {loss:.3f} >= 1; no finite completion time"
        )
    return useful_plus_checkpoints / (1.0 - loss)


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young's first-order optimum interval ``sqrt(2 c Theta)`` [Young 1974]."""
    _validate_positive("checkpoint_cost", checkpoint_cost)
    _validate_positive("mtbf", mtbf)
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Daly's higher-order optimum checkpoint interval (Eq. 15).

    ``delta_opt = sqrt(2 c Theta) [1 + (1/3) sqrt(c / 2Theta)
    + (1/9)(c / 2Theta)] - c``   for ``c < 2 Theta``,

    and ``delta_opt = Theta`` once the checkpoint cost reaches twice
    the MTBF (Daly 2006's guard for the regime where the expansion is
    invalid).
    """
    _validate_positive("checkpoint_cost", checkpoint_cost)
    _validate_positive("mtbf", mtbf)
    ratio = checkpoint_cost / (2.0 * mtbf)
    if ratio >= 1.0:
        return mtbf
    base = math.sqrt(2.0 * checkpoint_cost * mtbf)
    correction = 1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0
    return base * correction - checkpoint_cost


@dataclass(frozen=True)
class TimeBreakdown:
    """Where the wallclock time of a protected job goes (Tables 2-3).

    Fractions sum to 1 (up to float rounding).  ``recompute`` is the
    rework share, ``restart`` the image-reload/respawn share; the paper
    reports both separately even though Eq. 13 folds them into one
    phase — we split ``t_RR`` proportionally to its two inputs.
    """

    total_time: float
    work: float
    checkpoint: float
    recompute: float
    restart: float
    checkpoints_taken: float
    expected_failures: float

    @property
    def useful_fraction(self) -> float:
        """Alias for the work share (the headline number in Table 2)."""
        return self.work


def time_breakdown(
    base_time: float,
    delta: float,
    checkpoint_cost: float,
    failure_rate: float,
    restart_cost: float,
) -> TimeBreakdown:
    """Work / checkpoint / recompute / restart shares of ``T_total``.

    Mirrors the Sandia-study presentation the paper reprints as Tables
    2 and 3: each share is a fraction of the total wallclock time.
    """
    t_total = total_time(base_time, delta, checkpoint_cost, failure_rate, restart_cost)
    work_share = base_time / t_total
    checkpoint_share = (base_time * checkpoint_cost / delta) / t_total
    if failure_rate == 0.0:
        recompute_share = 0.0
        restart_share = 0.0
        failures = 0.0
    else:
        mtbf = 1.0 / failure_rate
        t_lw = expected_lost_work(delta, checkpoint_cost, mtbf)
        t_rr = expected_restart_rework(t_lw, restart_cost, mtbf)
        failures = t_total * failure_rate
        rr_share = failure_rate * t_rr
        phase = restart_cost + t_lw
        if phase > 0.0:
            recompute_share = rr_share * (t_lw / phase)
            restart_share = rr_share * (restart_cost / phase)
        else:
            recompute_share = 0.0
            restart_share = 0.0
    return TimeBreakdown(
        total_time=t_total,
        work=work_share,
        checkpoint=checkpoint_share,
        recompute=recompute_share,
        restart=restart_share,
        checkpoints_taken=base_time / delta,
        expected_failures=failures,
    )
