"""Per-process checkpoint images.

A process image is the serialised workload state of one rank — really
serialised, with an integrity digest, so restart *restores the actual
numbers* and tests can assert bit-identical recovery (the property BLCR
provides at the whole-address-space level).
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Any

from ..errors import CorruptImageError


@dataclass(frozen=True)
class ProcessImage:
    """A captured process state, ready for stable storage."""

    data: bytes
    crc: int

    @property
    def nbytes(self) -> int:
        """Size of the serialised image."""
        return len(self.data)


def capture_image(state: Any) -> ProcessImage:
    """Serialise ``state`` into an image (pickle + CRC)."""
    data = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    return ProcessImage(data=data, crc=zlib.crc32(data))


def restore_image(image: ProcessImage) -> Any:
    """Deserialise an image back into live state.

    Raises
    ------
    CorruptImageError
        If the image bytes fail the CRC check.
    """
    if zlib.crc32(image.data) != image.crc:
        raise CorruptImageError("process image failed its integrity check")
    return pickle.loads(image.data)


def image_from_bytes(data: bytes) -> ProcessImage:
    """Rebuild an image object from raw stored bytes."""
    return ProcessImage(data=data, crc=zlib.crc32(data))
