"""The checkpointer: the second "background process" of Section 5.

The paper's harness runs a checkpointer that computes the optimal
interval from Eqs. 15 and 10, arms a timer, and checkpoints the whole
application when it fires.  Here the timer decision is made collectively
at workload step boundaries (application-level checkpointing): every
rank contributes "is the interval up?" to a logical-OR allreduce, so
all replicas of all virtual ranks agree on *whether* call ``k``
checkpoints — the coordination itself costs messages, which is part of
the measured overhead, as in the real system.

The checkpoint path:

1. collective decision (LOR allreduce);
2. barrier + channel quiescence (bookmark coordinator);
3. capture: serialise workload state into a per-virtual-rank image;
4. persist: either timed storage writes (emergent cost) or a fixed
   pause of ``fixed_cost`` seconds (the paper's measured c = 120 s);
5. barrier + atomic commit of the new recovery line by the lead
   replica of virtual rank 0.

A failure anywhere in 1-4 leaves the previous recovery line intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import ConfigurationError
from ..mpi import ops
from .coordinator import BookmarkCoordinator
from .image import capture_image
from .restart import RestartManager
from .storage import StableStorage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.runtime import SimMPI


@dataclass(frozen=True)
class CheckpointConfig:
    """How a job checkpoints.

    Attributes
    ----------
    interval:
        Seconds between checkpoints (``delta``); the orchestrator
        usually derives it from Daly's Eq. 15 at the system MTBF.
    fixed_cost:
        If set, every checkpoint pauses the application exactly this
        long (per-rank, in parallel) and images are staged untimed —
        matching the paper's constant measured ``c``.  If ``None``, the
        cost is emergent from storage bandwidth/contention.
    bookmark_exchange:
        Run the all-to-all bookmark round before quiescing (costs one
        alltoall; the quiescence check itself is always performed).
    quiesce_poll:
        Poll period while draining channels.
    forked:
        Forked-checkpoint mode: the application resumes after
        ``fork_cost`` and the storage write proceeds in the background
        (Section 2's forked-checkpointing optimisation).  Only
        meaningful with ``fixed_cost=None``.
    fork_cost:
        Pause charged to the application in forked mode.
    """

    interval: float
    fixed_cost: Optional[float] = None
    bookmark_exchange: bool = False
    quiesce_poll: float = 1e-4
    forked: bool = False
    fork_cost: float = 0.5

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {self.interval}")
        if self.fixed_cost is not None and self.fixed_cost < 0:
            raise ConfigurationError(
                f"fixed_cost must be >= 0, got {self.fixed_cost}"
            )
        if self.quiesce_poll <= 0:
            raise ConfigurationError(
                f"quiesce_poll must be > 0, got {self.quiesce_poll}"
            )
        if self.forked and self.fixed_cost is not None:
            raise ConfigurationError("forked mode requires an emergent cost")
        if self.fork_cost < 0:
            raise ConfigurationError(f"fork_cost must be >= 0, got {self.fork_cost}")


class CheckpointService:
    """Per-attempt coordinated-checkpoint driver (shared by all ranks)."""

    def __init__(
        self,
        runtime: "SimMPI",
        storage: StableStorage,
        restart_manager: RestartManager,
        config: CheckpointConfig,
    ) -> None:
        self.runtime = runtime
        self.storage = storage
        self.restart_manager = restart_manager
        self.config = config
        self.env = runtime.env
        self._last_checkpoint = self.env.now
        self._participants = 0
        self.checkpoints_taken = 0
        self.time_in_checkpoints = 0.0
        self._coordinator = BookmarkCoordinator(runtime, config.quiesce_poll)
        self._forked_writes = {}

    # -- injector interface ---------------------------------------------------

    @property
    def cr_active(self) -> bool:
        """True while any rank is inside the checkpoint path.

        The failure injector consults this when the experiment
        suppresses failures during C/R (the paper's setup, Section 6
        observation 5).
        """
        return self._participants > 0

    # -- application interface ---------------------------------------------------

    def due(self) -> bool:
        """Has the checkpoint interval elapsed (this rank's local view)?"""
        return (self.env.now - self._last_checkpoint) >= self.config.interval

    def at_step_boundary(self, comm, workload, step: int):
        """Generator: collective decision + checkpoint if due.

        ``comm`` is the rank's (virtual) communicator, ``workload`` the
        live workload whose state would be captured, ``step`` the
        just-finished step index.  Returns True when a checkpoint was
        taken at this boundary.
        """
        verdict = yield from comm.allreduce(int(self.due()), ops.LOR)
        if not verdict:
            return False
        yield from self.take_checkpoint(comm, workload, step)
        return True

    def take_checkpoint(self, comm, workload, step: int):
        """Generator: the full coordinated-checkpoint path (steps 2-5)."""
        started = self.env.now
        self._participants += 1
        try:
            yield from comm.barrier()
            if self.config.bookmark_exchange:
                yield from self._coordinator.exchange_bookmarks(comm)
            yield from self._coordinator.quiesce()

            set_id = f"step{step + 1}"
            image = capture_image({"step": step + 1, "state": workload.state()})
            key = RestartManager.key_for(comm.rank)
            if self.config.fixed_cost is not None:
                self.storage.stage_untimed(set_id, key, image.data)
                yield self.env.timeout(self.config.fixed_cost)
            elif self.config.forked:
                # Forked checkpointing: the application resumes after the
                # fork pause; the image write drains in the background.
                yield self.env.timeout(self.config.fork_cost)
                writer = self.env.process(
                    self.storage.write(set_id, key, image.data),
                    name=f"forked-ckpt-{key}",
                )
                self._forked_writes.setdefault(set_id, []).append(writer)
            else:
                yield from self.storage.write(set_id, key, image.data)

            yield from comm.barrier()
            if self._is_committer(comm):
                self.checkpoints_taken += 1
                writers = self._forked_writes.pop(set_id, None)
                if writers:
                    # Commit only once every background write has landed;
                    # the application does not wait for this.
                    self.env.process(
                        self._commit_after(writers, set_id, step),
                        name=f"commit-{set_id}",
                    )
                else:
                    self.restart_manager.note_commit(set_id, step + 1, self.env.now)
            self._last_checkpoint = self.env.now
        finally:
            self._participants -= 1
            self.time_in_checkpoints += self.env.now - started

    def _commit_after(self, writers, set_id: str, step: int):
        """Generator: commit the set once all forked writers finish."""
        from ..simkit.events import AllOf

        yield AllOf(self.env, writers)
        self.restart_manager.note_commit(set_id, step + 1, self.env.now)

    def _is_committer(self, comm) -> bool:
        """Exactly one physical process commits: virtual 0's lead replica."""
        if comm.rank != 0:
            return False
        tracker = getattr(comm, "tracker", None)
        if tracker is None:
            return True  # plain Communicator: rank 0 is unique
        return tracker.lead_replica(0) == comm.physical_rank
