"""The checkpointer: the second "background process" of Section 5.

The paper's harness runs a checkpointer that computes the optimal
interval from Eqs. 15 and 10, arms a timer, and checkpoints the whole
application when it fires.  Here the timer decision is made collectively
at workload step boundaries (application-level checkpointing): every
rank contributes "is the interval up?" to a logical-OR allreduce, so
all replicas of all virtual ranks agree on *whether* call ``k``
checkpoints — the coordination itself costs messages, which is part of
the measured overhead, as in the real system.

The checkpoint path:

1. collective decision (LOR allreduce);
2. barrier + channel quiescence (bookmark coordinator);
3. capture: serialise workload state into a per-virtual-rank image;
4. persist: either timed storage writes (emergent cost) or a fixed
   pause of ``fixed_cost`` seconds (the paper's measured c = 120 s);
5. barrier + atomic commit of the new recovery line by the lead
   replica of virtual rank 0.

A failure anywhere in 1-4 leaves the previous recovery line intact.

Chaos hardening: when stable storage carries an active fault model,
step 4 retries an injected write failure with capped exponential
backoff (abort + re-stage of this rank's image).  If a rank exhausts
its retries, the whole set is abandoned — the ranks agree via one
extra LOR allreduce, the committer aborts the staged set, and the
interval is *skipped* and counted (graceful degradation; the next
interval checkpoints normally).  None of this machinery runs when the
fault model is absent or disabled, so the fault-free path is
time-identical to the seed's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import ConfigurationError, StorageWriteError
from ..mpi import ops
from ..obs.trace import NULL_TRACER
from .coordinator import BookmarkCoordinator
from .image import capture_image
from .restart import RestartManager
from .storage import StableStorage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.runtime import SimMPI


@dataclass(frozen=True)
class CheckpointConfig:
    """How a job checkpoints.

    Attributes
    ----------
    interval:
        Seconds between checkpoints (``delta``); the orchestrator
        usually derives it from Daly's Eq. 15 at the system MTBF.
    fixed_cost:
        If set, every checkpoint pauses the application exactly this
        long (per-rank, in parallel) and images are staged untimed —
        matching the paper's constant measured ``c``.  If ``None``, the
        cost is emergent from storage bandwidth/contention.
    bookmark_exchange:
        Run the all-to-all bookmark round before quiescing (costs one
        alltoall; the quiescence check itself is always performed).
    quiesce_poll:
        Poll period while draining channels.
    forked:
        Forked-checkpoint mode: the application resumes after
        ``fork_cost`` and the storage write proceeds in the background
        (Section 2's forked-checkpointing optimisation).  Only
        meaningful with ``fixed_cost=None``.
    fork_cost:
        Pause charged to the application in forked mode.
    max_retries:
        How many times a rank re-stages its image after an injected
        write failure before the set is abandoned (chaos layer only).
    retry_backoff:
        Initial pause before a retry; doubles per retry (capped
        exponential backoff).
    max_backoff:
        Ceiling on the retry pause.
    """

    interval: float
    fixed_cost: Optional[float] = None
    bookmark_exchange: bool = False
    quiesce_poll: float = 1e-4
    forked: bool = False
    fork_cost: float = 0.5
    max_retries: int = 2
    retry_backoff: float = 0.05
    max_backoff: float = 1.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {self.interval}")
        if self.fixed_cost is not None and self.fixed_cost < 0:
            raise ConfigurationError(
                f"fixed_cost must be >= 0, got {self.fixed_cost}"
            )
        if self.quiesce_poll <= 0:
            raise ConfigurationError(
                f"quiesce_poll must be > 0, got {self.quiesce_poll}"
            )
        if self.forked and self.fixed_cost is not None:
            raise ConfigurationError("forked mode requires an emergent cost")
        if self.fork_cost < 0:
            raise ConfigurationError(f"fork_cost must be >= 0, got {self.fork_cost}")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.max_backoff < self.retry_backoff:
            raise ConfigurationError(
                "max_backoff must be >= retry_backoff "
                f"({self.max_backoff} < {self.retry_backoff})"
            )


class CheckpointService:
    """Per-attempt coordinated-checkpoint driver (shared by all ranks)."""

    def __init__(
        self,
        runtime: "SimMPI",
        storage: StableStorage,
        restart_manager: RestartManager,
        config: CheckpointConfig,
        tracer=NULL_TRACER,
    ) -> None:
        self.runtime = runtime
        self.storage = storage
        self.restart_manager = restart_manager
        self.config = config
        self.tracer = tracer
        self.env = runtime.env
        self._last_checkpoint = self.env.now
        self._participants = 0
        self._union_started = 0.0
        self._union_span = None
        self.checkpoints_taken = 0
        self.time_in_checkpoints = 0.0
        #: Union of the per-rank checkpoint windows: the wallclock the
        #: application actually spent checkpointing.  (The per-rank
        #: windows overlap almost completely, so ``time_in_checkpoints``
        #: — their *sum* — overcounts by roughly the rank count.)
        self.checkpoint_union_time = 0.0
        #: Intervals abandoned after retry exhaustion (graceful degradation).
        self.checkpoints_skipped = 0
        #: Successful re-stages after an injected write failure.
        self.checkpoint_retries = 0
        #: Injected write failures observed (before retry).
        self.checkpoint_write_failures = 0
        self._coordinator = BookmarkCoordinator(runtime, config.quiesce_poll)
        self._forked_writes = {}
        #: Forked sets whose background write ultimately failed.
        self._failed_forked = set()

    # -- injector interface ---------------------------------------------------

    @property
    def cr_active(self) -> bool:
        """True while any rank is inside the checkpoint path.

        The failure injector consults this when the experiment
        suppresses failures during C/R (the paper's setup, Section 6
        observation 5).
        """
        return self._participants > 0

    # -- application interface ---------------------------------------------------

    def due(self) -> bool:
        """Has the checkpoint interval elapsed (this rank's local view)?"""
        return (self.env.now - self._last_checkpoint) >= self.config.interval

    def at_step_boundary(self, comm, workload, step: int):
        """Generator: collective decision + checkpoint if due.

        ``comm`` is the rank's (virtual) communicator, ``workload`` the
        live workload whose state would be captured, ``step`` the
        just-finished step index.  Returns True when a checkpoint was
        taken at this boundary.
        """
        verdict = yield from comm.allreduce(int(self.due()), ops.LOR)
        if not verdict:
            return False
        yield from self.take_checkpoint(comm, workload, step)
        return True

    def take_checkpoint(self, comm, workload, step: int):
        """Generator: the full coordinated-checkpoint path (steps 2-5)."""
        started = self.env.now
        if self._participants == 0:
            # First rank in opens the union window (and its span); the
            # last rank out closes it.  This tracks the wallclock the
            # *application* spends checkpointing, not the per-rank sum.
            self._union_started = started
            self._union_span = self.tracer.begin(
                "checkpoint", sim_time=started, step=step + 1
            )
        self._participants += 1
        try:
            yield from comm.barrier()
            if self.config.bookmark_exchange:
                yield from self._coordinator.exchange_bookmarks(comm)
            yield from self._coordinator.quiesce()

            set_id = f"step{step + 1}"
            image = capture_image({"step": step + 1, "state": workload.state()})
            key = RestartManager.key_for(comm.rank)
            chaos = self.storage.faults_active
            rank_failed = False
            if self.config.fixed_cost is not None:
                if chaos:
                    rank_failed = yield from self._persist_with_retry(
                        set_id, key, image, timed=False
                    )
                else:
                    self.storage.stage_untimed(set_id, key, image.data)
                    yield self.env.timeout(self.config.fixed_cost)
            elif self.config.forked:
                # Forked checkpointing: the application resumes after the
                # fork pause; the image write drains in the background.
                yield self.env.timeout(self.config.fork_cost)
                writer_body = (
                    self._guarded_forked_write(set_id, key, image.data)
                    if chaos
                    else self.storage.write(set_id, key, image.data)
                )
                writer = self.env.process(writer_body, name=f"forked-ckpt-{key}")
                self._forked_writes.setdefault(set_id, []).append(writer)
            else:
                if chaos:
                    rank_failed = yield from self._persist_with_retry(
                        set_id, key, image, timed=True
                    )
                else:
                    yield from self.storage.write(set_id, key, image.data)

            if chaos:
                # One extra LOR round: every rank must agree the set is
                # complete before anyone commits it.  Only runs under an
                # active fault model, so the fault-free path keeps the
                # seed's exact message count and timing.
                set_failed = bool(
                    (yield from comm.allreduce(int(rank_failed), ops.LOR))
                )
            else:
                set_failed = False

            yield from comm.barrier()
            if self._is_committer(comm):
                if set_failed:
                    # Graceful degradation: abandon the partial set and
                    # skip this interval; the previous recovery line
                    # stays intact and the next interval retries.
                    self.checkpoints_skipped += 1
                    self.tracer.event(
                        "checkpoint_skipped", sim_time=self.env.now, set=set_id
                    )
                    self.storage.abort_set(set_id)
                else:
                    self.checkpoints_taken += 1
                    writers = self._forked_writes.pop(set_id, None)
                    if writers:
                        # Commit only once every background write has landed;
                        # the application does not wait for this.
                        self.env.process(
                            self._commit_after(writers, set_id, step),
                            name=f"commit-{set_id}",
                        )
                    else:
                        self.restart_manager.note_commit(set_id, step + 1, self.env.now)
            self._last_checkpoint = self.env.now
        finally:
            self._participants -= 1
            self.time_in_checkpoints += self.env.now - started
            if self._participants == 0:
                self.checkpoint_union_time += self.env.now - self._union_started
                if self._union_span is not None:
                    self._union_span.end(sim_time=self.env.now)
                    self._union_span = None

    def _persist_with_retry(self, set_id: str, key: str, image, timed: bool):
        """Generator: persist one rank's image, retrying injected failures.

        Re-stages this rank's blob with capped exponential backoff; a
        write under the same (set, key) simply replaces the staged
        blob, so no explicit per-key abort is needed.  Returns ``True``
        when the rank exhausted its retries — the caller then abandons
        the whole set via the collective verdict + ``abort_set``.
        """
        cfg = self.config
        backoff = cfg.retry_backoff
        for attempt in range(cfg.max_retries + 1):
            persisted = True
            if timed:
                try:
                    yield from self.storage.write(set_id, key, image.data)
                except StorageWriteError:
                    persisted = False
                    self.checkpoint_write_failures += 1
            else:
                try:
                    self.storage.stage_untimed(set_id, key, image.data)
                except StorageWriteError:
                    persisted = False
                    self.checkpoint_write_failures += 1
                # The pause is paid either way: the failure surfaces at
                # the end of the write, not before it starts.
                yield self.env.timeout(cfg.fixed_cost)
            if persisted:
                return False
            self.tracer.event(
                "checkpoint_write_failure",
                sim_time=self.env.now,
                set=set_id,
                key=key,
                attempt=attempt,
            )
            if attempt >= cfg.max_retries:
                return True
            self.checkpoint_retries += 1
            self.tracer.event(
                "checkpoint_retry",
                sim_time=self.env.now,
                set=set_id,
                key=key,
                backoff=backoff,
            )
            if backoff > 0.0:
                yield self.env.timeout(backoff)
            backoff = min(backoff * 2.0, cfg.max_backoff)
        return True  # pragma: no cover - loop always returns earlier

    def _guarded_forked_write(self, set_id: str, key: str, data: bytes):
        """Generator: background forked write with the same retry policy.

        A background writer that raised would tear down the simulation;
        instead exhaustion marks the set failed so :meth:`_commit_after`
        abandons it.
        """
        cfg = self.config
        backoff = cfg.retry_backoff
        for attempt in range(cfg.max_retries + 1):
            try:
                yield from self.storage.write(set_id, key, data)
                return
            except StorageWriteError:
                self.checkpoint_write_failures += 1
                self.tracer.event(
                    "checkpoint_write_failure",
                    sim_time=self.env.now,
                    set=set_id,
                    key=key,
                    attempt=attempt,
                    forked=True,
                )
                if attempt >= cfg.max_retries:
                    self._failed_forked.add(set_id)
                    return
                self.checkpoint_retries += 1
                if backoff > 0.0:
                    yield self.env.timeout(backoff)
                backoff = min(backoff * 2.0, cfg.max_backoff)

    def _commit_after(self, writers, set_id: str, step: int):
        """Generator: commit the set once all forked writers finish."""
        from ..simkit.events import AllOf

        yield AllOf(self.env, writers)
        if set_id in self._failed_forked:
            # At least one background writer exhausted its retries:
            # abandon the set; the previous recovery line stands.
            self._failed_forked.discard(set_id)
            self.checkpoints_skipped += 1
            self.tracer.event(
                "checkpoint_skipped", sim_time=self.env.now, set=set_id, forked=True
            )
            self.storage.abort_set(set_id)
            return
        self.restart_manager.note_commit(set_id, step + 1, self.env.now)

    def _is_committer(self, comm) -> bool:
        """Exactly one physical process commits: virtual 0's lead replica."""
        if comm.rank != 0:
            return False
        tracker = getattr(comm, "tracker", None)
        if tracker is None:
            return True  # plain Communicator: rank 0 is unique
        return tracker.lead_replica(0) == comm.physical_rank
