"""checkpoint — coordinated checkpoint/restart on simulated stable storage.

The BLCR + OpenMPI stack of the paper's experiments, rebuilt for the
simulator:

* :mod:`storage` — stable storage with bandwidth/latency and channel
  contention, two-phase (staged → committed) image sets so a failure
  mid-checkpoint can never corrupt the recovery line;
* :mod:`image` — per-process images: real serialised workload state
  with integrity digests (restart actually restores the numbers);
* :mod:`coordinator` — the OpenMPI-style all-to-all bookmark protocol:
  quiesce every channel (sent == delivered) before capturing;
* :mod:`chandy_lamport` — the classic marker-based distributed
  snapshot, as an alternative coordination protocol;
* :mod:`service` — the checkpointer "background process" of Section 5:
  a Daly-interval timer plus the cooperative capture path application
  ranks call at step boundaries;
* :mod:`restart` — the recovery lines: roll back to the newest
  committed set, verify integrity, fall back line by line to older
  retained sets when images are corrupt, count rework;
* :mod:`incremental` — incremental / forked / compressed checkpointing
  variants (the Section 2 optimisation taxonomy), for ablations.
"""

from .storage import StableStorage, StoredBlob
from .image import ProcessImage, capture_image, restore_image
from .coordinator import BookmarkCoordinator
from .service import CheckpointConfig, CheckpointService
from .restart import RecoveryLine, RestartManager

__all__ = [
    "BookmarkCoordinator",
    "CheckpointConfig",
    "CheckpointService",
    "ProcessImage",
    "RecoveryLine",
    "RestartManager",
    "StableStorage",
    "StoredBlob",
    "capture_image",
    "restore_image",
]
