"""Channel quiescence: the OpenMPI-style bookmark protocol.

Before per-process images are captured, the state of every
communication channel must be consistent — no message may be "in the
wire", or the restored run would either duplicate or lose it.  OpenMPI
(the paper's substrate) does this with an all-to-all *bookmark
exchange*: processes trade per-peer send/receive totals and wait until
they equalise.

In the simulator the runtime already tracks per-(src, dst) sent and
arrived counts, so the coordinator's job is (a) the bookmark exchange
itself — an all-to-all of small messages whose cost is charged to the
run — and (b) polling until the totals equalise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.runtime import SimMPI


class BookmarkCoordinator:
    """Quiesce the runtime's channels before a checkpoint."""

    def __init__(self, runtime: "SimMPI", poll_interval: float = 1e-4) -> None:
        if poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be > 0, got {poll_interval}"
            )
        self.runtime = runtime
        self.poll_interval = poll_interval
        self.rounds_waited = 0

    def exchange_bookmarks(self, comm):
        """Generator: one all-to-all round of bookmark tokens.

        Models the *cost* of OpenMPI's PML-level totals exchange: one
        small fixed-size record (8 bytes per peer) to every peer.  The
        payload is an opaque token rather than the live counters — the
        simulator's ground-truth counters answer the actual quiescence
        question in :meth:`quiesce`, and live counters would differ
        between replicas of one virtual rank (they snapshot at
        different instants), which must not trip replica voting.
        """
        token = bytes(8 * comm.size)
        totals = yield from comm.alltoall([token] * comm.size)
        return totals

    def quiesce(self):
        """Generator: wait until every sent message has been delivered."""
        while not self.runtime.channels_quiet():
            self.rounds_waited += 1
            yield self.runtime.env.timeout(self.poll_interval)
