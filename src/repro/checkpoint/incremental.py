"""Checkpoint-size optimisations (the Section 2 taxonomy), for ablations.

Three of the classic techniques the paper's background section surveys:

* **Incremental checkpointing** — persist only the state entries that
  changed since the previous checkpoint (hardware dirty bits in real
  systems; content digests here), with periodic full images bounding
  the restore chain;
* **Checkpoint compression** — shrink the image before writing at a
  modeled CPU cost;
* **Memory exclusion** — let the workload mark state keys that can be
  recomputed and need not be persisted.

These compose with :class:`~repro.checkpoint.storage.StableStorage`
directly; the ablation benchmark compares their bytes-written and
time-paused against plain full-image checkpointing.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import CheckpointError, ConfigurationError


def _digest(value: Any) -> int:
    return zlib.crc32(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


@dataclass(frozen=True)
class DeltaImage:
    """One incremental capture: changed entries + what it was based on."""

    #: Serialised {key: value} of changed entries only.
    data: bytes
    #: Sequence number; 0 means a full image.
    generation: int

    @property
    def nbytes(self) -> int:
        """Size of the serialised delta."""
        return len(self.data)

    @property
    def is_full(self) -> bool:
        """True for a full (chain-base) image."""
        return self.generation == 0


class IncrementalCheckpointer:
    """Dirty-entry tracking over dict-shaped workload states.

    >>> inc = IncrementalCheckpointer(full_every=4)
    >>> first = inc.capture({"x": 1, "y": 2})
    >>> first.is_full
    True
    >>> second = inc.capture({"x": 1, "y": 3})
    >>> second.is_full, second.nbytes < first.nbytes
    (False, True)
    """

    def __init__(self, full_every: int = 8, excluded: Iterable[str] = ()) -> None:
        if full_every < 1:
            raise ConfigurationError(f"full_every must be >= 1, got {full_every}")
        self.full_every = full_every
        self.excluded = frozenset(excluded)
        self._digests: Dict[str, int] = {}
        self._since_full = 0
        self._chain: List[DeltaImage] = []

    def capture(self, state: Dict[str, Any]) -> DeltaImage:
        """Capture a delta (or a full image when the chain is due)."""
        if not isinstance(state, dict):
            raise CheckpointError("incremental checkpointing needs dict states")
        persistable = {
            key: value for key, value in state.items() if key not in self.excluded
        }
        full_due = self._since_full % self.full_every == 0 or not self._chain
        if full_due:
            changed = persistable
            generation = 0
            self._chain = []
        else:
            changed = {
                key: value
                for key, value in persistable.items()
                if self._digests.get(key) != _digest(value)
            }
            # Deleted keys are recorded as tombstones.
            for key in self._digests:
                if key not in persistable:
                    changed[key] = _Tombstone()
            generation = len(self._chain)
        self._digests = {key: _digest(value) for key, value in persistable.items()}
        self._since_full += 1
        image = DeltaImage(
            data=pickle.dumps(changed, protocol=pickle.HIGHEST_PROTOCOL),
            generation=generation,
        )
        self._chain.append(image)
        return image

    def restore(self, chain: Optional[List[DeltaImage]] = None) -> Dict[str, Any]:
        """Replay a chain (default: the internal one) into a full state."""
        chain = self._chain if chain is None else chain
        if not chain or not chain[0].is_full:
            raise CheckpointError("restore chain must start with a full image")
        state: Dict[str, Any] = {}
        for image in chain:
            delta = pickle.loads(image.data)
            for key, value in delta.items():
                if isinstance(value, _Tombstone):
                    state.pop(key, None)
                else:
                    state[key] = value
        return state

    @property
    def chain_length(self) -> int:
        """Images needed for a restore right now."""
        return len(self._chain)


class _Tombstone:
    """Marks a deleted state entry inside a delta."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Tombstone)

    def __hash__(self) -> int:
        return 0


def compress_image(data: bytes, level: int = 6, cpu_bytes_per_second: float = 400e6) -> Tuple[bytes, float]:
    """Compress image bytes; returns ``(compressed, cpu_seconds)``.

    The CPU cost model charges the compression time that offsets the
    I/O saving — the classic trade-off of checkpoint compression.
    """
    if not 0 <= level <= 9:
        raise ConfigurationError(f"zlib level must be in [0, 9], got {level}")
    if cpu_bytes_per_second <= 0:
        raise ConfigurationError("cpu_bytes_per_second must be > 0")
    compressed = zlib.compress(data, level)
    return compressed, len(data) / cpu_bytes_per_second


def decompress_image(data: bytes) -> bytes:
    """Inverse of :func:`compress_image` (restart path)."""
    return zlib.decompress(data)
