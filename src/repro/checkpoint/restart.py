"""The recovery line: what restart rolls back to.

Tracks the most recent *committed* checkpoint set and rebuilds the
per-virtual-rank workload states from stable storage.  Two read paths:

* :meth:`read_state` — timed (charges storage I/O), used when the job
  is configured with an emergent restart cost;
* :meth:`peek_states` — untimed, used when the experiment charges a
  fixed measured restart cost ``R`` (the paper measured R ≈ 500 s and
  the model takes it as a parameter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from ..errors import NoCheckpointError
from .image import image_from_bytes, restore_image
from .storage import StableStorage


@dataclass(frozen=True)
class RecoveryLine:
    """Identity of the committed checkpoint to restart from."""

    set_id: str
    #: First step that still has to be (re)executed.
    step: int
    committed_at: float


class RestartManager:
    """Bookkeeping around the latest committed checkpoint."""

    def __init__(self, storage: StableStorage) -> None:
        self.storage = storage
        self._line: Optional[RecoveryLine] = None
        self.commits = 0
        self.rollbacks = 0
        #: Every recovery line ever committed, in order (job timeline).
        self.history: list = []

    # -- commit side --------------------------------------------------------

    def note_commit(self, set_id: str, step: int, now: float) -> None:
        """Record that ``set_id`` (state after ``step-1``) is committed."""
        self.storage.commit_set(set_id)
        self._line = RecoveryLine(set_id=set_id, step=step, committed_at=now)
        self.history.append(self._line)
        self.commits += 1

    # -- restart side ---------------------------------------------------------

    @property
    def has_checkpoint(self) -> bool:
        """True once at least one set has been committed."""
        return self._line is not None

    @property
    def line(self) -> RecoveryLine:
        """The current recovery line.

        Raises
        ------
        NoCheckpointError
            Before the first commit (restart means re-running from
            scratch in that case; callers decide).
        """
        if self._line is None:
            raise NoCheckpointError("no committed checkpoint set")
        return self._line

    def note_rollback(self) -> None:
        """Count a rollback (diagnostics for the job report)."""
        self.rollbacks += 1

    @staticmethod
    def key_for(virtual_rank: int) -> str:
        """Storage key of a virtual rank's image."""
        return f"v{virtual_rank}"

    def read_state(self, virtual_rank: int):
        """Generator: timed read + deserialise of one rank's image."""
        data = yield from self.storage.read(self.key_for(virtual_rank))
        return restore_image(image_from_bytes(data))

    def peek_states(self, virtual_ranks: Sequence[int]) -> Dict[int, Any]:
        """Untimed bulk restore (fixed-R experiments)."""
        states: Dict[int, Any] = {}
        for rank in virtual_ranks:
            blob = self.storage.peek(self.key_for(rank))
            blob.verify()
            states[rank] = restore_image(image_from_bytes(blob.data))
        return states
