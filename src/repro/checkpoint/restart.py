"""The recovery line: what restart rolls back to.

Tracks the *committed* checkpoint sets and rebuilds the per-virtual-rank
workload states from stable storage.  Read paths:

* :meth:`read_state` — timed (charges storage I/O), used when the job
  is configured with an emergent restart cost;
* :meth:`peek_states` — untimed, used when the experiment charges a
  fixed measured restart cost ``R`` (the paper measured R ≈ 500 s and
  the model takes it as a parameter);
* :meth:`restore_states` — the chaos-hardened restore: verifies every
  image's CRC and falls back line by line to older retained sets when
  the newer ones are corrupt or unreadable, charging the extra rework
  to the job (it restarts from an older step).  Only when every
  retained line is bad does it raise :class:`NoCheckpointError` — the
  caller then cold-starts from step 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import CorruptImageError, NoCheckpointError, StorageReadError
from ..obs.trace import NULL_TRACER
from .image import image_from_bytes, restore_image
from .storage import StableStorage


@dataclass(frozen=True)
class RecoveryLine:
    """Identity of a committed checkpoint to restart from."""

    set_id: str
    #: First step that still has to be (re)executed.
    step: int
    committed_at: float


class RestartManager:
    """Bookkeeping around the committed checkpoint lines."""

    def __init__(self, storage: StableStorage, tracer=NULL_TRACER) -> None:
        self.storage = storage
        self.tracer = tracer
        self._line: Optional[RecoveryLine] = None
        self.commits = 0
        self.rollbacks = 0
        #: Every recovery line ever committed, in order (job timeline).
        self.history: list = []
        #: Recovery lines skipped because an image failed its CRC.
        self.corrupt_lines_skipped = 0
        #: Recovery lines skipped because storage refused a read.
        self.unreadable_lines_skipped = 0
        #: Depth of the line used by the most recent restore (1 = newest).
        self.last_rollback_depth = 0
        #: Deepest fallback any restore needed so far.
        self.max_rollback_depth = 0

    # -- commit side --------------------------------------------------------

    def note_commit(self, set_id: str, step: int, now: float) -> None:
        """Record that ``set_id`` (state after ``step-1``) is committed."""
        self.storage.commit_set(set_id)
        self._line = RecoveryLine(set_id=set_id, step=step, committed_at=now)
        self.history.append(self._line)
        self.commits += 1

    # -- restart side ---------------------------------------------------------

    @property
    def has_checkpoint(self) -> bool:
        """True once at least one set has been committed."""
        return self._line is not None

    @property
    def line(self) -> RecoveryLine:
        """The current recovery line.

        After a fallback restore this is the (older) line actually
        used, so rework accounting sees the true rollback target.

        Raises
        ------
        NoCheckpointError
            Before the first commit (restart means re-running from
            scratch in that case; callers decide).
        """
        if self._line is None:
            raise NoCheckpointError("no committed checkpoint set")
        return self._line

    def note_rollback(self) -> None:
        """Count a rollback (diagnostics for the job report)."""
        self.rollbacks += 1

    @staticmethod
    def key_for(virtual_rank: int) -> str:
        """Storage key of a virtual rank's image."""
        return f"v{virtual_rank}"

    def read_state(self, virtual_rank: int):
        """Generator: timed read + deserialise of one rank's image."""
        data = yield from self.storage.read(self.key_for(virtual_rank))
        return restore_image(image_from_bytes(data))

    def peek_states(self, virtual_ranks: Sequence[int]) -> Dict[int, Any]:
        """Untimed bulk restore from the newest line (fixed-R experiments)."""
        states: Dict[int, Any] = {}
        for rank in virtual_ranks:
            blob = self.storage.peek(self.key_for(rank))
            blob.verify()
            states[rank] = restore_image(image_from_bytes(blob.data))
        return states

    # -- chaos-hardened restore ---------------------------------------------

    def retained_lines(self) -> List[RecoveryLine]:
        """Committed lines whose sets storage still retains, newest first."""
        retained = set(self.storage.committed_sets())
        return [line for line in reversed(self.history) if line.set_id in retained]

    def restore_states(
        self, virtual_ranks: Sequence[int]
    ) -> Tuple[RecoveryLine, Dict[int, Any]]:
        """Restore every rank, falling back across retained lines.

        Tries the newest retained line first; a corrupt image
        (CRC mismatch) or an injected read failure condemns the whole
        line — a partial restore would mix steps — and the next older
        line is tried.  Returns the line actually used plus the
        restored images.

        Raises
        ------
        NoCheckpointError
            When no line was ever committed or every retained line is
            unusable (the job must cold-start from step 0).
        """
        ranks = list(virtual_ranks)
        candidates = self.retained_lines()
        if not candidates:
            raise NoCheckpointError("no committed checkpoint set")
        for depth, line in enumerate(candidates, start=1):
            try:
                states: Dict[int, Any] = {}
                for rank in ranks:
                    blob = self.storage.fetch(line.set_id, self.key_for(rank))
                    blob.verify()
                    states[rank] = restore_image(image_from_bytes(blob.data))
            except CorruptImageError:
                self.corrupt_lines_skipped += 1
                self.tracer.event(
                    "recovery_line_corrupt",
                    sim_time=self.storage.env.now,
                    set=line.set_id,
                    depth=depth,
                )
                continue
            except (StorageReadError, NoCheckpointError):
                self.unreadable_lines_skipped += 1
                self.tracer.event(
                    "recovery_line_unreadable",
                    sim_time=self.storage.env.now,
                    set=line.set_id,
                    depth=depth,
                )
                continue
            self.last_rollback_depth = depth
            self.max_rollback_depth = max(self.max_rollback_depth, depth)
            self._line = line
            if depth > 1:
                self.tracer.event(
                    "recovery_fallback_used",
                    sim_time=self.storage.env.now,
                    set=line.set_id,
                    depth=depth,
                )
            return line, states
        raise NoCheckpointError(
            f"all {len(candidates)} retained recovery line(s) are corrupt "
            "or unreadable"
        )
