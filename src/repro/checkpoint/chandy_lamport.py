"""Chandy-Lamport distributed snapshots (the classic coordination protocol).

The paper's background (Section 2) describes two checkpoint
coordination protocols: OpenMPI's bookmark exchange (implemented in
:mod:`repro.checkpoint.coordinator`) and the Chandy-Lamport marker
algorithm.  This module implements the latter faithfully over the
simulated MPI: markers travel *in-band* on the application's channels
(preserving FIFO order relative to application messages), each process
records its state on the first marker, and per-channel in-flight
messages are recorded until the channel's marker arrives.

Usage: the application routes its channel traffic through a
:class:`ChandyLamport` wrapper so markers can be intercepted::

    snap = ChandyLamport(comm, app_tag=5,
                         in_channels=[left], out_channels=[right],
                         get_state=lambda: dict(my_state))
    yield from snap.send(payload, right)       # instead of comm.send
    payload = yield from snap.recv(left)       # instead of comm.recv
    yield from snap.initiate()                 # on the initiator

After :meth:`complete` turns True on every rank, ``snap.recorded_state``
and ``snap.channel_messages`` form a consistent global snapshot — the
test suite checks the token-conservation invariant across them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from ..errors import CoordinationError


class _Marker:
    """The in-band snapshot marker (compares equal to itself only)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<CL-marker>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Marker)

    def __hash__(self) -> int:
        return hash("chandy-lamport-marker")


MARKER = _Marker()


class ChandyLamport:
    """Marker-based snapshot over one application tag of a communicator."""

    def __init__(
        self,
        comm,
        app_tag: int,
        in_channels: Iterable[int],
        out_channels: Iterable[int],
        get_state: Callable[[], Any],
    ) -> None:
        self.comm = comm
        self.app_tag = app_tag
        self.in_channels = list(in_channels)
        self.out_channels = list(out_channels)
        self.get_state = get_state
        self.recorded_state: Optional[Any] = None
        #: Messages caught in flight, per incoming channel.
        self.channel_messages: Dict[int, List[Any]] = {}
        self._recording: Dict[int, bool] = {}
        self._marker_seen: Dict[int, bool] = {source: False for source in self.in_channels}

    # -- wrapped traffic ------------------------------------------------------

    def send(self, payload: Any, dest: int):
        """Generator: application send through the snapshot layer."""
        if isinstance(payload, _Marker):
            raise CoordinationError("application payloads may not be markers")
        yield from self.comm.send(payload, dest, self.app_tag)

    def recv(self, source: int):
        """Generator: application receive, intercepting markers."""
        if source not in self._marker_seen:
            raise CoordinationError(f"{source} is not a declared in-channel")
        while True:
            payload, _status = yield from self.comm.recv(source, self.app_tag)
            if isinstance(payload, _Marker):
                yield from self._on_marker(source)
                continue
            if self.recorded_state is not None and not self._marker_seen[source]:
                # In-flight relative to the cut: belongs to the channel.
                self.channel_messages.setdefault(source, []).append(payload)
            return payload

    # -- protocol ---------------------------------------------------------------

    def initiate(self):
        """Generator: spontaneously start the snapshot (the initiator)."""
        yield from self._record_and_flood()

    def _on_marker(self, source: int):
        if self._marker_seen[source]:
            raise CoordinationError(f"duplicate marker on channel {source}")
        first = self.recorded_state is None
        if first:
            yield from self._record_and_flood()
        self._marker_seen[source] = True

    def _record_and_flood(self):
        if self.recorded_state is not None:
            return
        self.recorded_state = self.get_state()
        for dest in self.out_channels:
            yield from self.comm.send(MARKER, dest, self.app_tag)

    @property
    def complete(self) -> bool:
        """True once state is recorded and all in-channel markers arrived."""
        return self.recorded_state is not None and all(self._marker_seen.values())

    def drain(self, source: int):
        """Generator: consume messages until this channel's marker arrives.

        Used at the end of an application phase to finish a snapshot on
        channels that carry no further application traffic.
        """
        while not self._marker_seen[source]:
            payload, _status = yield from self.comm.recv(source, self.app_tag)
            if isinstance(payload, _Marker):
                yield from self._on_marker(source)
            elif self.recorded_state is not None:
                self.channel_messages.setdefault(source, []).append(payload)
