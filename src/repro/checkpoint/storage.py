"""Stable storage: the durability abstraction checkpoints write to.

Models a parallel file system with finite aggregate bandwidth, fixed
per-operation latency and a limited number of concurrent I/O channels
(writes queue when all channels are busy — this is how checkpoint cost
grows with the number of simultaneously-writing processes, one of the
scale effects behind Table 2's exploding checkpoint share).

Write sets are two-phase: images are *staged* under a set id and become
the newest recovery line only at :meth:`commit_set`.  A crash between
staging and commit leaves the previous committed set intact.

Two hardening layers on top of the seed's model:

* **Versioned recovery lines** — the last ``keep_sets`` committed sets
  are retained (newest last) instead of overwritten, so restart can
  fall back line by line when the newest images turn out corrupt.
* **Fault injection** — an optional
  :class:`~repro.faults.storage_faults.StorageFaultModel` decides, per
  operation, whether a write fails (:class:`StorageWriteError`), a read
  fails (:class:`StorageReadError`), a blob is silently damaged at rest
  (surfaces as :class:`CorruptImageError` on verification) or the
  operation pays a latency spike.  With no model — or a model whose
  probabilities are all zero — every path below is byte- and
  time-identical to the unhardened storage.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import (
    CheckpointError,
    ConfigurationError,
    CorruptImageError,
    NoCheckpointError,
    StorageReadError,
    StorageWriteError,
)
from ..faults.storage_faults import StorageFaultModel
from ..simkit import Environment, Resource


@dataclass
class StoredBlob:
    """One durable object: payload bytes plus an integrity digest."""

    key: str
    data: bytes
    crc: int
    written_at: float

    def verify(self) -> None:
        """Raise :class:`CorruptImageError` if the payload was damaged."""
        if zlib.crc32(self.data) != self.crc:
            raise CorruptImageError(f"blob {self.key!r} failed its integrity check")


class StableStorage:
    """Bandwidth/latency/contention model plus a versioned blob store.

    Parameters
    ----------
    env:
        Simulation environment.
    write_bandwidth / read_bandwidth:
        Aggregate bytes per second per channel.
    latency:
        Fixed seconds per operation (metadata round trip).
    channels:
        Concurrent I/O streams; further operations queue FIFO.
    faults:
        Optional storage fault model (chaos layer).  ``None`` — or a
        model with all probabilities zero — makes every operation
        behave exactly as the fault-free storage.
    keep_sets:
        How many committed sets to retain as fallback recovery lines.
    """

    def __init__(
        self,
        env: Environment,
        write_bandwidth: float = 1e9,
        read_bandwidth: float = 2e9,
        latency: float = 1e-3,
        channels: int = 8,
        faults: Optional[StorageFaultModel] = None,
        keep_sets: int = 3,
    ) -> None:
        if write_bandwidth <= 0 or read_bandwidth <= 0:
            raise ConfigurationError("bandwidths must be > 0")
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency}")
        if keep_sets < 1:
            raise ConfigurationError(f"keep_sets must be >= 1, got {keep_sets}")
        self.env = env
        self.write_bandwidth = write_bandwidth
        self.read_bandwidth = read_bandwidth
        self.latency = latency
        self.keep_sets = keep_sets
        self.faults = faults
        self._channels = Resource(env, capacity=channels)
        self._staged: Dict[str, Dict[str, StoredBlob]] = {}
        #: Committed sets, oldest first, newest last; bounded by keep_sets.
        self._history: List[Tuple[str, Dict[str, StoredBlob]]] = []
        self.bytes_written = 0
        self.bytes_read = 0

    # -- fault plumbing -----------------------------------------------------

    @property
    def faults_active(self) -> bool:
        """True when the chaos layer can actually inject something."""
        return self.faults is not None and self.faults.enabled

    def _store(self, set_id: str, key: str, data: bytes) -> None:
        """Stage a blob, applying write-fault decisions (if any)."""
        crc = zlib.crc32(data)
        if self.faults_active:
            verdict = self.faults.on_write()
            if verdict.fail:
                raise StorageWriteError(
                    f"write of blob {key!r} in set {set_id!r} failed"
                )
            if verdict.corrupt:
                # At-rest corruption: the payload is damaged but the
                # recorded CRC keeps the pristine value — the rot is
                # silent until read-back verification.
                data = self.faults.damage(data)
        blob = StoredBlob(key=key, data=data, crc=crc, written_at=self.env.now)
        self._staged.setdefault(set_id, {})[key] = blob
        self.bytes_written += len(data)

    # -- timed operations ---------------------------------------------------

    def write(self, set_id: str, key: str, data: bytes):
        """Generator: stage ``data`` under (set_id, key), charging I/O time.

        With a fault model attached, a latency spike extends the
        transfer and a write failure raises :class:`StorageWriteError`
        *after* the I/O time is charged (the writer discovers the
        failure at the end of the transfer, as with a failed fsync).
        """
        grant = self._channels.request()
        yield grant
        try:
            yield self.env.timeout(self.latency + len(data) / self.write_bandwidth)
            if self.faults_active:
                verdict = self.faults.on_write()
                if verdict.extra_latency > 0.0:
                    yield self.env.timeout(verdict.extra_latency)
                if verdict.fail:
                    raise StorageWriteError(
                        f"write of blob {key!r} in set {set_id!r} failed"
                    )
                payload = (
                    self.faults.damage(data) if verdict.corrupt else data
                )
                blob = StoredBlob(
                    key=key,
                    data=payload,
                    crc=zlib.crc32(data),
                    written_at=self.env.now,
                )
            else:
                blob = StoredBlob(
                    key=key, data=data, crc=zlib.crc32(data), written_at=self.env.now
                )
            self._staged.setdefault(set_id, {})[key] = blob
            self.bytes_written += len(data)
        finally:
            self._channels.release()

    def stage_untimed(self, set_id: str, key: str, data: bytes) -> None:
        """Stage a blob without charging I/O time.

        Used when the experiment charges a *fixed* checkpoint cost
        (the paper's measured c = 120 s) instead of the emergent
        storage time, but the images must still exist for restart.
        Fault decisions (write failure, at-rest corruption) still
        apply; latency spikes do not — the path is untimed.
        """
        self._store(set_id, key, data)

    def read(self, key: str):
        """Generator: read a blob from the newest committed set, charging I/O time."""
        return (yield from self.read_from(self.committed_set, key))

    def read_from(self, set_id: Optional[str], key: str):
        """Generator: timed read of ``key`` from a specific committed set.

        With a fault model attached, a latency spike extends the
        transfer and a read failure raises :class:`StorageReadError`.
        Integrity is always verified — at-rest corruption surfaces here
        as :class:`CorruptImageError`.
        """
        blob = self._committed_blob(set_id, key)
        grant = self._channels.request()
        yield grant
        try:
            yield self.env.timeout(self.latency + len(blob.data) / self.read_bandwidth)
            if self.faults_active:
                verdict = self.faults.on_read()
                if verdict.extra_latency > 0.0:
                    yield self.env.timeout(verdict.extra_latency)
                if verdict.fail:
                    raise StorageReadError(
                        f"read of blob {key!r} from set {set_id!r} failed"
                    )
            self.bytes_read += len(blob.data)
        finally:
            self._channels.release()
        blob.verify()
        return blob.data

    # -- set lifecycle ------------------------------------------------------

    def commit_set(self, set_id: str) -> None:
        """Atomically promote a staged set to the newest recovery line.

        Older committed sets are retained (up to ``keep_sets``) as
        fallback lines for restart.
        """
        staged = self._staged.pop(set_id, None)
        if not staged:
            raise CheckpointError(f"no staged blobs under set {set_id!r}")
        self._history.append((set_id, staged))
        while len(self._history) > self.keep_sets:
            self._history.pop(0)

    def abort_set(self, set_id: str) -> None:
        """Discard a staged set (failure mid-checkpoint)."""
        self._staged.pop(set_id, None)

    @property
    def committed_set(self) -> Optional[str]:
        """Id of the newest recovery line (None before first commit)."""
        if not self._history:
            return None
        return self._history[-1][0]

    def committed_sets(self) -> List[str]:
        """Ids of every retained recovery line, newest first."""
        return [set_id for set_id, _ in reversed(self._history)]

    def committed_keys(self, set_id: Optional[str] = None) -> List[str]:
        """Keys available in a committed set (default: the newest)."""
        return sorted(self._set_blobs(set_id))

    # -- untimed access -----------------------------------------------------

    def peek(self, key: str) -> StoredBlob:
        """Direct (untimed, fault-free) access to a newest-set blob."""
        return self._committed_blob(None, key)

    def fetch(self, set_id: Optional[str], key: str) -> StoredBlob:
        """Untimed but fault-*aware* access to a committed blob.

        The fixed-cost restart path (the paper's measured R) uses this:
        the I/O time is charged as a lump sum elsewhere, but the fault
        model still decides whether the read succeeds.  Raises
        :class:`StorageReadError` on an injected read failure; callers
        verify the returned blob's integrity themselves.
        """
        blob = self._committed_blob(set_id, key)
        if self.faults_active and self.faults.on_read().fail:
            raise StorageReadError(
                f"read of blob {key!r} from set {set_id!r} failed"
            )
        return blob

    def corrupt(self, key: str, set_id: Optional[str] = None) -> None:
        """Flip a byte of a committed blob — failure-injection test hook."""
        blob = self._committed_blob(set_id, key)
        if not blob.data:
            raise CheckpointError(f"blob {key!r} is empty; nothing to corrupt")
        damaged = bytearray(blob.data)
        damaged[0] ^= 0xFF
        blob.data = bytes(damaged)

    # -- internals ----------------------------------------------------------

    def _set_blobs(self, set_id: Optional[str]) -> Dict[str, StoredBlob]:
        """The blob mapping of a retained set (default: the newest)."""
        if not self._history:
            if set_id is None:
                return {}
            raise NoCheckpointError(f"no committed set {set_id!r}")
        if set_id is None:
            return self._history[-1][1]
        for candidate, blobs in reversed(self._history):
            if candidate == set_id:
                return blobs
        raise NoCheckpointError(f"no committed set {set_id!r}")

    def _committed_blob(self, set_id: Optional[str], key: str) -> StoredBlob:
        blob = self._set_blobs(set_id).get(key)
        if blob is None:
            raise NoCheckpointError(f"no committed blob {key!r}")
        return blob
