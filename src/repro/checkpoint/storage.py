"""Stable storage: the durability abstraction checkpoints write to.

Models a parallel file system with finite aggregate bandwidth, fixed
per-operation latency and a limited number of concurrent I/O channels
(writes queue when all channels are busy — this is how checkpoint cost
grows with the number of simultaneously-writing processes, one of the
scale effects behind Table 2's exploding checkpoint share).

Write sets are two-phase: images are *staged* under a set id and become
the recovery line only at :meth:`commit_set`.  A crash between staging
and commit leaves the previous committed set intact.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import CheckpointError, ConfigurationError, CorruptImageError, NoCheckpointError
from ..simkit import Environment, Resource


@dataclass
class StoredBlob:
    """One durable object: payload bytes plus an integrity digest."""

    key: str
    data: bytes
    crc: int
    written_at: float

    def verify(self) -> None:
        """Raise :class:`CorruptImageError` if the payload was damaged."""
        if zlib.crc32(self.data) != self.crc:
            raise CorruptImageError(f"blob {self.key!r} failed its integrity check")


class StableStorage:
    """Bandwidth/latency/contention model plus a blob store.

    Parameters
    ----------
    env:
        Simulation environment.
    write_bandwidth / read_bandwidth:
        Aggregate bytes per second per channel.
    latency:
        Fixed seconds per operation (metadata round trip).
    channels:
        Concurrent I/O streams; further operations queue FIFO.
    """

    def __init__(
        self,
        env: Environment,
        write_bandwidth: float = 1e9,
        read_bandwidth: float = 2e9,
        latency: float = 1e-3,
        channels: int = 8,
    ) -> None:
        if write_bandwidth <= 0 or read_bandwidth <= 0:
            raise ConfigurationError("bandwidths must be > 0")
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency}")
        self.env = env
        self.write_bandwidth = write_bandwidth
        self.read_bandwidth = read_bandwidth
        self.latency = latency
        self._channels = Resource(env, capacity=channels)
        self._staged: Dict[str, Dict[str, StoredBlob]] = {}
        self._committed: Dict[str, StoredBlob] = {}
        self._committed_set: Optional[str] = None
        self.bytes_written = 0
        self.bytes_read = 0

    # -- timed operations ---------------------------------------------------

    def write(self, set_id: str, key: str, data: bytes):
        """Generator: stage ``data`` under (set_id, key), charging I/O time."""
        grant = self._channels.request()
        yield grant
        try:
            yield self.env.timeout(self.latency + len(data) / self.write_bandwidth)
            blob = StoredBlob(
                key=key, data=data, crc=zlib.crc32(data), written_at=self.env.now
            )
            self._staged.setdefault(set_id, {})[key] = blob
            self.bytes_written += len(data)
        finally:
            self._channels.release()

    def stage_untimed(self, set_id: str, key: str, data: bytes) -> None:
        """Stage a blob without charging I/O time.

        Used when the experiment charges a *fixed* checkpoint cost
        (the paper's measured c = 120 s) instead of the emergent
        storage time, but the images must still exist for restart.
        """
        blob = StoredBlob(
            key=key, data=data, crc=zlib.crc32(data), written_at=self.env.now
        )
        self._staged.setdefault(set_id, {})[key] = blob
        self.bytes_written += len(data)

    def read(self, key: str):
        """Generator: read a committed blob, charging I/O time."""
        blob = self._committed.get(key)
        if blob is None:
            raise NoCheckpointError(f"no committed blob {key!r}")
        grant = self._channels.request()
        yield grant
        try:
            yield self.env.timeout(self.latency + len(blob.data) / self.read_bandwidth)
            self.bytes_read += len(blob.data)
        finally:
            self._channels.release()
        blob.verify()
        return blob.data

    # -- set lifecycle ------------------------------------------------------

    def commit_set(self, set_id: str) -> None:
        """Atomically promote a staged set to the committed recovery line."""
        staged = self._staged.pop(set_id, None)
        if not staged:
            raise CheckpointError(f"no staged blobs under set {set_id!r}")
        self._committed = staged
        self._committed_set = set_id

    def abort_set(self, set_id: str) -> None:
        """Discard a staged set (failure mid-checkpoint)."""
        self._staged.pop(set_id, None)

    @property
    def committed_set(self) -> Optional[str]:
        """Id of the current recovery line (None before first commit)."""
        return self._committed_set

    def committed_keys(self):
        """Keys available in the committed set."""
        return sorted(self._committed)

    def peek(self, key: str) -> StoredBlob:
        """Direct (untimed) access to a committed blob — test/debug hook."""
        blob = self._committed.get(key)
        if blob is None:
            raise NoCheckpointError(f"no committed blob {key!r}")
        return blob

    def corrupt(self, key: str) -> None:
        """Flip a byte of a committed blob — failure-injection test hook."""
        blob = self.peek(key)
        if not blob.data:
            raise CheckpointError(f"blob {key!r} is empty; nothing to corrupt")
        damaged = bytearray(blob.data)
        damaged[0] ^= 0xFF
        blob.data = bytes(damaged)
