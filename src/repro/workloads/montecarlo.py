"""A master/slave Monte Carlo workload (pi estimation).

The paper's background singles out master/slave codes as the classic
fit for fault-tolerant MPI, and its Section 3 devotes a whole protocol
to MPI_ANY_SOURCE *because* master/slave masters receive results from
"whoever finishes first".  This workload exercises exactly that path
under redundancy:

* rank 0 is the master: it hands out work chunks and collects results
  with wildcard receives — every replica of the master must agree on
  which worker's result arrives when, which is the envelope-forwarding
  protocol's job;
* ranks 1..N-1 are workers: each chunk is a deterministic quasi-random
  batch of darts (seeded by the chunk id, so replicas and re-executions
  agree bit-for-bit and the final estimate is checkable).

One step = one scheduling round (master assigns up to one chunk per
worker, then collects the round's results).  State is the master's
progress ledger plus each worker's tally, so rollback mid-campaign
resumes exactly.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..errors import ConfigurationError
from ..mpi import ANY_SOURCE, ops
from .base import WorkShell, Workload

#: Tags of the master/worker conversation.
WORK_TAG = 31
RESULT_TAG = 32


def darts_in_circle(chunk_id: int, darts: int) -> int:
    """Deterministic dart batch: hits inside the unit quarter-circle.

    Seeded by the chunk id so any replica (or any re-execution after a
    rollback) computes the identical count.
    """
    rng = np.random.default_rng(1_000_003 * (chunk_id + 1))
    x = rng.random(darts)
    y = rng.random(darts)
    return int(np.count_nonzero(x * x + y * y <= 1.0))


class MonteCarloWorkload(Workload):
    """Master/slave pi estimation with wildcard result collection.

    Parameters
    ----------
    chunks:
        Total work chunks in the campaign.
    darts_per_chunk:
        Samples per chunk (also sets the compute charge).
    flops_per_second:
        Modeled compute speed (a dart costs ~5 flops).
    """

    name = "montecarlo"

    def __init__(
        self,
        chunks: int = 40,
        darts_per_chunk: int = 2_000,
        flops_per_second: float = 5e8,
    ) -> None:
        if chunks < 1:
            raise ConfigurationError(f"chunks must be >= 1, got {chunks}")
        if darts_per_chunk < 1:
            raise ConfigurationError(
                f"darts_per_chunk must be >= 1, got {darts_per_chunk}"
            )
        if flops_per_second <= 0:
            raise ConfigurationError("flops_per_second must be > 0")
        self.chunks = chunks
        self.darts_per_chunk = darts_per_chunk
        self.flops_per_second = flops_per_second
        self._configured = False

    def configure(self, rank: int, size: int, rng: np.random.Generator) -> None:
        if size < 2:
            raise ConfigurationError("master/slave needs at least 2 ranks")
        self.rank = rank
        self.size = size
        self.next_chunk = 0       # master: next chunk id to hand out
        self.hits = 0             # master: accumulated circle hits
        self.darts_thrown = 0     # master: accumulated darts
        self.rounds_done = 0
        self._configured = True

    @property
    def total_steps(self) -> int:
        workers = max(1, getattr(self, "size", 2) - 1)
        return -(-self.chunks // workers)  # ceil: rounds needed

    def step(self, shell: WorkShell, index: int):
        """One scheduling round.

        The master assigns one chunk to as many workers as have work
        left this round, then collects exactly that many results via
        ANY_SOURCE.  Workers receive their assignment (or an idle
        marker), compute, and reply.
        """
        if not self._configured:
            raise ConfigurationError("step() before configure()")
        comm = shell.comm
        workers = self.size - 1
        if self.rank == 0:
            assigned = 0
            for worker in range(1, self.size):
                if self.next_chunk < self.chunks:
                    yield from comm.send(self.next_chunk, worker, WORK_TAG)
                    self.next_chunk += 1
                    assigned += 1
                else:
                    yield from comm.send(-1, worker, WORK_TAG)  # idle round
            for _ in range(assigned):
                # Whoever finishes first: the Section 3 wildcard path.
                payload, _status = yield from comm.recv(
                    source=ANY_SOURCE, tag=RESULT_TAG
                )
                chunk_hits, chunk_darts = payload
                self.hits += chunk_hits
                self.darts_thrown += chunk_darts
        else:
            chunk_id, _status = yield from comm.recv(source=0, tag=WORK_TAG)
            if chunk_id >= 0:
                hits = darts_in_circle(chunk_id, self.darts_per_chunk)
                yield shell.compute(
                    5.0 * self.darts_per_chunk / self.flops_per_second
                )
                yield from comm.send(
                    (hits, self.darts_per_chunk), 0, RESULT_TAG
                )
        self.rounds_done += 1

    def finalize(self, shell: WorkShell):
        # Broadcast the master's estimate so every rank returns it.
        estimate = None
        if self.rank == 0 and self.darts_thrown > 0:
            estimate = 4.0 * self.hits / self.darts_thrown
        estimate = yield from shell.comm.bcast(estimate, root=0)
        return {
            "pi_estimate": estimate,
            "darts": self.darts_thrown if self.rank == 0 else None,
            "rounds": self.rounds_done,
        }

    def state(self) -> Dict[str, Any]:
        return {
            "next_chunk": self.next_chunk,
            "hits": self.hits,
            "darts_thrown": self.darts_thrown,
            "rounds_done": self.rounds_done,
        }

    def load(self, state: Dict[str, Any]) -> None:
        self.next_chunk = state["next_chunk"]
        self.hits = state["hits"]
        self.darts_thrown = state["darts_thrown"]
        self.rounds_done = state["rounds_done"]

    def local_result(self) -> Any:
        return {"rounds": self.rounds_done}
