"""A 2-D Jacobi heat-diffusion stencil with halo exchange.

The second workload family the paper's introduction motivates:
structured-grid codes whose communication is nearest-neighbour halo
exchange (cheap, point-to-point) plus an occasional global residual
reduction — a much lower and differently-shaped communication profile
than CG, which is exactly why it is useful for exercising the model at
a different alpha.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..errors import ConfigurationError
from ..mpi import ops
from .base import WorkShell, Workload


class StencilWorkload(Workload):
    """Row-striped Jacobi iteration on a square mesh.

    Boundary conditions: the global top edge is held at 1.0 ("hot"),
    all other edges at 0.0; heat diffuses down the mesh.  Each step:

    1. exchange boundary rows with the up/down neighbours (sendrecv);
    2. Jacobi-update the local strip (real numpy arithmetic, plus a
       modeled compute charge);
    3. every ``residual_every`` steps, allreduce the max update delta.
    """

    name = "stencil"

    def __init__(
        self,
        grid: int = 32,
        total_steps: int = 100,
        residual_every: int = 10,
        flops_per_second: float = 5e8,
    ) -> None:
        if grid < 4:
            raise ConfigurationError(f"grid must be >= 4, got {grid}")
        if total_steps < 1:
            raise ConfigurationError(f"total_steps must be >= 1, got {total_steps}")
        if residual_every < 1:
            raise ConfigurationError(
                f"residual_every must be >= 1, got {residual_every}"
            )
        self.grid = grid
        self._total_steps = total_steps
        self.residual_every = residual_every
        self.flops_per_second = flops_per_second
        self._configured = False

    def configure(self, rank: int, size: int, rng: np.random.Generator) -> None:
        if size > self.grid:
            raise ConfigurationError(f"more ranks ({size}) than rows ({self.grid})")
        self.rank = rank
        self.size = size
        counts = [
            self.grid // size + (1 if r < self.grid % size else 0) for r in range(size)
        ]
        self.local_rows = counts[rank]
        self.row_start = sum(counts[:rank])
        self.field = np.zeros((self.local_rows, self.grid), dtype=np.float64)
        if rank == 0:
            self.field[0, 1:-1] = 1.0  # hot top edge (interior columns)
        self.iteration = 0
        self.last_delta = float("inf")
        self._configured = True

    @property
    def total_steps(self) -> int:
        return self._total_steps

    def step(self, shell: WorkShell, index: int):
        if not self._configured:
            raise ConfigurationError("step() before configure()")
        comm = shell.comm
        up = self.rank - 1
        down = self.rank + 1
        ghost_above = np.zeros(self.grid, dtype=np.float64)
        ghost_below = np.zeros(self.grid, dtype=np.float64)
        # Halo exchange: send my edge rows, receive the neighbours'.
        if up >= 0:
            (payload, _status) = yield from comm.sendrecv(
                self.field[0].copy(), up, source=up, send_tag=11, recv_tag=12
            )
            ghost_above = payload
        if down < self.size:
            (payload, _status) = yield from comm.sendrecv(
                self.field[-1].copy(), down, source=down, send_tag=12, recv_tag=11
            )
            ghost_below = payload

        padded = np.vstack([ghost_above, self.field, ghost_below])
        updated = 0.25 * (
            padded[:-2, :]
            + padded[2:, :]
            + np.roll(padded[1:-1, :], 1, axis=1)
            + np.roll(padded[1:-1, :], -1, axis=1)
        )
        # Dirichlet edges: left/right columns clamp to 0, the global top
        # row stays hot, the global bottom row stays cold.
        updated[:, 0] = 0.0
        updated[:, -1] = 0.0
        if self.rank == 0:
            updated[0, :] = self.field[0, :]
        if self.rank == self.size - 1:
            updated[-1, :] = 0.0
        delta = float(np.max(np.abs(updated - self.field)))
        self.field = updated
        flops = 6.0 * self.local_rows * self.grid
        yield shell.compute(flops / self.flops_per_second)
        if (self.iteration + 1) % self.residual_every == 0:
            delta = yield from comm.allreduce(delta, ops.MAX)
        self.last_delta = delta
        self.iteration += 1

    def finalize(self, shell: WorkShell):
        heat = yield from shell.comm.allreduce(float(self.field.sum()), ops.SUM)
        return {
            "iterations": self.iteration,
            "total_heat": heat,
            "last_delta": self.last_delta,
        }

    def state(self) -> Dict[str, Any]:
        return {
            "iteration": self.iteration,
            "field": self.field.copy(),
            "last_delta": self.last_delta,
        }

    def load(self, state: Dict[str, Any]) -> None:
        self.iteration = state["iteration"]
        self.field = state["field"].copy()
        self.last_delta = state["last_delta"]

    def local_result(self) -> Any:
        return {"iterations": self.iteration, "last_delta": self.last_delta}
