"""The workload contract: step-structured, checkpointable applications.

A workload is an iterative SPMD program.  The orchestrator drives it
step by step so checkpoints can be taken at step boundaries
(application-level checkpointing), and captures/restores its state
dict for restart.  Replica determinism is part of the contract: two
replicas configured identically and fed the same messages must produce
byte-identical states — that is what makes RedMPI-style redundancy
transparent.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Dict

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.runtime import RankContext


class WorkShell:
    """What a workload step sees: its communicator and a compute clock.

    ``comm`` is *virtual* under redundancy (a ``RedComm``) and plain
    otherwise; the workload cannot tell the difference.
    """

    def __init__(self, ctx: "RankContext", comm) -> None:
        self._ctx = ctx
        self.comm = comm

    @property
    def rank(self) -> int:
        """The (virtual) rank this workload instance plays."""
        return self.comm.rank

    @property
    def size(self) -> int:
        """The (virtual) world size."""
        return self.comm.size

    @property
    def env(self):
        """The simulation environment."""
        return self._ctx.env

    def compute(self, seconds: float):
        """Event charging ``seconds`` of local computation (yield it)."""
        return self._ctx.compute(seconds)


class Workload(abc.ABC):
    """Base class for step-structured applications."""

    #: Human-readable workload name (reports, storage keys).
    name = "workload"

    @abc.abstractmethod
    def configure(self, rank: int, size: int, rng: np.random.Generator) -> None:
        """Build this rank's local data (deterministic given the rng)."""

    @property
    @abc.abstractmethod
    def total_steps(self) -> int:
        """Number of steps the workload runs."""

    @abc.abstractmethod
    def step(self, shell: WorkShell, index: int):
        """Generator: execute step ``index`` (compute + communicate)."""

    @abc.abstractmethod
    def state(self) -> Dict[str, Any]:
        """Checkpointable snapshot of the local state (a plain dict)."""

    @abc.abstractmethod
    def load(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state`."""

    def finalize(self, shell: WorkShell):
        """Generator: optional closing collective; returns the result.

        Default: return :meth:`local_result` without communication.
        (A bare ``return``-only generator still needs a yield point; we
        use a zero-delay timeout.)
        """
        yield shell.env.timeout(0.0)
        return self.local_result()

    def local_result(self) -> Any:
        """This rank's final answer (used by reports and tests)."""
        return None
