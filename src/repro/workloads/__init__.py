"""workloads — real numerical applications for the simulated machine.

Each workload does genuine arithmetic (the answers are checkable) while
charging simulated compute time and exchanging real messages through
whatever communicator it is given — a plain
:class:`~repro.mpi.Communicator` or the redundancy layer's ``RedComm``,
transparently (RedMPI's headline property).

* :mod:`cg` — a conjugate-gradient solver on a distributed sparse SPD
  (2-D Laplacian) system: the stand-in for the paper's NPB CG
  benchmark, with the same irregular-communication flavour
  (matvec + allgather + dot-product allreduces) and a repeat knob to
  lengthen runs, exactly as the paper modified CG;
* :mod:`stencil` — a 2-D Jacobi heat-diffusion kernel with halo
  exchange (neighbour p2p) and periodic global residual reductions;
* :mod:`synthetic` — a tunable compute/communicate loop for
  model-matching experiments where ``alpha`` must be exact;
* :mod:`montecarlo` — a master/slave pi estimator whose wildcard
  (ANY_SOURCE) result collection exercises the Section 3 envelope-
  forwarding protocol inside a real application.
"""

from .base import WorkShell, Workload
from .cg import ConjugateGradientWorkload
from .montecarlo import MonteCarloWorkload
from .stencil import StencilWorkload
from .synthetic import SyntheticWorkload

__all__ = [
    "ConjugateGradientWorkload",
    "MonteCarloWorkload",
    "StencilWorkload",
    "SyntheticWorkload",
    "WorkShell",
    "Workload",
]
