"""A tunable compute/communicate loop for model-matching experiments.

The analytic model's key application parameter is ``alpha``, the
communication/computation ratio.  Real workloads have an emergent
alpha; this synthetic one has a *designed* alpha: each step charges a
fixed compute time and moves fixed-size messages around a ring (plus a
scalar allreduce), so the measured ratio can be driven to whatever the
experiment needs (the paper's Figures 2 and 4-6 sweep alpha
parametrically).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..errors import ConfigurationError
from ..mpi import ops
from .base import WorkShell, Workload


class SyntheticWorkload(Workload):
    """Ring exchange + allreduce with a fixed per-step compute charge.

    Parameters
    ----------
    total_steps:
        Steps to run.
    compute_seconds:
        Local computation charged per step.
    message_bytes:
        Size of each ring message (sent both directions as a
        sendrecv).
    allreduce_every:
        A scalar allreduce every this many steps (1 = every step).
    """

    name = "synthetic"

    def __init__(
        self,
        total_steps: int = 100,
        compute_seconds: float = 1e-3,
        message_bytes: int = 8192,
        allreduce_every: int = 1,
    ) -> None:
        if total_steps < 1:
            raise ConfigurationError(f"total_steps must be >= 1, got {total_steps}")
        if compute_seconds < 0:
            raise ConfigurationError("compute_seconds must be >= 0")
        if message_bytes < 8:
            raise ConfigurationError("message_bytes must be >= 8")
        if allreduce_every < 1:
            raise ConfigurationError("allreduce_every must be >= 1")
        self._total_steps = total_steps
        self.compute_seconds = compute_seconds
        self.message_bytes = message_bytes
        self.allreduce_every = allreduce_every
        self._configured = False

    def configure(self, rank: int, size: int, rng: np.random.Generator) -> None:
        self.rank = rank
        self.size = size
        self.iteration = 0
        self.token = float(rank)
        self.payload = np.full(
            self.message_bytes // 8, float(rank), dtype=np.float64
        )
        self._configured = True

    @property
    def total_steps(self) -> int:
        return self._total_steps

    def step(self, shell: WorkShell, index: int):
        if not self._configured:
            raise ConfigurationError("step() before configure()")
        yield shell.compute(self.compute_seconds)
        if self.size > 1:
            right = (self.rank + 1) % self.size
            left = (self.rank - 1) % self.size
            (received, _status) = yield from shell.comm.sendrecv(
                self.payload, right, source=left, send_tag=21, recv_tag=21
            )
            # Fold the neighbour's payload in so the data genuinely flows.
            self.token += float(received[0])
            self.payload = received
        if (self.iteration + 1) % self.allreduce_every == 0:
            self.token = yield from shell.comm.allreduce(self.token, ops.SUM)
        self.iteration += 1

    def finalize(self, shell: WorkShell):
        total = yield from shell.comm.allreduce(self.token, ops.SUM)
        return {"iterations": self.iteration, "token_sum": total}

    def state(self) -> Dict[str, Any]:
        return {
            "iteration": self.iteration,
            "token": self.token,
            "payload": self.payload.copy(),
        }

    def load(self, state: Dict[str, Any]) -> None:
        self.iteration = state["iteration"]
        self.token = state["token"]
        self.payload = state["payload"].copy()

    def local_result(self) -> Any:
        return {"iterations": self.iteration, "token": self.token}
