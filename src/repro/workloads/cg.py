"""A conjugate-gradient workload: the NPB CG stand-in.

The paper benchmarks NPB CG (class D, 128 processes, lengthened by
repeating the solver between MPI_Init and MPI_Finalize).  This workload
reproduces CG's structure on a generated system:

* the matrix is the 2-D 5-point Laplacian on a ``grid x grid`` mesh —
  sparse, symmetric positive definite, generated row-block-local so
  every rank builds only its own rows, deterministically;
* each CG iteration does a distributed sparse matvec (local rows times
  the allgathered search direction) plus two dot-product allreduces —
  the same collective-heavy pattern that gives CG its ~20%
  communication share (the paper's measured alpha = 0.2);
* the run is lengthened exactly the way the paper lengthened CG: the
  solve restarts from the initial guess every ``cycle_length``
  iterations, for ``total_steps`` iterations overall.

The arithmetic is real: tests assert the residual actually decreases
within a cycle and that replicas/restarts reproduce identical state.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np
from scipy import sparse

from ..errors import ConfigurationError
from ..mpi import ops
from .base import WorkShell, Workload


def _laplacian_rows(grid: int, row_start: int, row_end: int) -> sparse.csr_matrix:
    """Rows [row_start, row_end) of the grid^2 x grid^2 5-point Laplacian."""
    n = grid * grid
    rows, cols, vals = [], [], []
    for row in range(row_start, row_end):
        i, j = divmod(row, grid)
        local = row - row_start
        rows.append(local)
        cols.append(row)
        vals.append(4.0)
        for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            ni, nj = i + di, j + dj
            if 0 <= ni < grid and 0 <= nj < grid:
                rows.append(local)
                cols.append(ni * grid + nj)
                vals.append(-1.0)
    return sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row_end - row_start, n), dtype=np.float64
    )


class ConjugateGradientWorkload(Workload):
    """Distributed CG on a 2-D Laplacian system.

    Parameters
    ----------
    grid:
        Mesh side; the system has ``grid**2`` unknowns.
    total_steps:
        Total CG iterations to run (across solve cycles).
    cycle_length:
        Iterations per solve cycle; the solver resets to the initial
        guess at each cycle boundary (the paper's "repeat the
        computation n times" lengthening).
    flops_per_second:
        Modeled local compute speed; sets the compute share of a step.
    """

    name = "cg"

    def __init__(
        self,
        grid: int = 16,
        total_steps: int = 100,
        cycle_length: int = 50,
        flops_per_second: float = 5e8,
    ) -> None:
        if grid < 2:
            raise ConfigurationError(f"grid must be >= 2, got {grid}")
        if total_steps < 1:
            raise ConfigurationError(f"total_steps must be >= 1, got {total_steps}")
        if cycle_length < 1:
            raise ConfigurationError(f"cycle_length must be >= 1, got {cycle_length}")
        if flops_per_second <= 0:
            raise ConfigurationError("flops_per_second must be > 0")
        self.grid = grid
        self._total_steps = total_steps
        self.cycle_length = cycle_length
        self.flops_per_second = flops_per_second
        self._configured = False

    # -- setup -------------------------------------------------------------

    def configure(self, rank: int, size: int, rng: np.random.Generator) -> None:
        n = self.grid * self.grid
        if size > n:
            raise ConfigurationError(f"more ranks ({size}) than unknowns ({n})")
        self.rank = rank
        self.size = size
        counts = [n // size + (1 if r < n % size else 0) for r in range(size)]
        self.row_start = sum(counts[:rank])
        self.row_end = self.row_start + counts[rank]
        self.counts = counts
        self.matrix = _laplacian_rows(self.grid, self.row_start, self.row_end)
        self.b = np.ones(self.row_end - self.row_start, dtype=np.float64)
        self._reset_solver()
        self.iteration = 0
        self.residual = float("nan")
        self._configured = True

    def _reset_solver(self) -> None:
        local_n = self.row_end - self.row_start
        self.x = np.zeros(local_n, dtype=np.float64)
        self.r = self.b.copy()
        self.p = self.r.copy()
        self.rsold: float = float("nan")  # established by the first step

    # -- iteration ----------------------------------------------------------

    @property
    def total_steps(self) -> int:
        return self._total_steps

    def _step_flops(self) -> float:
        matvec = 2.0 * self.matrix.nnz
        vector_ops = 10.0 * (self.row_end - self.row_start)
        return matvec + vector_ops

    def step(self, shell: WorkShell, index: int):
        if not self._configured:
            raise ConfigurationError("step() before configure()")
        if self.iteration % self.cycle_length == 0:
            self._reset_solver()
        if np.isnan(self.rsold):
            self.rsold = yield from shell.comm.allreduce(
                float(self.r @ self.r), ops.SUM
            )
        # Distributed matvec: everyone needs the full search direction.
        pieces = yield from shell.comm.allgather(self.p)
        p_full = np.concatenate(pieces)
        q = self.matrix @ p_full
        yield shell.compute(self._step_flops() / self.flops_per_second)
        pq = yield from shell.comm.allreduce(float(self.p @ q), ops.SUM)
        alpha = self.rsold / pq if pq > 0.0 else 0.0
        self.x = self.x + alpha * self.p
        self.r = self.r - alpha * q
        rsnew = yield from shell.comm.allreduce(float(self.r @ self.r), ops.SUM)
        beta = rsnew / self.rsold if self.rsold > 0.0 else 0.0
        self.p = self.r + beta * self.p
        self.rsold = rsnew
        self.residual = float(np.sqrt(max(rsnew, 0.0)))
        self.iteration += 1

    def finalize(self, shell: WorkShell):
        checksum = yield from shell.comm.allreduce(float(self.x.sum()), ops.SUM)
        return {
            "iterations": self.iteration,
            "residual": self.residual,
            "checksum": checksum,
        }

    # -- checkpointing -----------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        return {
            "iteration": self.iteration,
            "x": self.x.copy(),
            "r": self.r.copy(),
            "p": self.p.copy(),
            "rsold": self.rsold,
            "residual": self.residual,
        }

    def load(self, state: Dict[str, Any]) -> None:
        self.iteration = state["iteration"]
        self.x = state["x"].copy()
        self.r = state["r"].copy()
        self.p = state["p"].copy()
        self.rsold = state["rsold"]
        self.residual = state["residual"]

    def local_result(self) -> Any:
        return {"iterations": self.iteration, "residual": self.residual}
