"""Exception hierarchy shared by every ``repro`` subsystem.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError``, ...).

The hierarchy mirrors the package layout: each substrate owns a small
family of exceptions, and cross-cutting conditions (bad user parameters)
live at the top.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain.

    Inherits :class:`ValueError` so idiomatic ``except ValueError``
    call sites keep working.
    """


# --------------------------------------------------------------------------
# Discrete-event simulation kernel
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the simulation kernel."""


class SimulationDeadlock(SimulationError):
    """The event queue drained while processes were still waiting."""


class ProcessInterrupted(SimulationError):
    """Raised *inside* a simulated process when it is interrupted.

    Carries the interrupt ``cause`` (an arbitrary object supplied by the
    interrupter, e.g. a :class:`~repro.faults.injector.FailureEvent`).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class StopProcess(SimulationError):
    """Internal signal used to tear down a simulated process."""


# --------------------------------------------------------------------------
# Cluster / machine model
# --------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for machine-model errors."""


class AllocationError(ClusterError):
    """Not enough healthy nodes (or spares) to satisfy a placement."""


class NodeStateError(ClusterError):
    """Illegal node state transition (e.g. failing an already-down node)."""


# --------------------------------------------------------------------------
# Simulated MPI runtime
# --------------------------------------------------------------------------


class MPIError(ReproError):
    """Base class for simulated-MPI errors."""


class RankFailedError(MPIError):
    """A communication peer (or the caller itself) is dead."""

    def __init__(self, rank: int, detail: str = "") -> None:
        msg = f"rank {rank} has failed"
        if detail:
            msg = f"{msg}: {detail}"
        super().__init__(msg)
        self.rank = rank


class CommunicatorError(MPIError):
    """Invalid communicator usage (bad rank, finalized world, ...)."""


class RequestError(MPIError):
    """Invalid request-handle usage (double wait, foreign handle, ...)."""


# --------------------------------------------------------------------------
# Redundancy layer
# --------------------------------------------------------------------------


class RedundancyError(ReproError):
    """Base class for redundancy-layer errors."""


class SphereExhaustedError(RedundancyError):
    """Every physical replica of a virtual process has failed.

    This is the condition that forces a job-level rollback: the virtual
    process can no longer make progress (Section 5, Figure 7 of the
    paper).
    """

    def __init__(self, virtual_rank: int) -> None:
        super().__init__(f"all replicas of virtual rank {virtual_rank} failed")
        self.virtual_rank = virtual_rank


class VotingError(RedundancyError):
    """Replica messages disagreed and no majority could be formed."""


# --------------------------------------------------------------------------
# Checkpoint / restart
# --------------------------------------------------------------------------


class CheckpointError(ReproError):
    """Base class for checkpoint/restart errors."""


class NoCheckpointError(CheckpointError):
    """Restart requested but stable storage holds no usable image set."""


class CorruptImageError(CheckpointError):
    """A stored process image failed its integrity check on read-back."""


class TransientStorageError(CheckpointError):
    """Base class for injected stable-storage faults.

    Transient in the sense of the fault model: the *operation* failed,
    not the device — retrying the same operation may succeed.  Raised
    only when a :class:`~repro.faults.storage_faults.StorageFaultModel`
    is wired into :class:`~repro.checkpoint.storage.StableStorage`.
    """


class StorageWriteError(TransientStorageError):
    """A stable-storage write was rejected by the fault model."""


class StorageReadError(TransientStorageError):
    """A stable-storage read was rejected by the fault model."""


class CoordinationError(CheckpointError):
    """The coordinated-checkpoint protocol could not quiesce channels."""


# --------------------------------------------------------------------------
# Results store
# --------------------------------------------------------------------------


class StoreError(ReproError):
    """Base class for results-store errors (keys, codecs, backend)."""


class UnkeyableError(StoreError):
    """A value cannot be canonically serialized into a cache key."""


class CodecError(StoreError):
    """A stored payload cannot be decoded back into its object."""


# --------------------------------------------------------------------------
# Serving layer
# --------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for model-serving errors."""


class ServiceOverloadedError(ServiceError):
    """The bounded request queue is full; the request was shed."""


class ServiceClosedError(ServiceError):
    """The service is draining/stopped and accepts no new requests."""


# --------------------------------------------------------------------------
# Analytic models
# --------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for analytic-model errors."""


class ModelDivergence(ModelError):
    """The model has no finite solution for these parameters.

    Raised, for example, when ``λ · t_RR >= 1`` in Eq. 14 — the expected
    repair time per failure exceeds the mean time between failures, so
    the job never completes in expectation.
    """
