#!/usr/bin/env python
"""Close the loop: does the analytic advisor's pick win in simulation?

The paper validates its model by running the recommended configurations
on a real cluster.  This script does the equivalent with the simulator:

1. describe a (scaled-down) machine and application to the advisor;
2. run the *actual* fault-injected job at the recommended degree and at
   its neighbours;
3. check that the recommendation is at (or next to) the empirical
   optimum — single stochastic runs, so "next to" is the honest bar,
   exactly as in the paper's noisy Table 4.

Run:  python examples/advisor_validation.py   (takes ~1 minute)
"""

from repro.models import CombinedModel, recommend
from repro.orchestration import JobConfig, ResilientJob
from repro.util import render_table
from repro.workloads import SyntheticWorkload

# The scaled machine: 8 virtual processes, 6-second node MTBF; the
# application: ~3 s base time at alpha ~ 0.2.
PROCESSES = 8
NODE_MTBF = 6.0
BASE_TIME = 3.2
ALPHA = 0.2
CHECKPOINT_COST = 0.1
RESTART_COST = 0.4


def simulated_time(degree: float, seed: int = 7) -> float:
    report = ResilientJob(
        JobConfig(
            workload_factory=lambda: SyntheticWorkload(
                total_steps=80, compute_seconds=0.032, message_bytes=96 * 1024
            ),
            virtual_processes=PROCESSES,
            redundancy=degree,
            node_mtbf=NODE_MTBF,
            checkpoint_cost=CHECKPOINT_COST,
            restart_cost=RESTART_COST,
            expected_base_time=BASE_TIME,
            alpha_estimate=ALPHA,
            network_bandwidth=2e7,
            network_latency=5e-5,
            seed=seed,
        )
    ).run()
    return report.total_time


def main() -> None:
    model = CombinedModel(
        virtual_processes=PROCESSES,
        redundancy=1.0,
        node_mtbf=NODE_MTBF,
        alpha=ALPHA,
        base_time=BASE_TIME,
        checkpoint_cost=CHECKPOINT_COST,
        restart_cost=RESTART_COST,
        exact_reliability=True,  # sim scale: t ~ theta
    )
    pick = recommend(model, grid=(1.0, 1.5, 2.0, 2.5, 3.0))
    print(f"advisor says: run {pick.redundancy}x, checkpoint every "
          f"{pick.checkpoint_interval:.2f} s ({pick.rationale})\n")

    rows = []
    empirical = {}
    for degree in (1.0, 1.5, 2.0, 2.5, 3.0):
        measured = simulated_time(degree)
        modeled = next(
            p.total_time for p in pick.candidates if p.redundancy == degree
        )
        empirical[degree] = measured
        rows.append(
            [
                f"{degree}x" + (" <- advised" if degree == pick.redundancy else ""),
                round(modeled, 2),
                round(measured, 2),
            ]
        )
    print(render_table(
        ["degree", "modeled T [s]", "simulated T [s]"],
        rows,
        title="Advisor pick vs fault-injected simulation",
    ))
    best = min(empirical, key=empirical.get)
    ranked = sorted(empirical, key=empirical.get)
    position = ranked.index(pick.redundancy) + 1
    print(f"\nempirical best: {best}x; the advised {pick.redundancy}x ranks "
          f"#{position} of {len(ranked)} in this (single, noisy) run — the "
          f"same agreement level the paper reports between its model and "
          f"its measured Table 4.")


if __name__ == "__main__":
    main()
