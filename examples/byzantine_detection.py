#!/usr/bin/env python
"""RedMPI's bonus feature: detecting (and out-voting) corrupt replicas.

Beyond fail-stop tolerance, the redundancy layer compares every
replica's copy of every message.  With dual redundancy a silently
corrupted message is *detected*; with triple redundancy the corrupt
copy is *voted out* and the application never sees it (Section 2's
description of RedMPI).  This script injects a Byzantine replica that
flips values in some of its messages and shows both behaviours, in
both transfer modes (All-to-all and Msg-PlusHash).

Run:  python examples/byzantine_detection.py
"""

import numpy as np

from repro.errors import SimulationDeadlock, VotingError
from repro.mpi import SimMPI, ops
from repro.redundancy import (
    ALL_TO_ALL,
    MSG_PLUS_HASH,
    RedComm,
    ReplicaMap,
    SphereTracker,
)
from repro.simkit import Environment
from repro.util import render_table


def run_case(redundancy: float, mode: str):
    """4 virtual ranks; virtual rank 1's last replica is Byzantine."""
    env = Environment()
    replica_map = ReplicaMap(4, redundancy)
    tracker = SphereTracker(replica_map)
    world = SimMPI(env, size=replica_map.total_physical)
    byzantine = replica_map.replicas_of(1)[-1]

    def corruptor(sender, receiver, payload):
        if sender == byzantine and isinstance(payload, np.ndarray):
            corrupted = payload.copy()
            corrupted[0] += 1e6  # a silent bit-flip-like error
            return corrupted
        return payload

    outcomes = {}

    def program(ctx):
        red = RedComm(ctx, replica_map, tracker, mode=mode, corruptor=corruptor)
        local = np.full(64, float(red.rank))
        try:
            total = yield from red.allreduce(local, ops.SUM)
            outcomes[ctx.rank] = ("ok", float(total[0]))
        except VotingError as error:
            outcomes[ctx.rank] = ("detected", str(error)[:40])

    world.spawn(program)
    try:
        world.run()
    except SimulationDeadlock:
        # A rank that detects corruption aborts its collective; peers
        # then block forever — exactly how a real job would hang until
        # torn down.  Detection has been recorded at this point.
        pass
    voted_out = world.counters["corrupt_copies_voted_out"]
    statuses = {status for status, _ in outcomes.values()}
    return statuses, voted_out, outcomes


def main() -> None:
    rows = []
    for redundancy, mode in (
        (2.0, ALL_TO_ALL),
        (3.0, ALL_TO_ALL),
        (3.0, MSG_PLUS_HASH),
    ):
        statuses, voted_out, outcomes = run_case(redundancy, mode)
        if statuses == {"ok"}:
            verdict = f"corrected ({int(voted_out)} copies voted out)"
            answer = next(v for s, v in outcomes.values() if s == "ok")
        else:
            verdict = "detected, not correctable"
            answer = "-"
        rows.append([f"{redundancy}x", mode, verdict, answer])
    print(
        render_table(
            ["degree", "mode", "outcome", "allreduce[0]"],
            rows,
            title="Byzantine replica injected into virtual rank 1",
        )
    )
    print(
        "\nExpected: 2x detects the corruption but cannot tell which copy "
        "is right; 3x All-to-all silently corrects it (the correct sum "
        "0+1+2+3 = 6 reaches the application).  3x Msg-PlusHash saves "
        "bandwidth but weakens correction: a receiver whose designated "
        "payload carrier *is* the Byzantine replica holds only digests of "
        "the correct message — it can prove corruption but cannot "
        "reconstruct the payload locally (the mode's documented trade-off)."
    )


if __name__ == "__main__":
    main()
