#!/usr/bin/env python
"""Quickstart: the paper's core question in twenty lines.

Given a machine (process count, node MTBF), an application (base time,
communication ratio) and C/R costs, which redundancy degree finishes a
job soonest — and what does it cost in extra nodes?

Run:  python examples/quickstart.py
"""

from repro import units
from repro.models import (
    CombinedModel,
    find_crossover,
    node_hours,
    optimal_redundancy,
    sweep_redundancy,
)
from repro.util import render_table


def main() -> None:
    # A 128-hour job on 50,000 processes; 5-year node MTBF; CG-like
    # communication share; 8-minute checkpoints, 12-minute restarts.
    model = CombinedModel(
        virtual_processes=50_000,
        redundancy=1.0,
        node_mtbf=units.years(5),
        alpha=0.2,
        base_time=units.hours(128),
        checkpoint_cost=units.minutes(8),
        restart_cost=units.minutes(12),
    )

    # Sweep the paper's 1x..3x grid (0.25 steps).
    points = sweep_redundancy(model)
    rows = []
    for point in points:
        result = point.result
        rows.append(
            [
                f"{point.redundancy}x",
                round(units.to_hours(point.total_time), 1),
                result.total_processes,
                round(node_hours(result) / 1e6, 2),
                round(result.system_mtbf / 3600.0, 2),
                int(result.expected_checkpoints),
            ]
        )
    print(
        render_table(
            ["degree", "T_total [h]", "processes", "node-hours [M]",
             "system MTBF [h]", "checkpoints"],
            rows,
            title="Combined C/R + redundancy, 128 h job on 50k processes",
        )
    )

    best = optimal_redundancy(model)
    print(f"\nOptimal degree: {best.redundancy}x "
          f"({units.to_hours(best.total_time):.1f} h vs "
          f"{units.to_hours(points[0].total_time):.1f} h without redundancy)")

    # Where does dual redundancy start paying off on this machine family?
    crossover = find_crossover(model, 1.0, 2.0)
    print(f"2x beats 1x from {crossover.processes:,} processes upward "
          f"(paper: 4,351 at its settings)")


if __name__ == "__main__":
    main()
