#!/usr/bin/env python
"""Capacity planning: the paper's "tuning knob" as a decision tool.

An HPC operator has a fixed pool of nodes and a queue of 128-hour
jobs.  Should they run each job plain, or at 2x redundancy on twice
the nodes?  The paper's Fig. 14 argument: past the throughput
break-even point, two dual-redundant jobs finish inside one plain
job's wallclock — redundancy *increases* cluster throughput.

This script finds the break-even for a machine family and prints a
throughput table, plus a weighted-cost view for users who price
node-hours and deadlines differently.

Run:  python examples/capacity_planning.py
"""

from repro import units
from repro.models import (
    CombinedModel,
    sweep_redundancy,
    throughput_break_even,
    weighted_cost,
)
from repro.util import render_table


def machine(processes: int) -> CombinedModel:
    return CombinedModel(
        virtual_processes=processes,
        redundancy=1.0,
        node_mtbf=units.years(5),
        alpha=0.2,
        base_time=units.hours(128),
        checkpoint_cost=units.minutes(8),
        restart_cost=units.minutes(12),
    )


def main() -> None:
    break_even = throughput_break_even(machine(1000), redundancy=2.0, jobs=2)
    print(f"Throughput break-even: from {break_even.processes:,} processes, "
          f"two 2x jobs finish within one 1x job "
          f"(paper: 78,536 at its settings)\n")

    rows = []
    for processes in (10_000, 40_000, break_even.processes, 150_000):
        plain = machine(processes).total_time_or_inf()
        redundant = machine(processes).with_redundancy(2.0).total_time_or_inf()
        jobs_per_month_plain = units.days(30) / plain if plain > 0 else 0
        jobs_per_month_dual = units.days(30) / redundant / 2  # 2x nodes
        rows.append(
            [
                f"{processes:,}",
                round(units.to_hours(plain), 1),
                round(units.to_hours(redundant), 1),
                round(jobs_per_month_plain, 2),
                round(jobs_per_month_dual, 2),
            ]
        )
    print(
        render_table(
            ["processes", "T(1x) [h]", "T(2x) [h]",
             "jobs/month @1x", "jobs/month per node-pool @2x"],
            rows,
            title="Capacity computing: throughput per fixed node pool",
        )
    )

    # Weighted cost: users weigh deadline vs node budget differently.
    base = machine(80_000)
    reference = base.evaluate()
    rows = []
    for label, time_weight, resource_weight in (
        ("deadline-driven", 1.0, 0.1),
        ("balanced", 1.0, 1.0),
        ("budget-driven", 0.1, 1.0),
    ):
        costs = {}
        for point in sweep_redundancy(base, grid=(1.0, 1.5, 2.0, 2.5, 3.0)):
            if point.result is None:
                continue
            costs[point.redundancy] = weighted_cost(
                point.result, time_weight, resource_weight, reference=reference
            )
        best = min(costs, key=costs.get)
        rows.append([label, time_weight, resource_weight, f"{best}x",
                     round(costs[best], 3)])
    print()
    print(
        render_table(
            ["user profile", "w_time", "w_nodes", "best degree", "cost"],
            rows,
            title="The tuning knob: optimal degree under different cost weights",
        )
    )


if __name__ == "__main__":
    main()
