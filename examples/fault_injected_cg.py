#!/usr/bin/env python
"""Run a real CG solve through the full fault-tolerance stack.

This is the paper's Section 5 experiment in miniature: a conjugate-
gradient solver (the NPB CG stand-in) runs on the simulated cluster
under RedMPI-style redundancy, coordinated checkpointing at an interval
derived from Daly's formula, and a Poisson failure injector.  The
script verifies that the numerical answer after failures and rollbacks
is bit-identical to a failure-free run.

Run:  python examples/fault_injected_cg.py
"""

from repro.orchestration import JobConfig, ResilientJob
from repro.util import render_table
from repro.workloads import ConjugateGradientWorkload


def factory() -> ConjugateGradientWorkload:
    return ConjugateGradientWorkload(
        grid=10, total_steps=80, cycle_length=35, flops_per_second=5e3
    )


def main() -> None:
    # Reference: failure-free, no redundancy, no checkpointing.
    clean = ResilientJob(
        JobConfig(workload_factory=factory, virtual_processes=4,
                  checkpointing=False)
    ).run()
    print(f"failure-free reference: T = {clean.total_time:.2f} s, "
          f"residual = {clean.result['residual']:.3e}")

    rows = []
    for degree in (1.0, 1.5, 2.0, 3.0):
        report = ResilientJob(
            JobConfig(
                workload_factory=factory,
                virtual_processes=4,
                redundancy=degree,
                node_mtbf=3.0,                 # very hostile machine
                checkpoint_cost=0.05,
                restart_cost=0.2,
                expected_base_time=clean.total_time,
                alpha_estimate=0.2,            # Daly interval derived
                seed=2012,
            )
        ).run()
        exact = abs(report.result["checksum"] - clean.result["checksum"]) < 1e-9
        rows.append(
            [
                f"{degree}x",
                round(report.total_time, 2),
                report.physical_processes,
                report.failures_injected,
                report.rollbacks,
                report.checkpoints_committed,
                "yes" if exact else "NO",
            ]
        )
    print()
    print(
        render_table(
            ["degree", "T [s]", "procs", "failures", "rollbacks",
             "checkpoints", "answer exact"],
            rows,
            title="CG under injected failures (node MTBF = 3 s, hostile)",
        )
    )
    print("\nNote how redundancy converts job-killing failures into "
          "absorbed replica deaths: rollbacks vanish as the degree grows, "
          "while the failure-free communication overhead rises — the "
          "trade-off the paper's model optimises.")


if __name__ == "__main__":
    main()
