"""Tests for topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.netsim import FlatTopology, TwoLevelTopology
from repro.netsim.topology import TorusTopology


class TestFlat:
    def test_loopback(self):
        assert FlatTopology(loopback=0.25).distance(3, 3) == 0.25

    def test_one_hop_everywhere(self):
        topology = FlatTopology()
        assert topology.distance(0, 99) == 1.0

    def test_rejects_negative_loopback(self):
        with pytest.raises(ConfigurationError):
            FlatTopology(loopback=-1.0)


class TestTwoLevel:
    def test_same_switch_one_hop(self):
        topology = TwoLevelTopology(nodes_per_switch=4)
        assert topology.distance(0, 3) == 1.0

    def test_cross_switch_spine_hops(self):
        topology = TwoLevelTopology(nodes_per_switch=4, spine_hops=3.0)
        assert topology.distance(0, 4) == 3.0

    def test_loopback(self):
        assert TwoLevelTopology().distance(5, 5) == 0.1

    def test_switch_of(self):
        topology = TwoLevelTopology(nodes_per_switch=18)
        assert topology.switch_of(17) == 0
        assert topology.switch_of(18) == 1

    def test_negative_node_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoLevelTopology().switch_of(-1)

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    def test_symmetry(self, a, b):
        topology = TwoLevelTopology(nodes_per_switch=7)
        assert topology.distance(a, b) == topology.distance(b, a)


class TestTorus:
    def test_neighbors_one_hop(self):
        torus = TorusTopology(side=4)
        assert torus.distance(0, 1) == 1.0
        assert torus.distance(0, 4) == 1.0  # vertical neighbour

    def test_wraparound(self):
        torus = TorusTopology(side=4)
        assert torus.distance(0, 3) == 1.0  # wraps horizontally

    def test_diagonal_is_manhattan(self):
        torus = TorusTopology(side=8)
        assert torus.distance(0, 9) == 2.0  # (1, 1) away

    def test_coordinates(self):
        torus = TorusTopology(side=4)
        assert torus.coordinates(5) == (1, 1)

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    def test_symmetry(self, a, b):
        torus = TorusTopology(side=8)
        assert torus.distance(a, b) == torus.distance(b, a)

    def test_rejects_tiny_side(self):
        with pytest.raises(ConfigurationError):
            TorusTopology(side=1)
