"""Tests for the alpha-beta transfer model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.netsim import AlphaBetaModel


class TestTransferTime:
    def test_zero_bytes_costs_latency(self):
        model = AlphaBetaModel(latency=1e-6, bandwidth=1e9)
        assert model.transfer_time(0) == pytest.approx(1e-6)

    def test_bandwidth_term(self):
        model = AlphaBetaModel(latency=0.0, bandwidth=1e9)
        assert model.transfer_time(10**9) == pytest.approx(1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            AlphaBetaModel().transfer_time(-1)

    @given(st.integers(min_value=0, max_value=10**12))
    def test_monotone_in_size(self, nbytes):
        model = AlphaBetaModel()
        assert model.transfer_time(nbytes + 1) >= model.transfer_time(nbytes)


class TestSenderTime:
    def test_eager_includes_cpu_overhead(self):
        model = AlphaBetaModel(latency=1e-6, bandwidth=1e9, cpu_overhead=2e-6)
        assert model.sender_time(1000) == pytest.approx(2e-6 + 1000 / 1e9)

    def test_rendezvous_adds_round_trip(self):
        model = AlphaBetaModel(
            latency=1e-6, bandwidth=1e9, eager_threshold=100, cpu_overhead=0.0
        )
        eager = model.sender_time(100)
        rendezvous = model.sender_time(101)
        assert rendezvous - eager == pytest.approx(2e-6, rel=0.05)

    def test_message_count_amplification_is_linear(self):
        # The Eq. 1 mechanism: r sends cost r times one send.
        model = AlphaBetaModel()
        assert 3 * model.sender_time(4096) == pytest.approx(
            model.sender_time(4096) * 3
        )


class TestValidation:
    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            AlphaBetaModel(latency=-1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            AlphaBetaModel(bandwidth=0.0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigurationError):
            AlphaBetaModel(cpu_overhead=-1e-9)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ConfigurationError):
            AlphaBetaModel(eager_threshold=-1)


class TestScaled:
    def test_scaling_factors(self):
        base = AlphaBetaModel(latency=2e-6, bandwidth=1e9)
        derived = base.scaled(latency_factor=0.5, bandwidth_factor=2.0)
        assert derived.latency == pytest.approx(1e-6)
        assert derived.bandwidth == pytest.approx(2e9)
        assert derived.cpu_overhead == base.cpu_overhead
