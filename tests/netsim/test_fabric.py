"""Tests for the fabric cost oracle."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.netsim import AlphaBetaModel, Fabric, FlatTopology, TwoLevelTopology


class TestDeterministicFabric:
    def test_delivery_delay_composition(self):
        fabric = Fabric(model=AlphaBetaModel(latency=1e-6, bandwidth=1e9))
        assert fabric.delivery_delay(0, 1, 1000) == pytest.approx(1e-6 + 1e-6)

    def test_loopback_cheaper(self):
        fabric = Fabric(topology=FlatTopology(loopback=0.1))
        assert fabric.delivery_delay(2, 2, 0) < fabric.delivery_delay(2, 3, 0)

    def test_wire_latency_scales_with_hops(self):
        fabric = Fabric(
            model=AlphaBetaModel(latency=1e-6),
            topology=TwoLevelTopology(nodes_per_switch=2, spine_hops=3.0),
        )
        assert fabric.wire_latency(0, 2) == pytest.approx(3e-6)

    def test_sender_busy_includes_cpu_overhead(self):
        model = AlphaBetaModel(latency=1e-6, bandwidth=1e9, cpu_overhead=5e-7)
        fabric = Fabric(model=model)
        assert fabric.sender_busy_time(0, 1, 0) == pytest.approx(5e-7)

    def test_same_node_skips_rendezvous(self):
        model = AlphaBetaModel(
            latency=1e-3, bandwidth=1e9, eager_threshold=10, cpu_overhead=0.0
        )
        fabric = Fabric(model=model)
        big = 1000
        assert fabric.sender_busy_time(0, 0, big) < fabric.sender_busy_time(0, 1, big)


class TestJitter:
    def test_requires_rng(self):
        with pytest.raises(ConfigurationError):
            Fabric(jitter=0.1)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Fabric(jitter=-0.1, rng=np.random.default_rng(0))

    def test_unit_mean_noise(self):
        fabric = Fabric(jitter=0.3, rng=np.random.default_rng(7))
        base = AlphaBetaModel().latency
        samples = [fabric.delivery_delay(0, 1, 0) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(base, rel=0.05)

    def test_zero_jitter_is_exact(self):
        fabric = Fabric()
        first = fabric.delivery_delay(0, 1, 512)
        assert all(fabric.delivery_delay(0, 1, 512) == first for _ in range(5))
