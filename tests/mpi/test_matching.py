"""Tests for the matching engine (the heart of MPI semantics)."""

import pytest

from repro.errors import MPIError
from repro.mpi import ANY_SOURCE, ANY_TAG
from repro.mpi.matching import Envelope, MatchingEngine
from repro.simkit import Environment


def make_envelope(source=0, dest=1, tag=0, payload=b"", cid=0, seq=0):
    return Envelope(
        source=source, dest=dest, tag=tag, payload=payload, nbytes=len(payload),
        cid=cid, seq=seq,
    )


class TestPostThenDeliver:
    def test_exact_match(self, env):
        engine = MatchingEngine(rank=1)
        event = engine.post(env, source=0, tag=7)
        engine.deliver(make_envelope(source=0, tag=7, payload=b"hi"))
        env.run()
        assert event.value.payload == b"hi"

    def test_source_mismatch_queues(self, env):
        engine = MatchingEngine(rank=1)
        event = engine.post(env, source=0, tag=7)
        engine.deliver(make_envelope(source=2, tag=7))
        assert not event.triggered
        assert engine.unexpected_messages == 1

    def test_tag_mismatch_queues(self, env):
        engine = MatchingEngine(rank=1)
        event = engine.post(env, source=0, tag=7)
        engine.deliver(make_envelope(source=0, tag=8))
        assert not event.triggered

    def test_cid_separates_communicators(self, env):
        engine = MatchingEngine(rank=1)
        event = engine.post(env, source=0, tag=7, cid=1)
        engine.deliver(make_envelope(source=0, tag=7, cid=2))
        assert not event.triggered
        engine.deliver(make_envelope(source=0, tag=7, cid=1))
        assert event.triggered

    def test_wildcard_source(self, env):
        engine = MatchingEngine(rank=1)
        event = engine.post(env, source=ANY_SOURCE, tag=7)
        engine.deliver(make_envelope(source=5, tag=7))
        env.run()
        assert event.value.source == 5

    def test_wildcard_tag(self, env):
        engine = MatchingEngine(rank=1)
        event = engine.post(env, source=0, tag=ANY_TAG)
        engine.deliver(make_envelope(source=0, tag=123))
        assert event.triggered

    def test_posted_receives_matched_in_post_order(self, env):
        engine = MatchingEngine(rank=1)
        first = engine.post(env, source=ANY_SOURCE, tag=ANY_TAG)
        second = engine.post(env, source=ANY_SOURCE, tag=ANY_TAG)
        engine.deliver(make_envelope(payload=b"1"))
        engine.deliver(make_envelope(payload=b"2"))
        env.run()
        assert first.value.payload == b"1"
        assert second.value.payload == b"2"


class TestDeliverThenPost:
    def test_unexpected_consumed_fifo(self, env):
        engine = MatchingEngine(rank=1)
        engine.deliver(make_envelope(payload=b"old", seq=1))
        engine.deliver(make_envelope(payload=b"new", seq=2))
        event = engine.post(env, source=0, tag=0)
        env.run()
        assert event.value.payload == b"old"
        assert engine.unexpected_messages == 1

    def test_skips_non_matching_unexpected(self, env):
        engine = MatchingEngine(rank=1)
        engine.deliver(make_envelope(tag=9))
        engine.deliver(make_envelope(tag=4, payload=b"mine"))
        event = engine.post(env, source=0, tag=4)
        env.run()
        assert event.value.payload == b"mine"


class TestProbeAndCancel:
    def test_probe_non_consuming(self, env):
        engine = MatchingEngine(rank=1)
        engine.deliver(make_envelope(tag=3))
        assert engine.probe(source=ANY_SOURCE, tag=3) is not None
        assert engine.unexpected_messages == 1

    def test_probe_miss(self, env):
        engine = MatchingEngine(rank=1)
        assert engine.probe(source=0, tag=3) is None

    def test_cancel_pending(self, env):
        engine = MatchingEngine(rank=1)
        event = engine.post(env, source=0, tag=1)
        assert engine.cancel(event)
        engine.deliver(make_envelope(tag=1))
        assert not event.triggered
        assert engine.unexpected_messages == 1

    def test_cancel_unknown_returns_false(self, env):
        engine = MatchingEngine(rank=1)
        assert not engine.cancel(env.event())


class TestLifecycle:
    def test_closed_engine_drops_deliveries(self, env):
        engine = MatchingEngine(rank=1)
        engine.close()
        engine.deliver(make_envelope())
        assert engine.unexpected_messages == 0

    def test_closed_engine_rejects_posts(self, env):
        engine = MatchingEngine(rank=1)
        engine.close()
        with pytest.raises(MPIError):
            engine.post(env, source=0, tag=0)

    def test_close_clears_state(self, env):
        engine = MatchingEngine(rank=1)
        engine.post(env, source=0, tag=0)
        engine.deliver(make_envelope(tag=5))
        engine.close()
        assert engine.pending_receives == 0
        assert engine.unexpected_messages == 0
        assert engine.closed
