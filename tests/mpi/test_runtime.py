"""Tests for the SimMPI runtime: lifecycle, liveness, accounting."""

import pytest

from repro.errors import MPIError
from repro.mpi import SimMPI
from repro.simkit import Environment


class TestLifecycle:
    def test_result_of_requires_completion(self):
        env = Environment()
        world = SimMPI(env, size=1)

        def program(ctx):
            yield ctx.compute(1.0)
            return "ok"

        world.spawn(program)
        with pytest.raises(MPIError):
            world.result_of(0)
        world.run()
        assert world.result_of(0) == "ok"

    def test_run_before_spawn_rejected(self):
        world = SimMPI(Environment(), size=1)
        with pytest.raises(MPIError):
            world.run()

    def test_double_spawn_rejected(self):
        world = SimMPI(Environment(), size=1)

        def program(ctx):
            yield ctx.compute(0.0)

        world.spawn(program)
        with pytest.raises(MPIError):
            world.spawn(program)

    def test_run_until_horizon(self):
        env = Environment()
        world = SimMPI(env, size=1)

        def program(ctx):
            yield ctx.compute(10.0)

        world.spawn(program)
        world.run(until=1.0)
        assert env.now == 1.0
        assert not world.all_done()

    def test_all_done(self):
        world = SimMPI(Environment(), size=2)

        def program(ctx):
            yield ctx.compute(float(ctx.rank))

        world.spawn(program)
        world.run()
        assert world.all_done()

    def test_world_size_validation(self):
        with pytest.raises(MPIError):
            SimMPI(Environment(), size=0)

    def test_compute_scale(self):
        env = Environment()
        world = SimMPI(env, size=1, compute_scale=0.5)

        def program(ctx):
            yield ctx.compute(10.0)

        world.spawn(program)
        world.run()
        assert env.now == pytest.approx(5.0)


class TestLiveness:
    def test_kill_rank_updates_liveness(self):
        world = SimMPI(Environment(), size=3)

        def program(ctx):
            yield ctx.compute(100.0)

        world.spawn(program)
        world.kill_rank(1)
        assert not world.is_alive(1)
        assert world.alive_ranks == {0, 2}

    def test_kill_is_idempotent(self):
        world = SimMPI(Environment(), size=2)

        def program(ctx):
            yield ctx.compute(1.0)

        world.spawn(program)
        world.kill_rank(0)
        world.kill_rank(0)
        assert world.counters["ranks_killed"] == 1

    def test_death_watchers_called(self):
        world = SimMPI(Environment(), size=2)
        deaths = []
        world.on_rank_death(deaths.append)

        def program(ctx):
            yield ctx.compute(1.0)

        world.spawn(program)
        world.kill_rank(1)
        assert deaths == [1]

    def test_send_to_dead_rank_completes_but_drops(self):
        env = Environment()
        world = SimMPI(env, size=2)

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.compute(1.0)
                yield from ctx.comm.send(b"into-void", dest=1)
                return "sent"
            yield ctx.compute(100.0)

        world.spawn(program)
        world.kill_rank(1)
        world.run()
        assert world.result_of(0) == "sent"
        assert world.counters["p2p_dropped"] >= 1

    def test_dead_rank_cannot_send(self):
        world = SimMPI(Environment(), size=2)

        def program(ctx):
            yield ctx.compute(1.0)

        world.spawn(program)
        world.kill_rank(0)
        with pytest.raises(MPIError):
            world.post_send(src=0, dst=1, tag=0, payload=b"", cid=0)

    def test_message_in_flight_to_dying_rank_dropped(self):
        env = Environment()
        world = SimMPI(env, size=2)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(b"x", dest=1)
                return "done"
            yield ctx.compute(100.0)

        world.spawn(program)

        def killer(env):
            # Kill after injection starts but likely before delivery.
            yield env.timeout(1e-9)
            world.kill_rank(1)

        env.process(killer(env))
        world.run()
        assert world.result_of(0) == "done"


class TestAccounting:
    def test_message_and_byte_counters(self):
        world = SimMPI(Environment(), size=2)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(b"x" * 100, dest=1)
            else:
                yield from ctx.comm.recv(source=0)

        world.spawn(program)
        world.run()
        assert world.counters["p2p_messages"] == 1
        assert world.counters["p2p_bytes"] >= 100

    def test_channels_quiet_after_completion(self):
        world = SimMPI(Environment(), size=2)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(b"q", dest=1)
            else:
                yield from ctx.comm.recv(source=0)

        world.spawn(program)
        world.run()
        assert world.channels_quiet()

    def test_channels_quiet_excludes_dead_destinations(self):
        env = Environment()
        world = SimMPI(env, size=2)

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.compute(1.0)
                yield from ctx.comm.send(b"void", dest=1)
            else:
                yield ctx.compute(100.0)

        world.spawn(program)
        world.kill_rank(1)
        world.run()
        assert world.channels_quiet()


class TestSubCommunicators:
    def test_create_comm_isolated_traffic(self):
        env = Environment()
        world = SimMPI(env, size=4)
        sub = world.create_comm([1, 3])
        out = {}

        def program(ctx):
            if ctx.rank in (1, 3):
                comm = sub[ctx.rank]
                from repro.mpi import ops

                total = yield from comm.allreduce(comm.rank, ops.SUM)
                out[ctx.rank] = (comm.rank, comm.size, total)
            else:
                yield ctx.compute(0.0)

        world.spawn(program)
        world.run()
        assert out[1] == (0, 2, 1)
        assert out[3] == (1, 2, 1)

    def test_duplicate_group_rejected(self):
        world = SimMPI(Environment(), size=3)
        from repro.errors import CommunicatorError

        with pytest.raises(CommunicatorError):
            world.create_comm([1, 1])

    def test_local_global_translation(self):
        world = SimMPI(Environment(), size=4)
        sub = world.create_comm([2, 0])
        comm = sub[2]
        assert comm.global_rank(0) == 2
        assert comm.local_rank_of(0) == 1
