"""Tests for collectives at many sizes (incl. non-powers of two)."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.mpi import SimMPI, ops
from repro.simkit import Environment

SIZES = [1, 2, 3, 4, 5, 7, 8, 12]


def run_collective(size, program):
    env = Environment()
    world = SimMPI(env, size=size)
    world.spawn(program)
    world.run()
    return world


@pytest.mark.parametrize("size", SIZES)
class TestEachCollective:
    def test_allreduce_sum(self, size):
        def program(ctx):
            total = yield from ctx.comm.allreduce(ctx.rank + 1, ops.SUM)
            return total

        world = run_collective(size, program)
        expected = size * (size + 1) // 2
        assert all(world.result_of(r) == expected for r in range(size))

    def test_bcast_from_every_root(self, size):
        def program(ctx):
            values = []
            for root in range(ctx.size):
                value = f"root{root}" if ctx.rank == root else None
                got = yield from ctx.comm.bcast(value, root)
                values.append(got)
            return values

        world = run_collective(size, program)
        expected = [f"root{r}" for r in range(size)]
        assert all(world.result_of(r) == expected for r in range(size))

    def test_reduce_max_at_root(self, size):
        def program(ctx):
            result = yield from ctx.comm.reduce(ctx.rank * 10, ops.MAX, root=0)
            return result

        world = run_collective(size, program)
        assert world.result_of(0) == (size - 1) * 10
        assert all(world.result_of(r) is None for r in range(1, size))

    def test_gather(self, size):
        def program(ctx):
            result = yield from ctx.comm.gather(ctx.rank**2, root=size - 1)
            return result

        world = run_collective(size, program)
        assert world.result_of(size - 1) == [r**2 for r in range(size)]

    def test_allgather(self, size):
        def program(ctx):
            result = yield from ctx.comm.allgather(chr(ord("a") + ctx.rank))
            return result

        world = run_collective(size, program)
        expected = [chr(ord("a") + r) for r in range(size)]
        assert all(world.result_of(r) == expected for r in range(size))

    def test_scatter(self, size):
        def program(ctx):
            values = [f"s{i}" for i in range(ctx.size)] if ctx.rank == 0 else None
            result = yield from ctx.comm.scatter(values, root=0)
            return result

        world = run_collective(size, program)
        assert all(world.result_of(r) == f"s{r}" for r in range(size))

    def test_alltoall(self, size):
        def program(ctx):
            outbox = [ctx.rank * 100 + dest for dest in range(ctx.size)]
            result = yield from ctx.comm.alltoall(outbox)
            return result

        world = run_collective(size, program)
        for rank in range(size):
            assert world.result_of(rank) == [s * 100 + rank for s in range(size)]

    def test_barrier_synchronises(self, size):
        log = []

        def program(ctx):
            yield ctx.compute(float(ctx.rank))  # stagger arrivals
            log.append(("before", ctx.rank, ctx.env.now))
            yield from ctx.comm.barrier()
            log.append(("after", ctx.rank, ctx.env.now))

        run_collective(size, program)
        last_before = max(t for phase, _, t in log if phase == "before")
        first_after = min(t for phase, _, t in log if phase == "after")
        assert first_after >= last_before


class TestNumericsAndValidation:
    def test_allreduce_numpy_array(self):
        def program(ctx):
            local = np.full(4, float(ctx.rank))
            total = yield from ctx.comm.allreduce(local, ops.SUM)
            return total

        world = run_collective(4, program)
        assert np.array_equal(world.result_of(0), np.full(4, 6.0))

    def test_reduce_min(self):
        def program(ctx):
            result = yield from ctx.comm.reduce(-ctx.rank, ops.MIN, root=0)
            return result

        world = run_collective(5, program)
        assert world.result_of(0) == -4

    def test_logical_ops(self):
        def program(ctx):
            any_true = yield from ctx.comm.allreduce(ctx.rank == 2, ops.LOR)
            all_true = yield from ctx.comm.allreduce(ctx.rank < 10, ops.LAND)
            return any_true, all_true

        world = run_collective(4, program)
        assert world.result_of(0) == (True, True)

    def test_bad_root_rejected(self):
        def program(ctx):
            with pytest.raises(CommunicatorError):
                yield from ctx.comm.bcast("x", root=5)

        run_collective(2, program)

    def test_scatter_wrong_length_rejected(self):
        def program(ctx):
            if ctx.rank == 0:
                with pytest.raises(CommunicatorError):
                    yield from ctx.comm.scatter(["only-one"], root=0)
            else:
                yield ctx.env.timeout(0)

        run_collective(2, program)

    def test_alltoall_wrong_length_rejected(self):
        def program(ctx):
            with pytest.raises(CommunicatorError):
                yield from ctx.comm.alltoall([1])
            yield ctx.env.timeout(0)

        run_collective(3, program)

    def test_back_to_back_collectives_do_not_cross_match(self):
        def program(ctx):
            first = yield from ctx.comm.allreduce(1, ops.SUM)
            second = yield from ctx.comm.allreduce(10, ops.SUM)
            third = yield from ctx.comm.allgather(ctx.rank)
            return first, second, third

        world = run_collective(6, program)
        assert world.result_of(3) == (6, 60, list(range(6)))


class TestScan:
    @pytest.mark.parametrize("size", SIZES)
    def test_inclusive_prefix_sums(self, size):
        def program(ctx):
            result = yield from ctx.comm.scan(ctx.rank + 1, ops.SUM)
            return result

        world = run_collective(size, program)
        for rank in range(size):
            assert world.result_of(rank) == (rank + 1) * (rank + 2) // 2

    def test_scan_respects_rank_order(self):
        # Fold strings: non-commutative, so ordering is observable.
        def program(ctx):
            result = yield from ctx.comm.scan(str(ctx.rank), lambda a, b: a + b)
            return result

        world = run_collective(4, program)
        assert world.result_of(3) == "0123"

    def test_scan_single_rank(self):
        def program(ctx):
            result = yield from ctx.comm.scan(7, ops.SUM)
            return result

        world = run_collective(1, program)
        assert world.result_of(0) == 7

    def test_scan_under_redundancy(self):
        from repro.redundancy import RedComm, ReplicaMap, SphereTracker
        from repro.simkit import Environment

        env = Environment()
        rmap = ReplicaMap(4, 2.0)
        tracker = SphereTracker(rmap)
        world = SimMPI(env, size=rmap.total_physical)
        results = {}

        def program(ctx):
            red = RedComm(ctx, rmap, tracker)
            value = yield from red.scan(red.rank, ops.SUM)
            results[ctx.rank] = (red.rank, value)

        world.spawn(program)
        world.run()
        for _physical, (virtual, value) in results.items():
            assert value == virtual * (virtual + 1) // 2
