"""Tests for point-to-point communication through the Communicator."""

import pytest

from repro.errors import CommunicatorError, MPIError
from repro.mpi import ANY_SOURCE, SimMPI
from repro.mpi.comm import USER_TAG_LIMIT
from repro.simkit import Environment


def run_world(size, program, **kwargs):
    env = Environment()
    world = SimMPI(env, size=size, **kwargs)
    world.spawn(program)
    world.run()
    return env, world


class TestBlocking:
    def test_send_recv_payload_and_status(self):
        out = {}

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send({"k": 1}, dest=1, tag=9)
            else:
                payload, status = yield from ctx.comm.recv(source=0, tag=9)
                out["payload"] = payload
                out["status"] = (status.source, status.tag)

        run_world(2, program)
        assert out["payload"] == {"k": 1}
        assert out["status"] == (0, 9)

    def test_messages_not_overtaken_same_channel(self):
        received = []

        def program(ctx):
            if ctx.rank == 0:
                for index in range(5):
                    yield from ctx.comm.send(index, dest=1, tag=2)
            else:
                for _ in range(5):
                    payload, _ = yield from ctx.comm.recv(source=0, tag=2)
                    received.append(payload)

        run_world(2, program)
        assert received == [0, 1, 2, 3, 4]

    def test_self_send(self):
        out = {}

        def program(ctx):
            request = ctx.comm.isend("loop", dest=ctx.rank, tag=1)
            payload, _ = yield from ctx.comm.recv(source=ctx.rank, tag=1)
            yield from request.wait()
            out[ctx.rank] = payload

        run_world(1, program)
        assert out[0] == "loop"

    def test_sendrecv_no_deadlock(self):
        out = {}

        def program(ctx):
            partner = 1 - ctx.rank
            payload, _ = yield from ctx.comm.sendrecv(
                f"from{ctx.rank}", partner, source=partner
            )
            out[ctx.rank] = payload

        run_world(2, program)
        assert out == {0: "from1", 1: "from0"}

    def test_wildcard_source_reports_actual(self):
        sources = []

        def program(ctx):
            if ctx.rank == 0:
                for _ in range(2):
                    _, status = yield from ctx.comm.recv(source=ANY_SOURCE, tag=1)
                    sources.append(status.source)
            else:
                yield from ctx.comm.send(b"", dest=0, tag=1)

        run_world(3, program)
        assert sorted(sources) == [1, 2]


class TestNonBlocking:
    def test_irecv_before_send(self):
        out = {}

        def program(ctx):
            if ctx.rank == 1:
                request = ctx.comm.irecv(source=0, tag=5)
                yield from ctx.comm.send(b"unrelated", dest=0, tag=6)
                payload, _ = yield from request.wait()
                out["got"] = payload
            else:
                yield from ctx.comm.recv(source=1, tag=6)
                yield from ctx.comm.send(b"finally", dest=1, tag=5)

        run_world(2, program)
        assert out["got"] == b"finally"

    def test_waitall_returns_in_request_order(self):
        out = {}

        def program(ctx):
            if ctx.rank == 0:
                requests = [
                    ctx.comm.irecv(source=1, tag=1),
                    ctx.comm.irecv(source=1, tag=2),
                ]
                results = yield from ctx.comm.waitall(requests)
                out["values"] = [payload for payload, _ in results]
            else:
                yield from ctx.comm.send("second", dest=0, tag=2)
                yield from ctx.comm.send("first", dest=0, tag=1)

        run_world(2, program)
        assert out["values"] == ["first", "second"]

    def test_waitany_returns_earliest(self):
        out = {}

        def program(ctx):
            if ctx.rank == 0:
                requests = [
                    ctx.comm.irecv(source=1, tag=1),
                    ctx.comm.irecv(source=1, tag=2),
                ]
                index, (payload, _) = yield from ctx.comm.waitany(requests)
                out["first_done"] = (index, payload)
                yield from requests[0].wait()
            else:
                yield from ctx.comm.send("fast", dest=0, tag=2)
                yield ctx.compute(1.0)
                yield from ctx.comm.send("slow", dest=0, tag=1)

        run_world(2, program)
        assert out["first_done"] == (1, "fast")

    def test_iprobe(self):
        out = {}

        def program(ctx):
            if ctx.rank == 0:
                out["before"] = ctx.comm.iprobe(source=1, tag=3)
                yield ctx.compute(1.0)  # let the message arrive
                out["after"] = ctx.comm.iprobe(source=1, tag=3)
                yield from ctx.comm.recv(source=1, tag=3)
            else:
                yield from ctx.comm.send(b"probe-me", dest=0, tag=3)

        run_world(2, program)
        assert out == {"before": False, "after": True}


class TestValidation:
    def test_user_tag_limit(self):
        def program(ctx):
            with pytest.raises(CommunicatorError):
                ctx.comm.isend(b"", dest=0, tag=USER_TAG_LIMIT)
            yield ctx.env.timeout(0)

        run_world(1, program)

    def test_negative_tag_rejected(self):
        def program(ctx):
            with pytest.raises(CommunicatorError):
                ctx.comm.isend(b"", dest=0, tag=-1)
            yield ctx.env.timeout(0)

        run_world(1, program)

    def test_bad_dest_rejected(self):
        def program(ctx):
            with pytest.raises(CommunicatorError):
                ctx.comm.isend(b"", dest=99)
            yield ctx.env.timeout(0)

        run_world(1, program)


class TestTiming:
    def test_communication_takes_simulated_time(self):
        env, _ = run_world(2, _pingpong_program)
        assert env.now > 0.0

    def test_larger_messages_take_longer(self):
        def make(nbytes):
            def program(ctx):
                if ctx.rank == 0:
                    yield from ctx.comm.send(b"x" * nbytes, dest=1)
                else:
                    yield from ctx.comm.recv(source=0)

            return program

        env_small, _ = run_world(2, make(10))
        env_big, _ = run_world(2, make(10**6))
        assert env_big.now > env_small.now


def _pingpong_program(ctx):
    if ctx.rank == 0:
        yield from ctx.comm.send(b"ping", dest=1)
        yield from ctx.comm.recv(source=1)
    else:
        yield from ctx.comm.recv(source=0)
        yield from ctx.comm.send(b"pong", dest=0)
