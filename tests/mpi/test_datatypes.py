"""Tests for payload sizing and digests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpi.datatypes import (
    ENVELOPE_OVERHEAD,
    message_wire_size,
    payload_digest,
    payload_nbytes,
)


class TestPayloadNbytes:
    def test_numpy_exact(self):
        array = np.zeros(100, dtype=np.float64)
        assert payload_nbytes(array) == 800

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_str_utf8(self):
        assert payload_nbytes("héllo") == len("héllo".encode("utf-8"))

    def test_scalars(self):
        for scalar in (None, True, 7, 2.5, 1 + 2j):
            assert payload_nbytes(scalar) == 8

    def test_numpy_scalar(self):
        assert payload_nbytes(np.float32(1.5)) == 4

    def test_list_recursion(self):
        assert payload_nbytes([1, 2]) == (8 + 8) + (8 + 8)

    def test_dict_recursion(self):
        assert payload_nbytes({"k": 1}) == 1 + 8 + 8

    def test_arbitrary_object_via_pickle(self):
        assert payload_nbytes(object()) > 0
        assert payload_nbytes(frozenset({1, 2, 3})) > 0

    def test_wire_size_adds_overhead(self):
        assert message_wire_size(b"xy") == 2 + ENVELOPE_OVERHEAD

    @given(st.binary(max_size=4096))
    def test_bytes_size_exact(self, blob):
        assert payload_nbytes(blob) == len(blob)


class TestPayloadDigest:
    def test_deterministic(self):
        array = np.arange(50, dtype=np.float64)
        assert payload_digest(array) == payload_digest(array.copy())

    def test_distinguishes_values(self):
        a = np.arange(50, dtype=np.float64)
        b = a.copy()
        b[13] += 1e-12
        assert payload_digest(a) != payload_digest(b)

    def test_distinguishes_dtype(self):
        a = np.zeros(4, dtype=np.float64)
        b = np.zeros(4, dtype=np.float32)
        assert payload_digest(a) != payload_digest(b)

    def test_distinguishes_shape(self):
        a = np.zeros((2, 2))
        b = np.zeros(4)
        assert payload_digest(a) != payload_digest(b)

    def test_scalars_and_strings(self):
        assert payload_digest(42) == payload_digest(42)
        assert payload_digest("a") != payload_digest("b")

    def test_fits_64_bits(self):
        assert 0 <= payload_digest(b"anything") < 2**64

    @given(st.binary(max_size=1024))
    def test_stable_for_bytes(self, blob):
        assert payload_digest(blob) == payload_digest(bytes(blob))
