"""End-to-end service tests over real sockets (ServerThread + client)."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.models import CombinedModel, recommend
from repro.service import ServeClient, ServerThread
from repro.service.server import parse_model
from repro.store import ResultsStore


def model(i: int = 0, **overrides) -> CombinedModel:
    params = dict(
        virtual_processes=20_000 + 500 * i,
        redundancy=1.0 + 0.25 * (i % 9),
        node_mtbf=5 * 365 * 24 * 3600.0,
        alpha=0.2,
        base_time=128 * 3600.0,
        checkpoint_cost=480.0,
        restart_cost=720.0,
    )
    params.update(overrides)
    return CombinedModel(**params)


@pytest.fixture(scope="module")
def server():
    runner = ServerThread(max_batch=32, max_wait=0.005).start()
    yield runner
    runner.stop()


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


class TestEvaluate:
    def test_concurrent_requests_bit_identical_to_scalar(self, server):
        def one(i):
            with ServeClient(port=server.port) as c:
                return c.evaluate(model(i))

        with ThreadPoolExecutor(max_workers=12) as pool:
            answers = list(pool.map(one, range(48)))
        for i, served in enumerate(answers):
            direct = model(i).evaluate()
            assert served["total_time"] == direct.total_time
            assert served["checkpoint_interval"] == direct.checkpoint_interval
            assert served["system_reliability"] == direct.system_reliability
            assert served["failure_rate"] == direct.failure_rate
            assert served["total_processes"] == direct.total_processes
            assert served["diverged"] is False

    def test_diverged_configuration_carries_infinity(self, client):
        served = client.evaluate(model(0, node_mtbf=100.0, base_time=1000.0))
        assert served["diverged"] is True
        assert served["total_time"] == float("inf")

    def test_missing_field_is_400(self, client):
        with pytest.raises(ConfigurationError, match="missing model fields"):
            client._request("POST", "/evaluate", {"virtual_processes": 10})

    def test_unknown_field_is_400(self, client):
        body = {**{f: 1 for f in (
            "virtual_processes", "redundancy", "node_mtbf", "alpha",
            "base_time", "checkpoint_cost", "restart_cost")}, "typo": 1}
        with pytest.raises(ConfigurationError, match="unknown model fields"):
            client._request("POST", "/evaluate", body)

    def test_out_of_domain_is_400(self, client):
        with pytest.raises(ConfigurationError, match="node_mtbf"):
            client._request(
                "POST", "/evaluate",
                {"virtual_processes": 10, "redundancy": 1.0,
                 "node_mtbf": -5.0, "alpha": 0.2, "base_time": 10.0,
                 "checkpoint_cost": 1.0, "restart_cost": 1.0},
            )


class TestRecommend:
    def test_matches_local_advisor(self, client):
        served = client.recommend(model(0), node_budget=60_000)
        local = recommend(model(0), node_budget=60_000)
        assert served["redundancy"] == local.redundancy
        assert served["checkpoint_interval"] == local.checkpoint_interval
        assert served["total_time"] == local.total_time
        assert served["total_processes"] == local.total_processes
        assert served["rationale"] == local.rationale
        assert len(served["candidates"]) == len(local.candidates)

    def test_requires_model_key(self, client):
        with pytest.raises(ConfigurationError, match="model"):
            client._request("POST", "/recommend", {"grid": [1.0]})


class TestIntrospection:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["draining"] is False

    def test_metrics_exports_batching_and_cache_stats(self, client):
        client.evaluate(model(1))
        payload = client.metrics()
        assert payload["batcher"]["evaluations"] >= 1
        assert payload["batcher"]["batches"] >= 1
        histogram = payload["metrics"]["histograms"]["serve.batch_size"]
        assert histogram["count"] >= 1
        assert "hit_ratio" in payload["recommend_cache"]

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError, match="no such endpoint"):
            client._request("GET", "/nope")

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServiceError, match="use POST"):
            client._request("GET", "/evaluate")


class TestStoreBackedRecommend:
    def test_second_request_hits_the_store(self, tmp_path):
        runner = ServerThread(store=ResultsStore(tmp_path)).start()
        try:
            with ServeClient(port=runner.port) as c:
                first = c.recommend(model(3))
                second = c.recommend(model(3))
                stats = c.metrics()
        finally:
            runner.stop()
        assert first == second
        assert stats["recommend_cache"]["store_hits"] >= 1
        assert stats["store"]["writes"] >= 1


class TestGracefulDrain:
    def test_drain_answers_then_refuses(self):
        runner = ServerThread().start()
        with ServeClient(port=runner.port) as c:
            assert c.evaluate(model(0))["diverged"] is False
        runner.stop()  # graceful: joins only after in-flight work drains
        with pytest.raises(OSError):
            with ServeClient(port=runner.port, timeout=1.0) as c:
                c.healthz()


class TestParseModel:
    def test_round_trips_the_wire_form(self):
        from repro.service import model_to_dict

        m = model(5, interval_rule="young", checkpoint_interval=1234.5)
        assert parse_model(model_to_dict(m)) == m

    def test_rejects_non_object(self):
        with pytest.raises(ConfigurationError):
            parse_model([1, 2, 3])
