"""Tests for the micro-batching engine (plain asyncio.run, no plugins)."""

import asyncio

import pytest

from repro.errors import (
    ConfigurationError,
    ModelDivergence,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.models import CombinedModel
from repro.obs.metrics import MetricsRegistry
from repro.service import MicroBatcher, validate_model


def model(i: int = 0, **overrides) -> CombinedModel:
    params = dict(
        virtual_processes=10_000 + 100 * i,
        redundancy=1.0 + 0.25 * (i % 9),
        node_mtbf=5 * 365 * 24 * 3600.0,
        alpha=0.2,
        base_time=128 * 3600.0,
        checkpoint_cost=300.0,
        restart_cost=600.0,
    )
    params.update(overrides)
    return CombinedModel(**params)


class TestCoalescing:
    def test_concurrent_submits_share_grid_calls(self):
        async def main():
            batcher = MicroBatcher(max_batch=16, max_wait=0.01)
            await batcher.start()
            answers = await asyncio.gather(
                *(batcher.submit(model(i)) for i in range(24))
            )
            await batcher.stop()
            return batcher, answers

        batcher, answers = asyncio.run(main())
        assert len(answers) == 24
        assert batcher.evaluations == 24
        assert batcher.batches < 24  # genuinely coalesced

    def test_batched_answers_bit_identical_to_scalar(self):
        async def main():
            batcher = MicroBatcher(max_batch=64, max_wait=0.01)
            await batcher.start()
            answers = await asyncio.gather(
                *(batcher.submit(model(i)) for i in range(32))
            )
            await batcher.stop()
            return answers

        answers = asyncio.run(main())
        for i, served in enumerate(answers):
            direct = model(i).evaluate()
            assert served["redundant_time"] == direct.redundant_time
            assert served["system_reliability"] == direct.system_reliability
            assert served["failure_rate"] == direct.failure_rate
            assert served["system_mtbf"] == direct.system_mtbf
            assert served["checkpoint_interval"] == direct.checkpoint_interval
            assert served["total_time"] == direct.total_time
            assert served["total_processes"] == direct.total_processes
            assert served["diverged"] is False

    def test_mixed_interval_rules_stay_grouped_and_identical(self):
        models = [
            model(0),
            model(1, interval_rule="young"),
            model(2, checkpoint_interval=1800.0),
            model(3, exact_reliability=True),
        ]

        async def main():
            batcher = MicroBatcher(max_batch=8, max_wait=0.01)
            await batcher.start()
            answers = await asyncio.gather(*(batcher.submit(m) for m in models))
            await batcher.stop()
            return answers

        for m, served in zip(models, asyncio.run(main())):
            assert served["total_time"] == m.evaluate().total_time

    def test_diverged_member_flags_without_poisoning_batch(self):
        # t_Red >= node MTBF under the linearised model: diverges.
        bad = model(0, node_mtbf=100.0, base_time=1000.0)
        good = model(1)

        async def main():
            batcher = MicroBatcher(max_batch=8, max_wait=0.01)
            await batcher.start()
            answers = await asyncio.gather(
                batcher.submit(bad), batcher.submit(good)
            )
            await batcher.stop()
            return answers

        served_bad, served_good = asyncio.run(main())
        assert served_bad["diverged"] is True
        with pytest.raises(ModelDivergence):
            bad.evaluate()
        assert served_good["total_time"] == good.evaluate().total_time


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"alpha": 1.5},
            {"alpha": -0.1},
            {"node_mtbf": 0.0},
            {"checkpoint_cost": 0.0},
            {"restart_cost": -1.0},
            {"redundancy": 0.5},
            {"virtual_processes": 0},
            {"base_time": -1.0},
        ],
    )
    def test_out_of_domain_request_rejected_before_queueing(self, overrides):
        with pytest.raises(ConfigurationError):
            validate_model(model(0, **overrides))

        async def main():
            batcher = MicroBatcher()
            await batcher.start()
            try:
                with pytest.raises(ConfigurationError):
                    await batcher.submit(model(0, **overrides))
                assert batcher.evaluations == 0
            finally:
                await batcher.stop()

        asyncio.run(main())


class TestBackpressure:
    def test_full_queue_sheds_with_429_error(self):
        async def main():
            metrics = MetricsRegistry()
            batcher = MicroBatcher(
                max_batch=4, max_wait=0.01, queue_limit=2, metrics=metrics
            )
            await batcher.start()
            # Create all submit tasks, then yield once: every task runs
            # its put_nowait before the collector task gets scheduled,
            # so exactly queue_limit are admitted.
            tasks = [
                asyncio.ensure_future(batcher.submit(model(i)))
                for i in range(10)
            ]
            await asyncio.sleep(0)
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            await batcher.stop()
            return batcher, metrics, outcomes

        batcher, metrics, outcomes = asyncio.run(main())
        shed = [o for o in outcomes if isinstance(o, ServiceOverloadedError)]
        served = [o for o in outcomes if isinstance(o, dict)]
        assert len(shed) == 8 and len(served) == 2
        assert batcher.shed == 8
        assert metrics.counter("serve.shed").value == 8

    def test_queue_depth_gauge_tracks(self):
        async def main():
            metrics = MetricsRegistry()
            batcher = MicroBatcher(max_wait=0.001, metrics=metrics)
            await batcher.start()
            await batcher.submit(model(0))
            await batcher.stop()
            return metrics

        metrics = asyncio.run(main())
        assert metrics.gauge("serve.queue_depth").value == 0
        assert metrics.histogram("serve.batch_size").count == 1


class TestLifecycle:
    def test_stop_drains_admitted_requests(self):
        async def main():
            batcher = MicroBatcher(max_batch=4, max_wait=0.05)
            await batcher.start()
            tasks = [
                asyncio.ensure_future(batcher.submit(model(i)))
                for i in range(6)
            ]
            await asyncio.sleep(0)  # admit everything
            await batcher.stop()  # sentinel lands behind them
            answers = await asyncio.gather(*tasks)
            return batcher, answers

        batcher, answers = asyncio.run(main())
        assert len(answers) == 6
        assert all(isinstance(a, dict) for a in answers)
        assert batcher.evaluations == 6

    def test_submit_after_stop_is_closed(self):
        async def main():
            batcher = MicroBatcher()
            await batcher.start()
            await batcher.stop()
            with pytest.raises(ServiceClosedError):
                await batcher.submit(model(0))

        asyncio.run(main())

    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_wait=-1.0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(queue_limit=0)
