"""Tests for Resource and Store."""

import pytest

from repro.errors import SimulationError
from repro.simkit import Environment, Resource, Store


class TestResource:
    def test_grant_when_free(self, env, run_process):
        resource = Resource(env, capacity=1)

        def body(env):
            yield resource.request()
            return resource.in_use

        assert run_process(env, body(env)) == 1

    def test_fifo_queuing(self, env):
        resource = Resource(env, capacity=1)
        order = []

        def user(env, name, hold):
            yield resource.request()
            order.append((env.now, name, "in"))
            yield env.timeout(hold)
            resource.release()

        env.process(user(env, "a", 2.0))
        env.process(user(env, "b", 1.0))
        env.process(user(env, "c", 1.0))
        env.run()
        assert order == [(0.0, "a", "in"), (2.0, "b", "in"), (3.0, "c", "in")]

    def test_capacity_two_runs_two_concurrently(self, env):
        resource = Resource(env, capacity=2)
        entries = []

        def user(env, name):
            yield resource.request()
            entries.append((env.now, name))
            yield env.timeout(1.0)
            resource.release()

        for name in "abc":
            env.process(user(env, name))
        env.run()
        assert entries == [(0.0, "a"), (0.0, "b"), (1.0, "c")]

    def test_release_without_request_raises(self, env):
        resource = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_queued_count(self, env):
        resource = Resource(env, capacity=1)
        resource.request()
        resource.request()
        assert resource.queued == 1

    def test_rejects_zero_capacity(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)


class TestStore:
    def test_put_then_get(self, env, run_process):
        store = Store(env)
        store.put("item")

        def body(env):
            value = yield store.get()
            return value

        assert run_process(env, body(env)) == "item"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        received = []

        def consumer(env):
            value = yield store.get()
            received.append((env.now, value))

        def producer(env):
            yield env.timeout(3.0)
            store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert received == [(3.0, "late")]

    def test_fifo_order(self, env, run_process):
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)

        def body(env):
            out = []
            for _ in range(3):
                out.append((yield store.get()))
            return out

        assert run_process(env, body(env)) == [1, 2, 3]

    def test_len(self, env):
        store = Store(env)
        store.put("x")
        store.put("y")
        assert len(store) == 2

    def test_cancel_get(self, env):
        store = Store(env)
        fetch = store.get()
        store.cancel_get(fetch)
        store.put("ignored-by-cancelled")
        env.run()
        assert not fetch.triggered
        assert len(store) == 1
