"""Tests for the simulation environment / scheduler."""

import pytest

from repro.errors import SimulationDeadlock, SimulationError
from repro.simkit import Environment


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=10.0).now == 10.0

    def test_run_to_horizon_advances_clock(self, env):
        env.run(until=7.0)
        assert env.now == 7.0

    def test_cannot_run_to_past(self, env):
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)


class TestScheduling:
    def test_fifo_for_simultaneous_events(self, env):
        order = []
        for tag in ("first", "second", "third"):
            event = env.timeout(1.0, value=tag)
            event.add_callback(lambda e: order.append(e.value))
        env.run()
        assert order == ["first", "second", "third"]

    def test_step_processes_single_event(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        env.step()
        assert env.now == 1.0

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(SimulationDeadlock):
            env.step()

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(4.0)
        assert env.peek() == 4.0

    def test_negative_delay_rejected(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            env._schedule(event, delay=-1.0)


class TestRunUntilEvent:
    def test_returns_event_value(self, env):
        target = env.timeout(2.0, value=99)
        assert env.run(until=target) == 99

    def test_raises_event_failure(self, env):
        target = env.event().fail(ValueError("bad"))
        with pytest.raises(ValueError):
            env.run(until=target)

    def test_deadlock_detected(self, env):
        pending = env.event()  # never triggered
        with pytest.raises(SimulationDeadlock):
            env.run(until=pending)

    def test_events_after_target_stay_queued(self, env):
        target = env.timeout(1.0)
        later = env.timeout(10.0)
        env.run(until=target)
        assert env.now == 1.0
        assert not later.processed


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def trace():
            env = Environment()
            log = []

            def worker(env, name):
                for _ in range(3):
                    yield env.timeout(1.0)
                    log.append((env.now, name))

            for name in ("a", "b", "c"):
                env.process(worker(env, name))
            env.run()
            return log

        assert trace() == trace()
