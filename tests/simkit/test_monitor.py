"""Tests for monitors and counters."""

from repro.simkit import Counter, Environment, Monitor


class TestMonitor:
    def test_records_with_timestamp(self, env):
        monitor = Monitor(env, "queue")
        env.run(until=2.0)
        monitor.record(5)
        assert monitor.samples == [(2.0, 5.0)]

    def test_values_and_mean(self, env):
        monitor = Monitor(env)
        for value in (1, 2, 3):
            monitor.record(value)
        assert monitor.values == [1.0, 2.0, 3.0]
        assert monitor.mean() == 2.0
        assert monitor.total() == 6.0

    def test_empty_mean_is_zero(self, env):
        assert Monitor(env).mean() == 0.0

    def test_len(self, env):
        monitor = Monitor(env)
        monitor.record(1)
        assert len(monitor) == 1


class TestCounter:
    def test_default_zero(self):
        assert Counter()["missing"] == 0.0

    def test_add(self):
        counter = Counter()
        counter.add("messages")
        counter.add("messages", 2)
        assert counter["messages"] == 3.0

    def test_as_dict_snapshot(self):
        counter = Counter()
        counter.add("x", 1.5)
        snapshot = counter.as_dict()
        counter.add("x")
        assert snapshot == {"x": 1.5}

    def test_merge(self):
        a = Counter()
        a.add("x", 1)
        b = Counter()
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a["x"] == 3.0 and a["y"] == 3.0
