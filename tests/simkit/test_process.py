"""Tests for generator-based processes."""

import pytest

from repro.errors import ProcessInterrupted, SimulationError
from repro.simkit import Environment


class TestBasics:
    def test_process_returns_value(self, env, run_process):
        def body(env):
            yield env.timeout(1.0)
            return "done"

        assert run_process(env, body(env)) == "done"

    def test_yield_value_passes_through(self, env, run_process):
        def body(env):
            got = yield env.timeout(1.0, value=42)
            return got

        assert run_process(env, body(env)) == 42

    def test_processes_interleave_by_time(self, env):
        log = []

        def body(env, name, delay):
            yield env.timeout(delay)
            log.append(name)

        env.process(body(env, "late", 2.0))
        env.process(body(env, "early", 1.0))
        env.run()
        assert log == ["early", "late"]

    def test_waiting_on_another_process(self, env, run_process):
        def child(env):
            yield env.timeout(3.0)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return result

        assert run_process(env, parent(env)) == "child-result"

    def test_non_generator_rejected(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_yield_non_event_raises(self, env):
        def body(env):
            yield 42

        process = env.process(body(env))
        with pytest.raises(SimulationError):
            env.run()
        assert process is not None

    def test_already_processed_event_resumes_immediately(self, env, run_process):
        fired = env.timeout(0.0)
        env.run(until=1.0)  # fire it

        def body(env):
            yield fired
            return env.now

        # Resumes without advancing time further.
        assert run_process(env, body(env)) == 1.0

    def test_exception_in_waited_process_propagates(self, env):
        def child(env):
            yield env.timeout(1.0)
            raise KeyError("inner")

        def parent(env):
            yield env.process(child(env))

        env.process(parent(env))
        with pytest.raises(KeyError):
            env.run()

    def test_unobserved_crash_raises_out_of_run(self, env):
        def body(env):
            yield env.timeout(1.0)
            raise RuntimeError("unhandled")

        env.process(body(env))
        with pytest.raises(RuntimeError):
            env.run()


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        seen = {}

        def victim(env):
            try:
                yield env.timeout(100.0)
            except ProcessInterrupted as interrupt:
                seen["cause"] = interrupt.cause
                seen["time"] = env.now

        target = env.process(victim(env))

        def killer(env):
            yield env.timeout(2.0)
            target.interrupt("node-down")

        env.process(killer(env))
        env.run()
        assert seen == {"cause": "node-down", "time": 2.0}

    def test_interrupted_process_can_continue(self, env, run_process):
        def victim(env):
            try:
                yield env.timeout(100.0)
            except ProcessInterrupted:
                pass
            yield env.timeout(1.0)
            return "recovered"

        target = env.process(victim(env))

        def killer(env):
            yield env.timeout(1.0)
            target.interrupt()

        env.process(killer(env))
        env.run()
        assert target.value == "recovered"

    def test_uncaught_interrupt_ends_process_cleanly(self, env):
        def victim(env):
            yield env.timeout(100.0)
            return "never"

        target = env.process(victim(env))

        def killer(env):
            yield env.timeout(1.0)
            target.interrupt()

        env.process(killer(env))
        env.run()
        assert target.triggered and target.ok
        assert target.value is None

    def test_interrupting_finished_process_is_noop(self, env):
        def quick(env):
            yield env.timeout(0.5)

        target = env.process(quick(env))
        env.run()
        target.interrupt()  # must not raise

    def test_interrupted_event_still_fires_for_others(self, env):
        shared = env.timeout(5.0, value="shared")
        results = []

        def victim(env):
            try:
                yield shared
            except ProcessInterrupted:
                results.append("interrupted")

        def bystander(env):
            value = yield shared
            results.append(value)

        target = env.process(victim(env))
        env.process(bystander(env))

        def killer(env):
            yield env.timeout(1.0)
            target.interrupt()

        env.process(killer(env))
        env.run()
        assert sorted(results) == ["interrupted", "shared"]

    def test_is_alive_lifecycle(self, env):
        def body(env):
            yield env.timeout(1.0)

        process = env.process(body(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive
