"""Tests for simkit event primitives."""

import pytest

from repro.errors import SimulationError
from repro.simkit import AllOf, AnyOf, Environment, Timeout
from repro.simkit.events import Event, first_failure


class TestEvent:
    def test_initial_state(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_schedules(self, env):
        event = env.event().succeed("payload")
        assert event.triggered
        assert not event.processed
        env.run()
        assert event.processed
        assert event.value == "payload"

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_double_succeed_raises(self, env):
        event = env.event().succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_fail_carries_exception(self, env):
        boom = RuntimeError("boom")
        event = env.event().fail(boom)
        env.run()
        assert not event.ok
        assert event.value is boom

    def test_delayed_succeed(self, env):
        event = env.event().succeed(delay=5.0)
        env.run()
        assert env.now == 5.0

    def test_callback_ordering(self, env):
        order = []
        event = env.event()
        event.add_callback(lambda _e: order.append(1))
        event.add_callback(lambda _e: order.append(2))
        event.succeed()
        env.run()
        assert order == [1, 2]

    def test_callback_on_processed_runs_immediately(self, env):
        event = env.event().succeed()
        env.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [None]

    def test_discard_callback(self, env):
        seen = []
        event = env.event()
        callback = lambda _e: seen.append(1)  # noqa: E731
        event.add_callback(callback)
        event.discard_callback(callback)
        event.succeed()
        env.run()
        assert seen == []


class TestTimeout:
    def test_fires_at_delay(self, env):
        Timeout(env, 2.5)
        env.run()
        assert env.now == 2.5

    def test_carries_value(self, env):
        timeout = env.timeout(1.0, value="tick")
        env.run()
        assert timeout.value == "tick"

    def test_rejects_negative_delay(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_zero_delay_ok(self, env):
        timeout = env.timeout(0.0)
        env.run()
        assert timeout.processed


class TestConditions:
    def test_allof_value_order(self, env):
        a = env.timeout(2.0, value="a")
        b = env.timeout(1.0, value="b")
        both = AllOf(env, [a, b])
        env.run()
        assert both.value == ["a", "b"]  # declaration order, not fire order

    def test_allof_empty_fires_immediately(self, env):
        both = AllOf(env, [])
        env.run()
        assert both.processed and both.value == []

    def test_allof_fails_on_child_failure(self, env):
        good = env.timeout(1.0)
        bad = env.event().fail(ValueError("x"))
        both = AllOf(env, [good, bad])
        env.run()
        assert not both.ok
        assert isinstance(both.value, ValueError)

    def test_anyof_first_wins(self, env):
        slow = env.timeout(5.0, value="slow")
        fast = env.timeout(1.0, value="fast")
        either = AnyOf(env, [slow, fast])
        env.run()
        assert either.value == (1, "fast")
        assert env.now == 5.0  # other event still fires

    def test_anyof_failure_propagates(self, env):
        bad = env.event().fail(RuntimeError("no"))
        either = AnyOf(env, [env.timeout(9.0), bad])
        env.run()
        assert not either.ok

    def test_mixed_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AllOf(env, [env.timeout(1), other.timeout(1)])

    def test_allof_with_already_processed_first_child(self, env):
        # Regression: an already-processed first child must not complete
        # the condition before the remaining children are counted.
        done = env.timeout(0.0, value="done")
        env.run(until=0.5)
        pending = env.timeout(1.0, value="late")
        both = AllOf(env, [done, pending])
        assert not both.triggered
        env.run()
        assert both.value == ["done", "late"]

    def test_allof_with_all_children_processed(self, env):
        first = env.timeout(0.0, value=1)
        second = env.timeout(0.0, value=2)
        env.run(until=0.5)
        both = AllOf(env, [first, second])
        env.run()
        assert both.value == [1, 2]

    def test_anyof_with_already_processed_child(self, env):
        done = env.timeout(0.0, value="x")
        env.run(until=0.5)
        either = AnyOf(env, [done, env.timeout(10.0)])
        env.run()
        assert either.value == (0, "x")


class TestFirstFailure:
    def test_returns_none_without_failures(self, env):
        events = [env.timeout(1.0)]
        env.run()
        assert first_failure(events) is None

    def test_returns_first_failed(self, env):
        boom = KeyError("gone")
        bad = env.event().fail(boom)
        env.run()
        assert first_failure([bad]) is boom
