"""Property tests: stored payloads round-trip bit-identically."""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CodecError
from repro.models import CombinedModel
from repro.errors import ModelDivergence
from repro.orchestration import JobReport
from repro.orchestration.job import TimelineEvent
from repro.store.codec import (
    CODEC_VERSION,
    decode,
    decode_payload,
    decode_report,
    decode_result,
    encode,
    encode_payload,
    encode_report,
    encode_result,
)

any_float = st.floats(allow_nan=True, allow_infinity=True)
small_int = st.integers(min_value=0, max_value=1000)

timeline_events = st.builds(
    TimelineEvent,
    time=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    kind=st.sampled_from(["attempt", "failure", "commit", "rollback"]),
    detail=st.text(max_size=20),
)

reports = st.builds(
    JobReport,
    completed=st.booleans(),
    total_time=any_float,
    attempts=small_int,
    failures_injected=small_int,
    rollbacks=small_int,
    checkpoints_committed=small_int,
    time_in_checkpoints=any_float,
    result=st.none() | st.integers() | st.text(max_size=10),
    checkpoint_union_time=any_float,
    counters=st.dictionaries(st.text(max_size=10), any_float, max_size=4),
    checkpoint_interval=st.none() | st.floats(min_value=1e-6, max_value=1e6),
    physical_processes=small_int,
    timeline=st.lists(timeline_events, max_size=3),
    checkpoints_skipped=small_int,
    checkpoint_retries=small_int,
    checkpoint_write_failures=small_int,
    max_rollback_depth=small_int,
    recovery_lines_skipped=small_int,
    cold_starts=small_int,
    storage_fault_counts=st.dictionaries(
        st.text(max_size=10), small_int, max_size=3
    ),
)


def strict_dumps(payload):
    """Serialize as the disk backend does: strict JSON, no raw NaN/inf."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True,
        allow_nan=False,
    )


class TestReportRoundTrip:
    @given(reports)
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_is_bit_identical(self, report):
        """encode -> strict JSON -> decode -> encode is byte-stable."""
        payload = encode_report(report)
        wire = strict_dumps(payload)  # raises if any raw NaN/inf leaked
        restored = decode_report(json.loads(wire))
        assert strict_dumps(encode_report(restored)) == wire

    @given(reports)
    @settings(max_examples=50, deadline=None)
    def test_fields_survive_exactly(self, report):
        restored = decode_report(json.loads(strict_dumps(encode_report(report))))
        assert restored.attempts == report.attempts
        assert restored.counters.keys() == report.counters.keys()
        for key, value in report.counters.items():
            came_back = restored.counters[key]
            if math.isnan(value):
                assert math.isnan(came_back)
            else:
                assert came_back == value
        assert restored.timeline == report.timeline
        assert restored.storage_fault_counts == report.storage_fault_counts

    def test_diverged_cell_with_chaos_counters(self):
        """The ISSUE's explicit case: inf total time + chaos stats."""
        report = JobReport(
            completed=False,
            total_time=math.inf,
            attempts=7,
            failures_injected=6,
            rollbacks=5,
            checkpoints_committed=4,
            time_in_checkpoints=math.nan,
            result=None,
            counters={"mpi.sends": 123.0, "lost": -math.inf},
            checkpoints_skipped=2,
            checkpoint_retries=9,
            max_rollback_depth=3,
            recovery_lines_skipped=1,
            cold_starts=1,
            storage_fault_counts={"write_fail": 4, "corrupt": 2},
        )
        wire = strict_dumps(encode_report(report))
        restored = decode_report(json.loads(wire))
        assert restored.total_time == math.inf
        assert math.isnan(restored.time_in_checkpoints)
        assert restored.counters["lost"] == -math.inf
        assert restored.storage_fault_counts == report.storage_fault_counts
        assert strict_dumps(encode_report(restored)) == wire


model_params = st.fixed_dictionaries(
    {
        "virtual_processes": st.integers(min_value=2, max_value=50_000),
        "redundancy": st.sampled_from([1.0, 1.25, 1.5, 2.0, 2.5, 3.0]),
        "node_mtbf": st.floats(min_value=1e5, max_value=1e9),
        "alpha": st.floats(min_value=0.0, max_value=1.0),
        "base_time": st.floats(min_value=1.0, max_value=1e5),
        "checkpoint_cost": st.floats(min_value=0.1, max_value=1e3),
        "restart_cost": st.floats(min_value=0.0, max_value=1e3),
    }
)


class TestResultRoundTrip:
    @given(model_params)
    @settings(max_examples=60, deadline=None)
    def test_combined_result_round_trips_equal(self, params):
        model = CombinedModel(**params)
        try:
            result = model.evaluate()
        except ModelDivergence:
            return  # nothing to store for this draw
        wire = strict_dumps(encode_result(result))
        restored = decode_result(json.loads(wire))
        # All-finite dataclass tree: equality IS bit-identity here.
        assert restored == result
        assert strict_dumps(encode_result(restored)) == wire


class TestEnvelopes:
    def test_tuples_come_back_as_tuples(self):
        assert decode(encode((1, (2.5, "x")))) == (1, (2.5, "x"))

    def test_nonstring_dict_keys_survive(self):
        value = {6.0: {1.25: 2}, "plain": 1}
        assert decode(encode(value)) == value

    def test_unregistered_dataclass_refused(self):
        import dataclasses

        @dataclasses.dataclass
        class Foreign:
            x: int

        with pytest.raises(CodecError):
            encode(Foreign(1))

    def test_unknown_type_refused(self):
        with pytest.raises(CodecError):
            encode(object())

    def test_unknown_tag_refused(self):
        with pytest.raises(CodecError):
            decode({"__f": "huge"})

    def test_foreign_codec_version_refused(self):
        payload = encode_payload({"x": 1})
        payload["codec"] = CODEC_VERSION + 1
        with pytest.raises(CodecError):
            decode_payload(payload)

    def test_wrong_payload_type_refused(self):
        with pytest.raises(CodecError):
            decode_report(encode_payload({"not": "a report"}))
