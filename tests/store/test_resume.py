"""Store facade + campaign resumability: the ISSUE's acceptance cases."""

from functools import partial

import pytest

from repro.models import CombinedModel, recommend
from repro.orchestration import JobConfig, run_redundancy_sweep
from repro.store import DEFAULT_STORE_DIR, STORE_ENV, ResultsStore, resolve_store
from repro.store.codec import encode_report
from repro.workloads import SyntheticWorkload

MTBFS = [3.0, 6.0]
DEGREES = [1.0, 2.0]


def base_config():
    return JobConfig(
        workload_factory=partial(
            SyntheticWorkload,
            total_steps=8,
            compute_seconds=0.01,
            message_bytes=1024,
        ),
        virtual_processes=4,
        seed=7,
        checkpoint_cost=0.05,
        restart_cost=0.05,
        expected_base_time=0.2,
        alpha_estimate=0.2,
    )


def wire(cells):
    """Cells as their exact stored wire form (NaN-safe comparison)."""
    return [
        (cell.node_mtbf, cell.redundancy, encode_report(cell.report))
        for cell in cells
    ]


class TestFacade:
    def test_report_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path)
        config = base_config()
        assert store.get_report(config) is None
        cells = run_redundancy_sweep(
            base_config(), node_mtbfs=[3.0], degrees=[1.0], store=store
        )
        # The sweep replaced mtbf/degree/seed; key the stored cell the
        # same way a resumed sweep will.
        assert store.writes == 1
        fresh = ResultsStore(tmp_path)
        resumed = run_redundancy_sweep(
            base_config(), node_mtbfs=[3.0], degrees=[1.0], store=fresh
        )
        assert fresh.hits == 1 and fresh.misses == 0
        assert wire(resumed) == wire(cells)

    def test_version_bump_invalidates(self, tmp_path):
        old = ResultsStore(tmp_path, version="0.9.0")
        run_redundancy_sweep(
            base_config(), node_mtbfs=[3.0], degrees=[1.0], store=old
        )
        assert len(old.index) == 1
        new = ResultsStore(tmp_path, version="1.0.0")
        assert new.invalidated == 1
        assert len(new.index) == 0

    def test_object_memoization(self, tmp_path):
        store = ResultsStore(tmp_path)
        model = CombinedModel(
            virtual_processes=50_000,
            redundancy=1.0,
            node_mtbf=5 * 365 * 24 * 3600.0,
            alpha=0.2,
            base_time=128 * 3600.0,
            checkpoint_cost=480.0,
            restart_cost=720.0,
        )
        params = {"model": model, "grid": (1.0, 2.0, 3.0)}
        assert store.get_object("recommend", params) is None
        rec = recommend(model, grid=(1.0, 2.0, 3.0))
        store.put_object("recommend", params, rec)
        restored = ResultsStore(tmp_path).get_object("recommend", params)
        assert restored == rec

    def test_hit_ratio_and_render(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.get_report(base_config())
        assert store.hit_ratio == 0.0
        text = store.render_stats()
        assert "0 hits" in text and "1 misses" in text


class TestResolveStore:
    def test_disabled_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path))
        assert resolve_store(disabled=True) is None

    def test_explicit_path_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "env"))
        store = resolve_store(path=str(tmp_path / "flag"))
        assert store.root.name == "flag"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "env"))
        assert resolve_store().root.name == "env"

    def test_resume_uses_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        store = resolve_store(resume=True)
        assert store.root.name == DEFAULT_STORE_DIR

    def test_nothing_selected_means_no_store(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert resolve_store() is None


class TestCampaignResume:
    def test_resumed_parallel_run_equals_cold_serial(self, tmp_path):
        """The satellite: workers=4 resumed campaign == cold serial run."""
        cold = run_redundancy_sweep(
            base_config(), node_mtbfs=MTBFS, degrees=DEGREES
        )
        store = ResultsStore(tmp_path)
        first = run_redundancy_sweep(
            base_config(), node_mtbfs=MTBFS, degrees=DEGREES, store=store
        )
        assert store.misses == 4 and store.writes == 4
        resumed_cells = []
        resumed = run_redundancy_sweep(
            base_config(),
            node_mtbfs=MTBFS,
            degrees=DEGREES,
            workers=4,
            store=store,
            progress=resumed_cells.append,
        )
        assert store.hits == 4
        assert wire(cold) == wire(first) == wire(resumed)
        # Progress fired for every restored cell, flagged as cached,
        # in spec (row-major) order.
        assert [c.cached for c in resumed_cells] == [True] * 4
        assert [(c.node_mtbf, c.redundancy) for c in resumed_cells] == [
            (m, d) for m in MTBFS for d in DEGREES
        ]
        assert all(cell.cached for cell in resumed)

    def test_partial_store_fills_in_the_gaps(self, tmp_path):
        store = ResultsStore(tmp_path)
        run_redundancy_sweep(
            base_config(), node_mtbfs=[MTBFS[0]], degrees=DEGREES, store=store
        )
        full = run_redundancy_sweep(
            base_config(), node_mtbfs=MTBFS, degrees=DEGREES, store=store
        )
        assert store.hits == 2  # first row restored
        assert [c.cached for c in full] == [True, True, False, False]
        cold = run_redundancy_sweep(
            base_config(), node_mtbfs=MTBFS, degrees=DEGREES
        )
        assert wire(full) == wire(cold)
