"""Tests for the on-disk backend: atomicity, CRC verification, LRU."""

import json

import pytest

from repro.errors import StoreError
from repro.store.backend import DiskBackend


def key(n: int) -> str:
    return f"{n:064x}"


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.put(key(1), {"a": [1, 2.5, "x"]})
        assert backend.get(key(1)) == {"a": [1, 2.5, "x"]}
        assert backend.has(key(1))

    def test_missing_key_is_a_counted_miss(self, tmp_path):
        backend = DiskBackend(tmp_path)
        assert backend.get(key(2)) is None
        assert backend.stats()["misses"] == 1

    def test_cross_instance_read(self, tmp_path):
        DiskBackend(tmp_path).put(key(3), {"v": 7})
        fresh = DiskBackend(tmp_path)
        assert fresh.get(key(3)) == {"v": 7}
        assert fresh.stats()["disk_hits"] == 1

    def test_overwrite(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.put(key(4), {"v": 1})
        backend.put(key(4), {"v": 2})
        assert backend.get(key(4)) == {"v": 2}

    def test_no_temp_files_left_behind(self, tmp_path):
        backend = DiskBackend(tmp_path)
        for n in range(10):
            backend.put(key(n), {"n": n})
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_malformed_key_rejected(self, tmp_path):
        backend = DiskBackend(tmp_path)
        with pytest.raises(StoreError):
            backend.put("not-hex!", {})
        with pytest.raises(StoreError):
            backend.get("ab")  # too short to shard


class TestCorruption:
    def _entry_path(self, tmp_path, k):
        return tmp_path / k[:2] / f"{k[2:]}.json"

    def test_bit_rot_is_quarantined_miss(self, tmp_path):
        backend = DiskBackend(tmp_path, lru_capacity=0)
        backend.put(key(5), {"v": 5})
        path = self._entry_path(tmp_path, key(5))
        record = json.loads(path.read_text())
        record["payload"]["v"] = 6  # flip a bit, keep valid JSON
        path.write_text(json.dumps(record))
        assert backend.get(key(5)) is None
        stats = backend.stats()
        assert stats["corrupt"] == 1 and stats["misses"] == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()

    def test_truncated_file_is_quarantined_miss(self, tmp_path):
        backend = DiskBackend(tmp_path, lru_capacity=0)
        backend.put(key(6), {"v": 6})
        path = self._entry_path(tmp_path, key(6))
        path.write_text(path.read_text()[:10])
        assert backend.get(key(6)) is None
        assert backend.stats()["corrupt"] == 1

    def test_rewrite_after_quarantine_recovers(self, tmp_path):
        backend = DiskBackend(tmp_path, lru_capacity=0)
        backend.put(key(7), {"v": 7})
        path = self._entry_path(tmp_path, key(7))
        path.write_text("garbage")
        assert backend.get(key(7)) is None
        backend.put(key(7), {"v": 7})
        assert backend.get(key(7)) == {"v": 7}


class TestLRU:
    def test_second_read_hits_memory(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.put(key(8), {"v": 8})
        fresh = DiskBackend(tmp_path)
        fresh.get(key(8))
        fresh.get(key(8))
        stats = fresh.stats()
        assert stats["disk_hits"] == 1 and stats["lru_hits"] == 1

    def test_capacity_bounds_residency(self, tmp_path):
        backend = DiskBackend(tmp_path, lru_capacity=2)
        for n in range(5):
            backend.put(key(n), {"n": n})
        assert len(backend._lru) == 2
        # Evicted entries still come back from disk.
        assert backend.get(key(0)) == {"n": 0}

    def test_zero_capacity_disables_lru(self, tmp_path):
        backend = DiskBackend(tmp_path, lru_capacity=0)
        backend.put(key(9), {"v": 9})
        backend.get(key(9))
        assert backend.stats()["lru_hits"] == 0


class TestDeleteAndEnumerate:
    def test_delete(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.put(key(10), {})
        assert backend.delete(key(10))
        assert not backend.delete(key(10))
        assert backend.get(key(10)) is None

    def test_iter_keys(self, tmp_path):
        backend = DiskBackend(tmp_path)
        wrote = {key(n) for n in (20, 21, 22)}
        for k in wrote:
            backend.put(k, {})
        assert set(backend.iter_keys()) == wrote
