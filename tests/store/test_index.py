"""Tests for the append-only store index."""

import json

from repro.store.index import StoreIndex


class TestReplay:
    def test_puts_and_deletes_replay(self, tmp_path):
        index = StoreIndex(tmp_path)
        index.record_put("aa", "job", "1.0.0")
        index.record_put("bb", "recommend", "1.0.0")
        index.record_delete("aa")
        fresh = StoreIndex(tmp_path)
        assert fresh.keys() == ["bb"]
        assert "bb" in fresh and "aa" not in fresh
        assert len(fresh) == 1

    def test_crash_truncated_tail_is_skipped(self, tmp_path):
        index = StoreIndex(tmp_path)
        index.record_put("aa", "job", "1.0.0")
        with open(index.path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "put", "key": "bb", "ki')  # torn write
        fresh = StoreIndex(tmp_path)
        assert fresh.keys() == ["aa"]

    def test_malformed_lines_are_skipped(self, tmp_path):
        index = StoreIndex(tmp_path)
        with open(index.path, "w", encoding="utf-8") as handle:
            handle.write("[1, 2]\n")          # not an op object
            handle.write('{"op": "put"}\n')   # no key
            handle.write(
                json.dumps({"op": "put", "key": "cc", "kind": "job",
                            "version": "1.0.0"}) + "\n"
            )
        assert StoreIndex(tmp_path).keys() == ["cc"]


class TestQueries:
    def test_kind_filter(self, tmp_path):
        index = StoreIndex(tmp_path)
        index.record_put("aa", "job", "1.0.0")
        index.record_put("bb", "recommend", "1.0.0")
        assert index.keys("job") == ["aa"]
        assert index.keys("recommend") == ["bb"]

    def test_stale_keys_by_version(self, tmp_path):
        index = StoreIndex(tmp_path)
        index.record_put("aa", "job", "1.0.0")
        index.record_put("bb", "job", "0.9.0")
        assert index.stale_keys("1.0.0") == ["bb"]
        assert index.stale_keys("0.9.0") == ["aa"]


class TestCompaction:
    def test_compact_drops_dead_ops(self, tmp_path):
        index = StoreIndex(tmp_path)
        for n in range(5):
            index.record_put(f"k{n}", "job", "1.0.0")
        for n in range(4):
            index.record_delete(f"k{n}")
        assert index.ops == 9
        index.compact()
        assert index.ops == 1
        lines = index.path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert StoreIndex(tmp_path).keys() == ["k4"]
