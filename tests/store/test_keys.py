"""Tests for canonical cache keys."""

from dataclasses import replace
from functools import partial

import numpy as np
import pytest

from repro.errors import UnkeyableError
from repro.models import CombinedModel
from repro.orchestration import JobConfig
from repro.store.keys import canonical, fingerprint, job_key, model_key
from repro.workloads import SyntheticWorkload


def config(**overrides):
    params = dict(
        workload_factory=partial(
            SyntheticWorkload,
            total_steps=10,
            compute_seconds=0.01,
            message_bytes=1024,
        ),
        virtual_processes=4,
        redundancy=1.5,
        node_mtbf=5.0,
        seed=42,
        checkpoint_cost=0.05,
        restart_cost=0.05,
        expected_base_time=0.5,
        alpha_estimate=0.2,
    )
    params.update(overrides)
    return JobConfig(**params)


class TestCanonical:
    def test_floats_key_by_exact_value(self):
        assert canonical(0.1) == {"__float": (0.1).hex()}
        assert canonical(0.1) != canonical(0.1 + 1e-16)

    def test_float_and_equal_int_key_differently(self):
        assert canonical(1.0) != canonical(1)

    def test_dict_key_order_is_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_numpy_scalars_normalise(self):
        assert canonical(np.float64(0.25)) == canonical(0.25)
        assert canonical(np.int64(3)) == canonical(3)

    def test_lambda_is_unkeyable(self):
        with pytest.raises(UnkeyableError):
            canonical(lambda: None)

    def test_closure_partial_is_unkeyable(self):
        def local():  # pragma: no cover - never called
            pass

        with pytest.raises(UnkeyableError):
            canonical(partial(local))

    def test_unknown_object_is_unkeyable(self):
        with pytest.raises(UnkeyableError):
            canonical(object())


class TestJobKey:
    def test_same_config_same_key(self):
        assert job_key(config()) == job_key(config())

    def test_seed_changes_key(self):
        assert job_key(config(seed=1)) != job_key(config(seed=2))

    def test_partial_kwarg_order_is_irrelevant(self):
        a = config(
            workload_factory=partial(
                SyntheticWorkload, total_steps=10, compute_seconds=0.01
            )
        )
        b = config(
            workload_factory=partial(
                SyntheticWorkload, compute_seconds=0.01, total_steps=10
            )
        )
        assert job_key(a) == job_key(b)

    def test_trace_fields_do_not_change_key(self):
        base = config()
        traced = replace(base, trace_dir="/tmp/x", trace_label="cell-1")
        assert job_key(base) == job_key(traced)

    def test_version_salts_key(self):
        assert job_key(config(), version="1") != job_key(config(), version="2")

    def test_result_affecting_fields_change_key(self):
        base = config()
        for field, value in (
            ("redundancy", 2.0),
            ("node_mtbf", 7.0),
            ("checkpoint_cost", 0.1),
            ("recovery_line_depth", 5),
        ):
            assert job_key(base) != job_key(replace(base, **{field: value}))


class TestModelAndFingerprint:
    def test_model_key_stable_and_sensitive(self):
        model = CombinedModel(
            virtual_processes=1000,
            redundancy=2.0,
            node_mtbf=1e6,
            alpha=0.2,
            base_time=3600.0,
            checkpoint_cost=60.0,
            restart_cost=120.0,
        )
        assert model_key(model) == model_key(model)
        assert model_key(model) != model_key(replace(model, alpha=0.21))

    def test_kind_separates_namespaces(self):
        assert fingerprint("job", {"x": 1}) != fingerprint("model", {"x": 1})

    def test_key_is_hex_sha256(self):
        key = fingerprint("job", {"x": 1})
        assert len(key) == 64
        int(key, 16)
