"""Tests for latency-delayed failure detection."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FailureDetector
from repro.mpi import SimMPI
from repro.simkit import Environment


def spawn_idle(world, duration=100.0):
    def program(ctx):
        yield ctx.compute(duration)

    world.spawn(program)


class TestDetection:
    def test_zero_latency_immediate(self, env):
        world = SimMPI(env, size=2)
        spawn_idle(world)
        detector = FailureDetector(world, latency=0.0)
        seen = []
        detector.subscribe(seen.append)
        world.kill_rank(1)
        assert seen == [1]

    def test_latency_delays_notification(self, env):
        world = SimMPI(env, size=2)
        spawn_idle(world)
        detector = FailureDetector(world, latency=3.0)
        seen = []
        detector.subscribe(lambda rank: seen.append((env.now, rank)))
        world.kill_rank(0)
        assert seen == []
        env.run(until=10.0)
        assert seen == [(3.0, 0)]

    def test_detections_log(self, env):
        world = SimMPI(env, size=3)
        spawn_idle(world)
        detector = FailureDetector(world, latency=1.0)
        world.kill_rank(0)
        world.kill_rank(2)
        env.run(until=5.0)
        assert [(t, r) for t, r in detector.detections] == [(1.0, 0), (1.0, 2)]

    def test_negative_latency_rejected(self, env):
        world = SimMPI(env, size=1)
        with pytest.raises(ConfigurationError):
            FailureDetector(world, latency=-1.0)

    def test_staggered_failures_keep_latency_offset(self, env):
        """Each detection lands exactly ``latency`` after its failure."""
        world = SimMPI(env, size=3)
        spawn_idle(world)
        detector = FailureDetector(world, latency=2.0)
        seen = []
        detector.subscribe(lambda rank: seen.append((env.now, rank)))
        world.kill_rank(1)
        env.run(until=5.0)
        world.kill_rank(2)
        env.run(until=20.0)
        assert seen == [(2.0, 1), (7.0, 2)]

    def test_all_subscribers_notified_after_latency(self, env):
        world = SimMPI(env, size=2)
        spawn_idle(world)
        detector = FailureDetector(world, latency=1.5)
        first, second = [], []
        detector.subscribe(first.append)
        detector.subscribe(second.append)
        world.kill_rank(0)
        assert first == [] and second == []
        env.run(until=10.0)
        assert first == [0] and second == [0]
