"""Tests for failure interarrival distributions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.faults import Exponential, LogNormal, Weibull


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestExponential:
    def test_mean(self, rng):
        dist = Exponential(mean=5.0)
        draws = [dist.sample(rng) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(5.0, rel=0.05)

    def test_positive(self, rng):
        dist = Exponential(mean=1.0)
        assert all(dist.sample(rng) > 0 for _ in range(100))

    def test_memoryless_shape(self, rng):
        # CV of an exponential is 1.
        dist = Exponential(mean=3.0)
        draws = np.array([dist.sample(rng) for _ in range(20_000)])
        assert np.std(draws) / np.mean(draws) == pytest.approx(1.0, rel=0.05)

    @given(st.floats(max_value=0.0, allow_nan=False))
    def test_rejects_bad_mean(self, mean):
        with pytest.raises(ConfigurationError):
            Exponential(mean)


class TestWeibull:
    def test_mean_preserved(self, rng):
        dist = Weibull(mean=10.0, shape=0.7)
        draws = [dist.sample(rng) for _ in range(40_000)]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.05)

    def test_decreasing_hazard_has_higher_cv(self, rng):
        # shape < 1 => more bursty than exponential.
        dist = Weibull(mean=1.0, shape=0.7)
        draws = np.array([dist.sample(rng) for _ in range(40_000)])
        assert np.std(draws) / np.mean(draws) > 1.1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Weibull(mean=0.0)
        with pytest.raises(ConfigurationError):
            Weibull(mean=1.0, shape=0.0)


class TestLogNormal:
    def test_mean_preserved(self, rng):
        dist = LogNormal(mean=4.0, cv=0.5)
        draws = [dist.sample(rng) for _ in range(40_000)]
        assert np.mean(draws) == pytest.approx(4.0, rel=0.05)

    def test_cv_preserved(self, rng):
        dist = LogNormal(mean=1.0, cv=0.8)
        draws = np.array([dist.sample(rng) for _ in range(40_000)])
        assert np.std(draws) / np.mean(draws) == pytest.approx(0.8, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormal(mean=-1.0)
        with pytest.raises(ConfigurationError):
            LogNormal(mean=1.0, cv=0.0)
