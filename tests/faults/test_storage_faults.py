"""Tests for the seeded storage fault model (the chaos layer's RNG core)."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import ReadVerdict, StorageFaultConfig, StorageFaultModel, WriteVerdict


class TestConfig:
    @pytest.mark.parametrize(
        "field", ["write_fail_prob", "read_fail_prob", "corrupt_prob", "latency_spike_prob"]
    )
    def test_probability_bounds_enforced(self, field):
        with pytest.raises(ConfigurationError):
            StorageFaultConfig(**{field: 1.5})
        with pytest.raises(ConfigurationError):
            StorageFaultConfig(**{field: -0.1})

    def test_negative_spike_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageFaultConfig(latency_spike=-1.0)

    def test_enabled_iff_any_probability_positive(self):
        assert not StorageFaultConfig().enabled
        assert not StorageFaultConfig(latency_spike=9.0).enabled
        assert StorageFaultConfig(corrupt_prob=0.01).enabled
        assert StorageFaultConfig(latency_spike_prob=0.5).enabled


class TestDisabledIsNoOp:
    def test_disabled_model_injects_nothing(self):
        model = StorageFaultModel(StorageFaultConfig())
        for _ in range(100):
            assert model.on_write() == WriteVerdict()
            assert model.on_read() == ReadVerdict()
        assert model.counters() == {
            "storage_writes_failed": 0,
            "storage_reads_failed": 0,
            "storage_blobs_corrupted": 0,
            "storage_latency_spikes": 0,
        }

    def test_disabled_model_draws_nothing(self):
        """The stream must not advance: disabled == strict no-op."""
        model = StorageFaultModel(StorageFaultConfig(seed=7))
        before = model._rng.bit_generator.state
        for _ in range(10):
            model.on_write()
            model.on_read()
        assert model._rng.bit_generator.state == before


class TestDeterminism:
    def _verdicts(self, config, n=50):
        model = StorageFaultModel(config)
        return [model.on_write() for _ in range(n)]

    def test_same_seed_same_verdicts(self):
        config = StorageFaultConfig(
            write_fail_prob=0.3, corrupt_prob=0.2, latency_spike_prob=0.1, seed=11
        )
        assert self._verdicts(config) == self._verdicts(config)

    def test_different_seed_different_verdicts(self):
        a = StorageFaultConfig(write_fail_prob=0.5, seed=1)
        b = StorageFaultConfig(write_fail_prob=0.5, seed=2)
        assert self._verdicts(a) != self._verdicts(b)

    def test_common_random_numbers_across_sweep_points(self):
        """Sweeping one probability keeps the other decisions aligned."""
        lo = StorageFaultConfig(write_fail_prob=0.4, corrupt_prob=0.0, seed=5)
        hi = StorageFaultConfig(write_fail_prob=0.4, corrupt_prob=0.9, seed=5)
        fails_lo = [v.fail for v in self._verdicts(lo)]
        fails_hi = [v.fail for v in self._verdicts(hi)]
        assert fails_lo == fails_hi
        assert any(fails_lo)


class TestDamage:
    def test_flips_exactly_one_bit(self):
        model = StorageFaultModel(StorageFaultConfig(corrupt_prob=1.0, seed=3))
        data = bytes(range(256))
        damaged = model.damage(data)
        assert damaged != data
        assert len(damaged) == len(data)
        diff = [(a ^ b) for a, b in zip(data, damaged) if a != b]
        assert len(diff) == 1
        assert bin(diff[0]).count("1") == 1

    def test_empty_payload_untouched(self):
        model = StorageFaultModel(StorageFaultConfig(corrupt_prob=1.0))
        assert model.damage(b"") == b""


class TestCounters:
    def test_counts_follow_injections(self):
        model = StorageFaultModel(
            StorageFaultConfig(write_fail_prob=1.0, latency_spike_prob=1.0, seed=0)
        )
        for _ in range(4):
            verdict = model.on_write()
            assert verdict.fail
            assert verdict.extra_latency == pytest.approx(0.05)
        counts = model.counters()
        assert counts["storage_writes_failed"] == 4
        assert counts["storage_latency_spikes"] == 4

    def test_fail_takes_precedence_over_corrupt(self):
        model = StorageFaultModel(
            StorageFaultConfig(write_fail_prob=1.0, corrupt_prob=1.0)
        )
        verdict = model.on_write()
        assert verdict.fail and not verdict.corrupt
