"""Tests for the Poisson failure injector."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import Exponential, FailureInjector, exponential_injector
from repro.simkit import Environment


def make_injector(env, slots=4, mtbf=1.0, kill=None, **kwargs):
    return exponential_injector(
        env,
        slots=slots,
        mtbf=mtbf,
        rng=np.random.default_rng(3),
        kill=kill or (lambda slot: None),
        **kwargs,
    )


class TestRates:
    def test_failure_rate_matches_mtbf(self, env):
        kills = []
        injector = make_injector(env, slots=10, mtbf=5.0, kill=kills.append)
        injector.start()
        env.run(until=1000.0)
        expected = 10 * 1000.0 / 5.0
        assert len(kills) == pytest.approx(expected, rel=0.1)

    def test_all_slots_fail_eventually(self, env):
        kills = []
        injector = make_injector(env, slots=5, mtbf=1.0, kill=kills.append)
        injector.start()
        env.run(until=100.0)
        assert set(kills) == {0, 1, 2, 3, 4}

    def test_deterministic_given_seed(self):
        def trace():
            env = Environment()
            kills = []
            injector = make_injector(env, kill=lambda s: kills.append((env.now, s)))
            injector.start()
            env.run(until=10.0)
            return kills

        assert trace() == trace()

    def test_records_match_kills(self, env):
        kills = []
        injector = make_injector(env, kill=kills.append)
        injector.start()
        env.run(until=20.0)
        assert injector.injected == len(kills)
        assert [record.slot for record in injector.records] == kills


class TestSuppression:
    def test_cr_window_drops_failures(self, env):
        window = {"open": False}
        kills = []
        injector = make_injector(
            env, slots=8, mtbf=0.5, kill=kills.append,
            cr_active=lambda: window["open"], suppress_during_cr=True,
        )
        injector.start()
        env.run(until=10.0)
        before = len(kills)
        window["open"] = True
        env.run(until=20.0)
        during = len(kills) - before
        assert during == 0
        assert injector.suppressed > 0
        window["open"] = False
        env.run(until=30.0)
        assert len(kills) > before  # failures resume

    def test_suppression_disabled_kills_anyway(self, env):
        kills = []
        injector = make_injector(
            env, slots=8, mtbf=0.5, kill=kills.append,
            cr_active=lambda: True, suppress_during_cr=False,
        )
        injector.start()
        env.run(until=5.0)
        assert kills
        assert injector.suppressed == 0


class TestLifecycle:
    def test_stop_halts_injection(self, env):
        kills = []
        injector = make_injector(env, mtbf=0.1, kill=kills.append)
        injector.start()
        env.run(until=5.0)
        injector.stop()
        count = len(kills)
        env.run(until=50.0)
        assert len(kills) == count

    def test_double_start_rejected(self, env):
        injector = make_injector(env)
        injector.start()
        with pytest.raises(ConfigurationError):
            injector.start()

    def test_injected_since(self, env):
        kills = []
        injector = make_injector(env, mtbf=0.2, kill=kills.append)
        injector.start()
        env.run(until=10.0)
        total = injector.injected
        late = injector.injected_since(5.0)
        assert 0 < late < total

    def test_injected_since_matches_linear_scan(self, env):
        """The bisect fast path must agree with the O(n) definition."""
        injector = make_injector(env, mtbf=0.3)
        injector.start()
        env.run(until=20.0)
        assert injector.injected > 10
        for time in (0.0, 0.001, 5.0, 13.37, 19.99, 20.0, 100.0):
            expected = sum(1 for r in injector.records if r.time >= time)
            assert injector.injected_since(time) == expected

    def test_injected_since_exact_boundary_inclusive(self, env):
        injector = make_injector(env, mtbf=0.5)
        injector.start()
        env.run(until=10.0)
        first = injector.records[0].time
        # A query at exactly a record's timestamp counts that record.
        assert injector.injected_since(first) == injector.injected

    def test_injected_since_empty(self, env):
        injector = make_injector(env)
        assert injector.injected_since(0.0) == 0

    def test_slot_validation(self, env):
        with pytest.raises(ConfigurationError):
            FailureInjector(
                env, slots=0, distribution=Exponential(1.0),
                rng=np.random.default_rng(0), kill=lambda s: None,
            )
