"""Tests for the repro-exp command-line interface."""

import pytest

from repro.cli import _parse_overrides, _parse_value, main
from repro.errors import ReproError


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("42", 42),
            ("2.5", 2.5),
            ("true", True),
            ("False", False),
            ("(1.0, 2.0)", (1.0, 2.0)),
            ("hello", "hello"),
        ],
    )
    def test_parse_value(self, text, expected):
        assert _parse_value(text) == expected

    def test_parse_overrides(self):
        assert _parse_overrides(["a=1", "b=x y"]) == {"a": 1, "b": "x y"}

    def test_bad_override(self):
        with pytest.raises(ReproError):
            _parse_overrides(["not-a-pair"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table4" in output and "fig13" in output

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "ASCI Q" in output

    def test_run_with_override(self, capsys):
        code = main(["run", "table2", "node_counts=(100, 1000)"])
        assert code == 0
        output = capsys.readouterr().out
        assert "100" in output

    def test_unknown_experiment(self, capsys):
        assert main(["run", "tableX"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_override_reports_error(self, capsys):
        assert main(["run", "table1", "oops"]) == 2

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out

    def test_campaign_failure_free(self, capsys):
        code = main(["campaign", "--failure-free", "degrees=(1.0, 2.0)"])
        assert code == 0
        output = capsys.readouterr().out
        # Per-cell progress lines precede the rendered table.
        assert output.count("cell mtbf=-") == 2
        assert "Table 5" in output

    def test_campaign_bad_override_reports_error(self, capsys):
        assert main(["campaign", "oops"]) == 2
        assert "error" in capsys.readouterr().err

    def test_chaos_subcommand(self, capsys):
        assert main(["chaos", "probs=(0.0, 0.3)"]) == 0
        output = capsys.readouterr().out
        assert "Chaos sweep" in output
        assert "corrupt" in output and "write-fail" in output

    def test_chaos_bad_override_reports_error(self, capsys):
        assert main(["chaos", "oops"]) == 2
        assert "error" in capsys.readouterr().err


class TestAdvise:
    def test_recommends_dual_at_scale(self, capsys):
        code = main([
            "advise", "--processes", "80000", "--mtbf", "5y",
            "--base-time", "128h",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "run this" in output
        assert "2.0x redundancy" in output
        assert "why:" in output

    def test_budget_constrained(self, capsys):
        code = main([
            "advise", "--processes", "80000", "--mtbf", "5y",
            "--base-time", "128h", "--node-budget", "100000",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "1.25x redundancy" in output or "1.0x redundancy" in output

    def test_bad_budget_errors(self, capsys):
        code = main([
            "advise", "--processes", "80000", "--mtbf", "5y",
            "--base-time", "128h", "--node-budget", "10",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_duration_parsing_errors(self, capsys):
        code = main([
            "advise", "--processes", "100", "--mtbf", "whenever",
            "--base-time", "128h",
        ])
        assert code == 2


class TestStoreFlags:
    def test_sweep_subcommands_accept_store_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("campaign", "chaos", "serve"):
            args = parser.parse_args([command, "--store", "/tmp/s"])
            assert args.store == "/tmp/s"
            args = parser.parse_args([command, "--resume"])
            assert args.resume and args.store is None
            args = parser.parse_args([command, "--no-store"])
            assert args.no_store

    def test_no_store_flag_disables_env(self, monkeypatch, tmp_path):
        from types import SimpleNamespace

        from repro.cli import _resolve_store
        from repro.store import STORE_ENV

        monkeypatch.setenv(STORE_ENV, str(tmp_path))
        args = SimpleNamespace(store=None, resume=False, no_store=True)
        assert _resolve_store(args) is None
        args = SimpleNamespace(store=None, resume=False, no_store=False)
        assert _resolve_store(args) is not None


class TestServeCommands:
    def test_bench_serve_quick_writes_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_serve.json"
        code = main([
            "bench-serve", "--quick", "--threads", "2",
            "--requests", "5", "--output", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["bit_identical_sample"] is True
        assert report["errors"] == 0
        assert report["requests"] == 10
        output = capsys.readouterr().out
        assert "bit-identical: True" in output
