"""Property-based stress tests across subsystem boundaries."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mpi import SimMPI, ops
from repro.redundancy import RedComm, ReplicaMap, SphereTracker
from repro.simkit import Environment


class TestMessageConservation:
    @given(
        st.integers(min_value=2, max_value=6),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # sender
                st.integers(min_value=0, max_value=5),  # receiver
                st.integers(min_value=0, max_value=7),  # tag
            ),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_sent_message_is_received_exactly_once(self, size, plan, seed):
        """Random traffic plans: matching neither loses nor duplicates."""
        plan = [(s % size, d % size, t) for s, d, t in plan]
        env = Environment()
        world = SimMPI(env, size=size)
        sends_by_rank = {}
        recvs_by_rank = {}
        for index, (sender, dest, tag) in enumerate(plan):
            sends_by_rank.setdefault(sender, []).append((dest, tag, index))
            recvs_by_rank.setdefault(dest, []).append((sender, tag))
        received = []

        def program(ctx):
            requests = []
            for sender, tag in recvs_by_rank.get(ctx.rank, []):
                requests.append(ctx.comm.irecv(source=sender, tag=tag))
            for dest, tag, index in sends_by_rank.get(ctx.rank, []):
                yield from ctx.comm.send(index, dest, tag)
            results = yield from ctx.comm.waitall(requests)
            for payload, _status in results:
                received.append(payload)

        world.spawn(program)
        world.run()
        assert sorted(received) == list(range(len(plan)))

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_allreduce_equals_local_sum_any_size(self, size):
        env = Environment()
        world = SimMPI(env, size=size)

        def program(ctx):
            value = yield from ctx.comm.allreduce(ctx.rank * 3 + 1, ops.SUM)
            return value

        world.spawn(program)
        world.run()
        expected = sum(rank * 3 + 1 for rank in range(size))
        assert all(world.result_of(rank) == expected for rank in range(size))


class TestRedundancyInvariants:
    @given(
        st.integers(min_value=2, max_value=5),
        st.floats(min_value=1.0, max_value=3.0),
        st.data(),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_replica_kills_never_corrupt_survivors(self, n, r, data):
        """Kill random non-critical replicas mid-run: every surviving
        rank must still compute the exact collective results."""
        rmap = ReplicaMap(n, r)
        tracker = SphereTracker(rmap)
        # Choose victims that never exhaust a sphere: at most
        # (replicas - 1) per virtual rank.
        victims = []
        for virtual in range(n):
            replicas = rmap.replicas_of(virtual)
            spare = len(replicas) - 1
            if spare > 0 and data.draw(st.booleans()):
                victims.append(replicas[-1])
        env = Environment()
        world = SimMPI(env, size=rmap.total_physical)
        results = {}

        def program(ctx):
            red = RedComm(ctx, rmap, tracker)
            total = 0
            for step in range(25):
                total += yield from red.allreduce(red.rank + step, ops.SUM)
            results[ctx.rank] = total
            return total

        world.spawn(program)
        for index, victim in enumerate(victims):
            def killer(env, victim=victim, delay=1e-4 * (index + 1)):
                yield env.timeout(delay)
                world.kill_rank(victim)

            env.process(killer(env))
        world.run()
        assert not tracker.job_failed
        values = set(results.values())
        assert len(values) == 1
        expected = sum(
            sum(range(n)) + n * step for step in range(25)
        )
        assert values == {expected}


class TestDeterminism:
    def test_full_stack_trace_reproducible(self):
        """Two identical fault-injected runs produce identical reports."""
        from repro.orchestration import JobConfig, ResilientJob
        from repro.workloads import SyntheticWorkload

        def build():
            return JobConfig(
                workload_factory=lambda: SyntheticWorkload(
                    total_steps=30, compute_seconds=0.03, message_bytes=4096
                ),
                virtual_processes=4,
                redundancy=1.5,
                node_mtbf=4.0,
                checkpoint_interval=0.3,
                checkpoint_cost=0.03,
                restart_cost=0.15,
                seed=99,
            )

        first = ResilientJob(build()).run()
        second = ResilientJob(build()).run()
        assert first.total_time == second.total_time
        assert first.failures_injected == second.failures_injected
        assert first.rollbacks == second.rollbacks
        assert first.counters == second.counters
