"""End-to-end integration: every substrate working together.

These are the repository's "does the whole thing hold up" tests: real
workloads, transparent redundancy, coordinated checkpointing, injected
failures, rollbacks — asserting both survival *and* numerical
correctness of the final answers.
"""

import pytest

from repro.orchestration import JobConfig, ResilientJob
from repro.redundancy import MSG_PLUS_HASH
from repro.workloads import (
    ConjugateGradientWorkload,
    StencilWorkload,
    SyntheticWorkload,
)


def cg_factory():
    return ConjugateGradientWorkload(
        grid=8, total_steps=30, cycle_length=25, flops_per_second=2e4
    )


def stencil_factory():
    return StencilWorkload(grid=12, total_steps=30, flops_per_second=2e4)


class TestCGUnderTheFullStack:
    @pytest.fixture(scope="class")
    def clean_result(self):
        report = ResilientJob(
            JobConfig(
                workload_factory=cg_factory, virtual_processes=4, checkpointing=False
            )
        ).run()
        return report.result

    @pytest.mark.parametrize("redundancy", [1.0, 1.5, 2.0, 3.0])
    def test_faulty_run_matches_clean_numerics(self, clean_result, redundancy):
        report = ResilientJob(
            JobConfig(
                workload_factory=cg_factory,
                virtual_processes=4,
                redundancy=redundancy,
                node_mtbf=15.0,
                checkpoint_interval=0.8,
                checkpoint_cost=0.05,
                restart_cost=0.2,
                seed=int(redundancy * 100),
            )
        ).run()
        assert report.completed
        assert report.result["checksum"] == pytest.approx(
            clean_result["checksum"], abs=1e-9
        )
        assert report.result["residual"] == pytest.approx(
            clean_result["residual"], rel=1e-9
        )

    def test_msg_plus_hash_mode_full_stack(self, clean_result):
        report = ResilientJob(
            JobConfig(
                workload_factory=cg_factory,
                virtual_processes=4,
                redundancy=2.0,
                mode=MSG_PLUS_HASH,
                node_mtbf=15.0,
                checkpoint_interval=0.8,
                checkpoint_cost=0.05,
                restart_cost=0.2,
                seed=77,
            )
        ).run()
        assert report.completed
        assert report.result["checksum"] == pytest.approx(
            clean_result["checksum"], abs=1e-9
        )

    def test_block_replica_strategy(self, clean_result):
        report = ResilientJob(
            JobConfig(
                workload_factory=cg_factory,
                virtual_processes=4,
                redundancy=1.5,
                replica_strategy="block",
                node_mtbf=15.0,
                checkpoint_interval=0.8,
                checkpoint_cost=0.05,
                restart_cost=0.2,
                seed=13,
            )
        ).run()
        assert report.completed
        assert report.result["checksum"] == pytest.approx(
            clean_result["checksum"], abs=1e-9
        )


class TestStencilUnderTheFullStack:
    def test_heat_answer_survives_failures(self):
        clean = ResilientJob(
            JobConfig(
                workload_factory=stencil_factory,
                virtual_processes=3,
                checkpointing=False,
            )
        ).run()
        faulty = ResilientJob(
            JobConfig(
                workload_factory=stencil_factory,
                virtual_processes=3,
                redundancy=2.0,
                node_mtbf=10.0,
                checkpoint_interval=0.5,
                checkpoint_cost=0.03,
                restart_cost=0.15,
                seed=4,
            )
        ).run()
        assert faulty.completed
        assert faulty.result["total_heat"] == pytest.approx(
            clean.result["total_heat"], rel=1e-12
        )


class TestEmergentCosts:
    def test_storage_emergent_checkpoint_cost(self):
        # No fixed c: checkpoint cost comes from image sizes and
        # storage bandwidth; the run still completes and recovers.
        report = ResilientJob(
            JobConfig(
                workload_factory=lambda: SyntheticWorkload(
                    total_steps=40, compute_seconds=0.05, message_bytes=2048
                ),
                virtual_processes=4,
                redundancy=1.0,
                node_mtbf=10.0,
                checkpoint_interval=0.5,
                checkpoint_cost=None,
                restart_cost=0.2,
                storage_write_bandwidth=1e6,
                seed=6,
            )
        ).run()
        assert report.completed
        assert report.time_in_checkpoints > 0

    def test_timed_restart_reads(self):
        # restart_cost=None: restart pays actual storage read time.
        report = ResilientJob(
            JobConfig(
                workload_factory=lambda: SyntheticWorkload(
                    total_steps=40, compute_seconds=0.05, message_bytes=2048
                ),
                virtual_processes=4,
                redundancy=1.0,
                node_mtbf=6.0,
                checkpoint_interval=0.4,
                checkpoint_cost=0.02,
                restart_cost=None,
                seed=8,
            )
        ).run()
        assert report.completed


class TestSuppressionSemantics:
    def test_unsuppressed_runs_longer_or_equal(self):
        def config(suppress):
            return JobConfig(
                workload_factory=lambda: SyntheticWorkload(
                    total_steps=50, compute_seconds=0.05, message_bytes=2048
                ),
                virtual_processes=4,
                redundancy=1.0,
                node_mtbf=6.0,
                checkpoint_interval=0.4,
                checkpoint_cost=0.1,
                restart_cost=0.3,
                suppress_failures_during_cr=suppress,
                seed=11,
            )

        suppressed = ResilientJob(config(True)).run()
        unsuppressed = ResilientJob(config(False)).run()
        assert suppressed.completed and unsuppressed.completed
        # With failures allowed inside C/R windows, at least as many
        # failures land and the run cannot be faster in expectation;
        # with a fixed seed we assert the count ordering.
        assert unsuppressed.failures_injected >= suppressed.failures_injected
