"""End-to-end observability: tracing must observe, never perturb.

Two contracts from the issue's acceptance criteria:

* with tracing **disabled** the simulation is bit-identical — same
  reports field for field — to a traced run of the same config (the
  tracer only reads ``env.now``, it never advances the clock);
* with tracing **enabled** across a multi-process campaign, the merged
  JSONL trace reconciles: every job's span sums agree with its own
  summary record within the report's 1% tolerance (exactly, in fact —
  the job clock only advances inside attempt/restart spans).
"""

import dataclasses
from functools import partial

from repro.cli import main
from repro.obs import ObsSession, build_report, read_trace, report_from_file
from repro.orchestration import JobConfig, ResilientJob, run_redundancy_sweep
from repro.workloads import SyntheticWorkload


def faulty_config(**overrides):
    """A small failure-prone job; picklable for pool fan-out."""
    params = dict(
        workload_factory=partial(
            SyntheticWorkload,
            total_steps=40,
            compute_seconds=0.02,
            message_bytes=2048,
        ),
        virtual_processes=4,
        node_mtbf=2.0,
        checkpoint_interval=0.3,
        checkpoint_cost=0.03,
        restart_cost=0.15,
        seed=11,
    )
    params.update(overrides)
    return JobConfig(**params)


def report_fields(report):
    """Every JobReport field except the trace-only union counter."""
    fields = dataclasses.asdict(report)
    fields.pop("checkpoint_union_time")
    return fields


class TestTracingNeverPerturbs:
    def test_traced_job_bit_identical_to_untraced(self, tmp_path):
        untraced = ResilientJob(faulty_config()).run()
        traced = ResilientJob(
            faulty_config(trace_dir=str(tmp_path / "parts"))
        ).run()
        assert untraced.failures_injected > 0  # the run actually rolls back
        assert report_fields(traced) == report_fields(untraced)

    def test_traced_sweep_bit_identical_to_untraced(self, tmp_path):
        kwargs = dict(node_mtbfs=[4.0, 12.0], degrees=[1.0, 2.0])
        untraced = run_redundancy_sweep(faulty_config(), **kwargs)
        traced = run_redundancy_sweep(
            faulty_config(trace_dir=str(tmp_path / "parts")), **kwargs
        )
        for a, b in zip(untraced, traced):
            assert report_fields(a.report) == report_fields(b.report)


class TestTracedCampaignReconciles:
    def run_traced(self, tmp_path, workers):
        path = str(tmp_path / "campaign.jsonl")
        obs = ObsSession(trace_path=path, metrics=True)
        obs.stamp("sweep", base_seed=11)
        base = faulty_config(trace_dir=obs.parts_dir)
        cells = run_redundancy_sweep(
            base,
            node_mtbfs=[4.0, 12.0],
            degrees=[1.0, 2.0],
            workers=workers,
            tracer=obs.tracer,
            metrics=obs.metrics,
        )
        obs.finalize(cells=len(cells))
        return path, cells, obs

    def check(self, path, cells):
        report = report_from_file(path)
        assert report.ok, [
            (job.job, job.discrepancy()) for job in report.failed_jobs
        ]
        assert len(report.jobs) == len(cells)
        # Spans reconcile against the *reports* too, not just the trace's
        # own summary records: per-job totals match each cell exactly.
        by_total = sorted(job.reported_total for job in report.jobs)
        expected = sorted(cell.report.total_time for cell in cells)
        assert by_total == expected
        for job in report.jobs:
            assert job.discrepancy() <= 0.01
            assert job.completed is True

    def test_serial(self, tmp_path):
        path, cells, _ = self.run_traced(tmp_path, workers=None)
        self.check(path, cells)

    def test_workers_4_merged_trace(self, tmp_path):
        path, cells, obs = self.run_traced(tmp_path, workers=4)
        self.check(path, cells)
        # Per-job manifests made it through the part merge.
        records = read_trace(path)
        manifests = [
            r for r in records
            if r["type"] == "manifest" and r.get("kind") == "job"
        ]
        assert len(manifests) == len(cells)
        assert records[0]["kind"] == "campaign"
        # Parent-side metrics saw every cell.
        assert obs.metrics.counter("campaign.cells").value == len(cells)

    def test_parallel_trace_reconciles_like_serial(self, tmp_path):
        serial_path, _, _ = self.run_traced(tmp_path / "serial", workers=None)
        pool_path, _, _ = self.run_traced(tmp_path / "pool", workers=4)

        def phase_totals(path):
            return {
                job.job: (job.attempts, job.checkpoint, job.restart)
                for job in build_report(read_trace(path)).jobs
            }

        assert phase_totals(serial_path) == phase_totals(pool_path)


class TestReportCli:
    def test_report_command_ok(self, tmp_path, capsys):
        obs = ObsSession(trace_path=str(tmp_path / "t.jsonl"))
        ResilientJob(faulty_config(trace_dir=obs.parts_dir)).run()
        obs.finalize(cells=1)
        assert main(["report", str(tmp_path / "t.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "reconciliation: all 1 job(s)" in out

    def test_report_command_flags_torn_trace(self, tmp_path, capsys):
        obs = ObsSession(trace_path=str(tmp_path / "t.jsonl"))
        ResilientJob(faulty_config(trace_dir=obs.parts_dir)).run()
        obs.finalize(cells=1)
        path = tmp_path / "t.jsonl"
        torn = [
            line for line in path.read_text().splitlines()
            if '"name": "restart"' not in line
        ]
        path.write_text("\n".join(torn) + "\n")
        assert main(["report", str(path)]) == 2
        assert "FAILED" in capsys.readouterr().out

    def test_report_command_missing_file(self, capsys):
        assert main(["report", "/nonexistent/trace.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err
