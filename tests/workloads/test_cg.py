"""Tests for the conjugate-gradient workload (real numerics)."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import ConfigurationError
from repro.mpi import SimMPI
from repro.simkit import Environment
from repro.workloads import ConjugateGradientWorkload, WorkShell
from repro.workloads.cg import _laplacian_rows


def run_cg(size, **kwargs):
    env = Environment()
    world = SimMPI(env, size=size)
    workloads = {}

    def program(ctx):
        workload = ConjugateGradientWorkload(**kwargs)
        workload.configure(ctx.rank, ctx.size, np.random.default_rng(0))
        shell = WorkShell(ctx, ctx.comm)
        for step in range(workload.total_steps):
            yield from workload.step(shell, step)
        workloads[ctx.rank] = workload
        result = yield from workload.finalize(shell)
        return result

    world.spawn(program)
    world.run()
    return env, world, workloads


class TestMatrix:
    def test_laplacian_is_symmetric_spd(self):
        grid = 6
        n = grid * grid
        full = _laplacian_rows(grid, 0, n).toarray()
        assert np.allclose(full, full.T)
        eigenvalues = np.linalg.eigvalsh(full)
        assert eigenvalues.min() > 0

    def test_row_blocks_tile_the_matrix(self):
        grid = 5
        n = grid * grid
        full = _laplacian_rows(grid, 0, n).toarray()
        top = _laplacian_rows(grid, 0, 10).toarray()
        bottom = _laplacian_rows(grid, 10, n).toarray()
        assert np.allclose(np.vstack([top, bottom]), full)


class TestSolver:
    def test_residual_decreases(self):
        _, _, workloads = run_cg(2, grid=8, total_steps=20, cycle_length=100)
        workload = workloads[0]
        assert workload.residual < np.sqrt(64.0)  # ||b|| = sqrt(n)

    def test_converges_to_true_solution(self):
        grid = 8
        n = grid * grid
        _, _, workloads = run_cg(4, grid=grid, total_steps=60, cycle_length=100)
        x_parts = [workloads[r].x for r in range(4)]
        x = np.concatenate(x_parts)
        full = _laplacian_rows(grid, 0, n).toarray()
        expected = np.linalg.solve(full, np.ones(n))
        assert np.allclose(x, expected, atol=1e-6)

    def test_rank_count_does_not_change_answer(self):
        results = {}
        for size in (1, 2, 4):
            _, world, _ = run_cg(size, grid=8, total_steps=30, cycle_length=100)
            results[size] = world.result_of(0)["checksum"]
        assert results[1] == pytest.approx(results[2], abs=1e-9)
        assert results[1] == pytest.approx(results[4], abs=1e-9)

    def test_cycle_reset_restarts_solve(self):
        _, _, workloads = run_cg(2, grid=8, total_steps=25, cycle_length=20)
        # After the reset at step 20, only 5 fresh iterations happened:
        # the residual is higher than a 25-straight-iteration solve.
        _, _, straight = run_cg(2, grid=8, total_steps=25, cycle_length=100)
        assert workloads[0].residual > straight[0].residual

    def test_compute_time_charged(self):
        env, _, _ = run_cg(2, grid=8, total_steps=10, cycle_length=50,
                           flops_per_second=1e6)
        fast_env, _, _ = run_cg(2, grid=8, total_steps=10, cycle_length=50,
                                flops_per_second=1e12)
        assert env.now > fast_env.now


class TestCheckpointContract:
    def test_state_roundtrip_bit_exact(self):
        _, _, workloads = run_cg(2, grid=8, total_steps=10, cycle_length=50)
        workload = workloads[0]
        state = workload.state()
        clone = ConjugateGradientWorkload(grid=8, total_steps=10, cycle_length=50)
        clone.configure(0, 2, np.random.default_rng(0))
        clone.load(state)
        for key in ("x", "r", "p"):
            assert np.array_equal(getattr(clone, key), getattr(workload, key))
        assert clone.rsold == workload.rsold
        assert clone.iteration == workload.iteration

    def test_state_is_a_copy(self):
        workload = ConjugateGradientWorkload(grid=8)
        workload.configure(0, 1, np.random.default_rng(0))
        state = workload.state()
        state["x"][:] = 999.0
        assert not np.any(workload.x == 999.0)


class TestValidation:
    def test_more_ranks_than_unknowns(self):
        workload = ConjugateGradientWorkload(grid=2)
        with pytest.raises(ConfigurationError):
            workload.configure(0, 5, np.random.default_rng(0))

    def test_bad_grid(self):
        with pytest.raises(ConfigurationError):
            ConjugateGradientWorkload(grid=1)

    def test_step_before_configure(self):
        workload = ConjugateGradientWorkload()
        with pytest.raises(ConfigurationError):
            next(workload.step(None, 0))

    def test_uneven_partition_covers_all_rows(self):
        workload = ConjugateGradientWorkload(grid=5)  # 25 rows over 4 ranks
        covered = 0
        for rank in range(4):
            instance = ConjugateGradientWorkload(grid=5)
            instance.configure(rank, 4, np.random.default_rng(0))
            covered += instance.row_end - instance.row_start
        assert covered == 25
