"""Tests for the Jacobi stencil workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mpi import SimMPI
from repro.simkit import Environment
from repro.workloads import StencilWorkload, WorkShell


def run_stencil(size, **kwargs):
    env = Environment()
    world = SimMPI(env, size=size)
    workloads = {}

    def program(ctx):
        workload = StencilWorkload(**kwargs)
        workload.configure(ctx.rank, ctx.size, np.random.default_rng(0))
        shell = WorkShell(ctx, ctx.comm)
        for step in range(workload.total_steps):
            yield from workload.step(shell, step)
        workloads[ctx.rank] = workload
        result = yield from workload.finalize(shell)
        return result

    world.spawn(program)
    world.run()
    return env, world, workloads


def global_field(workloads, size):
    return np.vstack([workloads[r].field for r in range(size)])


class TestPhysics:
    def test_heat_diffuses_downward(self):
        _, _, workloads = run_stencil(2, grid=16, total_steps=40)
        field = global_field(workloads, 2)
        assert field[1, 1:-1].mean() > field[8, 1:-1].mean() > 0.0

    def test_boundary_conditions_held(self):
        _, _, workloads = run_stencil(2, grid=16, total_steps=30)
        field = global_field(workloads, 2)
        assert np.all(field[0, 1:-1] == 1.0)  # hot top (interior columns)
        assert np.all(field[-1, :] == 0.0)  # cold bottom
        assert np.all(field[:, 0] == 0.0)  # cold sides
        assert np.all(field[:, -1] == 0.0)

    def test_update_deltas_shrink(self):
        _, _, short = run_stencil(2, grid=12, total_steps=5)
        _, _, long = run_stencil(2, grid=12, total_steps=80)
        assert long[0].last_delta < short[0].last_delta

    def test_rank_count_does_not_change_answer(self):
        fields = {}
        for size in (1, 2, 4):
            _, _, workloads = run_stencil(size, grid=12, total_steps=25)
            fields[size] = global_field(workloads, size)
        assert np.allclose(fields[1], fields[2])
        assert np.allclose(fields[1], fields[4])

    def test_residual_allreduce_consistent(self):
        _, world, _ = run_stencil(3, grid=12, total_steps=20, residual_every=10)
        results = [world.result_of(r) for r in range(3)]
        assert len({round(r["last_delta"], 15) for r in results}) == 1
        assert len({round(r["total_heat"], 9) for r in results}) == 1


class TestCheckpointContract:
    def test_state_roundtrip(self):
        _, _, workloads = run_stencil(2, grid=12, total_steps=10)
        state = workloads[1].state()
        clone = StencilWorkload(grid=12, total_steps=10)
        clone.configure(1, 2, np.random.default_rng(0))
        clone.load(state)
        assert np.array_equal(clone.field, workloads[1].field)
        assert clone.iteration == 10


class TestValidation:
    def test_too_many_ranks(self):
        workload = StencilWorkload(grid=4)
        with pytest.raises(ConfigurationError):
            workload.configure(0, 5, np.random.default_rng(0))

    def test_bad_grid(self):
        with pytest.raises(ConfigurationError):
            StencilWorkload(grid=2)

    def test_step_before_configure(self):
        with pytest.raises(ConfigurationError):
            next(StencilWorkload().step(None, 0))
