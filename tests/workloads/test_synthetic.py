"""Tests for the synthetic alpha-tunable workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mpi import SimMPI
from repro.simkit import Environment
from repro.workloads import SyntheticWorkload, WorkShell


def run_synthetic(size, **kwargs):
    env = Environment()
    world = SimMPI(env, size=size)

    def program(ctx):
        workload = SyntheticWorkload(**kwargs)
        workload.configure(ctx.rank, ctx.size, np.random.default_rng(0))
        shell = WorkShell(ctx, ctx.comm)
        for step in range(workload.total_steps):
            yield from workload.step(shell, step)
        result = yield from workload.finalize(shell)
        return result

    world.spawn(program)
    world.run()
    return env, world


class TestStructure:
    def test_compute_share_dominates_for_big_compute(self):
        env, _ = run_synthetic(2, total_steps=10, compute_seconds=1.0, message_bytes=64)
        assert env.now == pytest.approx(10.0, rel=0.01)

    def test_message_size_increases_time(self):
        env_small, _ = run_synthetic(
            4, total_steps=10, compute_seconds=0.0, message_bytes=64
        )
        env_big, _ = run_synthetic(
            4, total_steps=10, compute_seconds=0.0, message_bytes=10**6
        )
        assert env_big.now > env_small.now

    def test_single_rank_skips_ring(self):
        env, world = run_synthetic(1, total_steps=5, compute_seconds=0.1)
        assert world.result_of(0)["iterations"] == 5

    def test_results_consistent_across_ranks(self):
        _, world = run_synthetic(4, total_steps=20, allreduce_every=5)
        tokens = {world.result_of(r)["token_sum"] for r in range(4)}
        assert len(tokens) == 1

    def test_deterministic(self):
        _, world_a = run_synthetic(3, total_steps=15)
        _, world_b = run_synthetic(3, total_steps=15)
        assert world_a.result_of(0) == world_b.result_of(0)


class TestCheckpointContract:
    def test_state_roundtrip(self):
        workload = SyntheticWorkload(total_steps=5)
        workload.configure(1, 3, np.random.default_rng(0))
        workload.token = 123.0
        state = workload.state()
        clone = SyntheticWorkload(total_steps=5)
        clone.configure(1, 3, np.random.default_rng(0))
        clone.load(state)
        assert clone.token == 123.0
        assert np.array_equal(clone.payload, workload.payload)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_steps": 0},
            {"compute_seconds": -1.0},
            {"message_bytes": 4},
            {"allreduce_every": 0},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            SyntheticWorkload(**kwargs)

    def test_step_before_configure(self):
        with pytest.raises(ConfigurationError):
            next(SyntheticWorkload().step(None, 0))
