"""Tests for the master/slave Monte Carlo workload."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mpi import SimMPI
from repro.orchestration import JobConfig, ResilientJob
from repro.simkit import Environment
from repro.workloads import MonteCarloWorkload, WorkShell
from repro.workloads.montecarlo import darts_in_circle


def run_mc(size, **kwargs):
    env = Environment()
    world = SimMPI(env, size=size)

    def program(ctx):
        workload = MonteCarloWorkload(**kwargs)
        workload.configure(ctx.rank, ctx.size, np.random.default_rng(0))
        shell = WorkShell(ctx, ctx.comm)
        for step in range(workload.total_steps):
            yield from workload.step(shell, step)
        result = yield from workload.finalize(shell)
        return result

    world.spawn(program)
    world.run()
    return world


class TestDarts:
    def test_deterministic(self):
        assert darts_in_circle(3, 1000) == darts_in_circle(3, 1000)

    def test_chunks_differ(self):
        assert darts_in_circle(1, 5000) != darts_in_circle(2, 5000)

    def test_hit_rate_near_quarter_pi(self):
        hits = darts_in_circle(0, 100_000)
        assert hits / 100_000 == pytest.approx(math.pi / 4, abs=0.01)


class TestPlainRuns:
    @pytest.mark.parametrize("size", [2, 3, 5])
    def test_estimates_pi(self, size):
        world = run_mc(size, chunks=30, darts_per_chunk=2000)
        result = world.result_of(0)
        assert result["pi_estimate"] == pytest.approx(math.pi, abs=0.05)
        assert result["darts"] == 30 * 2000

    def test_all_ranks_share_estimate(self):
        world = run_mc(4, chunks=12)
        estimates = {world.result_of(r)["pi_estimate"] for r in range(4)}
        assert len(estimates) == 1

    def test_chunks_not_divisible_by_workers(self):
        world = run_mc(4, chunks=10)  # 3 workers, 10 chunks
        assert world.result_of(0)["darts"] == 10 * MonteCarloWorkload().darts_per_chunk

    def test_worker_count_does_not_change_answer(self):
        small = run_mc(2, chunks=20).result_of(0)["pi_estimate"]
        large = run_mc(5, chunks=20).result_of(0)["pi_estimate"]
        assert small == pytest.approx(large, abs=1e-12)


class TestUnderTheFullStack:
    def test_redundant_run_matches_plain(self):
        def factory():
            return MonteCarloWorkload(chunks=20, darts_per_chunk=1000)

        plain = ResilientJob(
            JobConfig(workload_factory=factory, virtual_processes=4,
                      checkpointing=False)
        ).run()
        redundant = ResilientJob(
            JobConfig(workload_factory=factory, virtual_processes=4,
                      redundancy=2.0, checkpointing=False)
        ).run()
        assert plain.result["pi_estimate"] == redundant.result["pi_estimate"]

    def test_survives_failures_with_rollbacks(self):
        def factory():
            return MonteCarloWorkload(
                chunks=24, darts_per_chunk=5000, flops_per_second=2e5
            )

        clean = ResilientJob(
            JobConfig(workload_factory=factory, virtual_processes=4,
                      checkpointing=False)
        ).run()
        faulty = ResilientJob(
            JobConfig(
                workload_factory=factory,
                virtual_processes=4,
                redundancy=1.5,
                node_mtbf=2.0,
                checkpoint_interval=0.2,
                checkpoint_cost=0.02,
                restart_cost=0.1,
                seed=23,
            )
        ).run()
        assert faulty.completed
        assert faulty.failures_injected > 0
        assert faulty.result["pi_estimate"] == clean.result["pi_estimate"]
        assert faulty.result["darts"] == clean.result["darts"]


class TestValidation:
    def test_needs_two_ranks(self):
        workload = MonteCarloWorkload()
        with pytest.raises(ConfigurationError):
            workload.configure(0, 1, np.random.default_rng(0))

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MonteCarloWorkload(chunks=0)
        with pytest.raises(ConfigurationError):
            MonteCarloWorkload(darts_per_chunk=0)

    def test_state_roundtrip(self):
        workload = MonteCarloWorkload()
        workload.configure(0, 3, np.random.default_rng(0))
        workload.hits = 77
        workload.next_chunk = 5
        state = workload.state()
        clone = MonteCarloWorkload()
        clone.configure(0, 3, np.random.default_rng(0))
        clone.load(state)
        assert clone.hits == 77 and clone.next_chunk == 5
