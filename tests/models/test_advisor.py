"""Tests for the configuration advisor."""

import math

import pytest

from repro import units
from repro.errors import ConfigurationError, ModelDivergence
from repro.models import (
    CombinedModel,
    clear_recommend_cache,
    recommend,
    recommend_cache_info,
)


def machine(**overrides):
    params = dict(
        virtual_processes=50_000,
        redundancy=1.0,
        node_mtbf=units.years(5),
        alpha=0.2,
        base_time=units.hours(128),
        checkpoint_cost=units.minutes(8),
        restart_cost=units.minutes(12),
    )
    params.update(overrides)
    return CombinedModel(**params)


class TestRecommendations:
    def test_large_scale_recommends_dual(self):
        rec = recommend(machine())
        assert rec.redundancy == 2.0
        assert rec.speedup_vs_plain > 1.5
        assert rec.total_processes == 100_000
        assert "MTBF" in rec.rationale

    def test_small_scale_recommends_plain(self):
        rec = recommend(machine(virtual_processes=100))
        assert rec.redundancy == 1.0
        assert rec.speedup_vs_plain == pytest.approx(1.0)
        assert "run plain" in rec.rationale

    def test_interval_matches_chosen_degree(self):
        rec = recommend(machine())
        direct = machine().with_redundancy(rec.redundancy).evaluate()
        assert rec.checkpoint_interval == pytest.approx(direct.checkpoint_interval)
        assert rec.total_time == pytest.approx(direct.total_time)

    def test_candidates_cover_grid(self):
        rec = recommend(machine())
        assert len(rec.candidates) == 9

    def test_divergent_plain_reports_infinite_speedup(self):
        # A scale where 1x has no finite completion time but 2x does.
        rec = recommend(machine(virtual_processes=1_000_000,
                                node_mtbf=units.days(120)))
        assert rec.redundancy >= 2.0
        assert math.isinf(rec.speedup_vs_plain)
        assert "divergent" in rec.rationale


class TestBudgets:
    def test_budget_excludes_expensive_degrees(self):
        rec = recommend(machine(), node_budget=80_000)
        # 2x needs 100k processes; best affordable is at most 1.5x.
        assert rec.total_processes <= 80_000
        assert rec.redundancy <= 1.5
        assert "budget" in rec.rationale

    def test_budget_below_plain_rejected(self):
        with pytest.raises(ConfigurationError):
            recommend(machine(), node_budget=10_000)

    def test_exact_budget_for_dual(self):
        rec = recommend(machine(), node_budget=100_000)
        assert rec.redundancy == 2.0


class TestCostWeights:
    def test_resource_weight_pushes_toward_plain(self):
        time_only = recommend(machine())
        resource_heavy = recommend(machine(), resource_weight=1.0)
        assert resource_heavy.redundancy <= time_only.redundancy

    def test_all_divergent_raises(self):
        with pytest.raises(ModelDivergence):
            recommend(
                machine(virtual_processes=10_000_000, node_mtbf=units.hours(3)),
                grid=(1.0,),
            )


class TestMemoization:
    def test_identical_calls_hit_the_cache(self):
        clear_recommend_cache()
        first = recommend(machine())
        info = recommend_cache_info()
        assert (info.hits, info.misses) == (0, 1)
        second = recommend(machine())
        info = recommend_cache_info()
        assert (info.hits, info.misses) == (1, 1)
        # A cache hit returns the very same object, not a recomputation.
        assert second is first

    def test_grid_type_does_not_split_entries(self):
        clear_recommend_cache()
        recommend(machine(), grid=[1.0, 2.0])
        recommend(machine(), grid=(1.0, 2.0))
        info = recommend_cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_different_inputs_miss(self):
        clear_recommend_cache()
        recommend(machine())
        recommend(machine(alpha=0.3))
        recommend(machine(), resource_weight=0.5)
        info = recommend_cache_info()
        assert (info.hits, info.misses) == (0, 3)

    def test_clear_empties_the_cache(self):
        recommend(machine())
        clear_recommend_cache()
        assert recommend_cache_info().currsize == 0
