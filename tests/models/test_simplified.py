"""Tests for the Section 6 simplified model."""

import math

import pytest

from repro import units
from repro.errors import ConfigurationError, ModelDivergence
from repro.models import simplified_total_time


def evaluate(**overrides):
    params = dict(
        virtual_processes=128,
        redundancy=2.0,
        node_mtbf=units.hours(18),
        alpha=0.2,
        base_time=units.minutes(46),
        checkpoint_cost=120.0,
        restart_cost=500.0,
    )
    params.update(overrides)
    return simplified_total_time(**params)


class TestStructure:
    def test_failure_free_limit(self):
        # Enormous MTBF: only t_Red plus a vanishing checkpoint term.
        value = evaluate(node_mtbf=units.years(10_000))
        t_red = 0.8 * units.minutes(46) + 0.2 * units.minutes(46) * 2
        assert value == pytest.approx(t_red, rel=0.02)

    def test_three_terms_decompose(self):
        from repro.models.checkpointing import young_interval
        from repro.models.redundancy import redundant_time, system_failure_rate

        t_red = redundant_time(units.minutes(46), 0.2, 2.0)
        rate = system_failure_rate(128, 2.0, t_red, units.hours(18))
        delta = young_interval(120.0, 1.0 / rate)
        expected = t_red + (t_red / delta) * 120.0 + t_red * rate * 500.0
        assert evaluate() == pytest.approx(expected)

    def test_worse_mtbf_costs_more(self):
        assert evaluate(node_mtbf=units.hours(6)) > evaluate(node_mtbf=units.hours(30))

    def test_paper_fig11_shape_min_at_high_r_for_low_mtbf(self):
        times = {
            r: evaluate(node_mtbf=units.hours(6), redundancy=r)
            for r in (1.0, 2.0, 3.0)
        }
        assert times[3.0] < times[2.0] < times[1.0]

    def test_paper_fig11_shape_min_at_2x_for_high_mtbf(self):
        times = {
            r: evaluate(node_mtbf=units.hours(30), redundancy=r)
            for r in (1.0, 2.0, 3.0)
        }
        assert times[2.0] < times[1.0]
        assert times[2.0] < times[3.0]

    def test_daly_rule_option(self):
        assert evaluate(interval_rule="daly") != evaluate(interval_rule="young")

    def test_literal_printed_form_larger(self):
        # The literal sqrt(2cTheta) term multiplies t_Red by a time, so
        # it dwarfs the intended count-times-cost form.
        assert evaluate(literal=True) > evaluate()

    def test_exact_reliability_flag(self):
        assert evaluate(exact_reliability=True) != evaluate()

    def test_bad_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate(interval_rule="magic")

    def test_divergence_for_hopeless_scale(self):
        with pytest.raises(ModelDivergence):
            evaluate(
                virtual_processes=10_000_000,
                redundancy=1.0,
                node_mtbf=units.hours(1),
                base_time=units.hours(128),
            )
