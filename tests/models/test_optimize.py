"""Tests for sweeps, optimal degrees, crossovers and break-evens."""

import math

import pytest

from repro import units
from repro.errors import ConfigurationError, ModelDivergence
from repro.models import (
    CombinedModel,
    PAPER_REDUNDANCY_GRID,
    clear_model_cache,
    find_crossover,
    model_cache_info,
    optimal_interval,
    optimal_redundancy,
    sweep_processes,
    sweep_redundancy,
    throughput_break_even,
)


def model(**overrides):
    params = dict(
        virtual_processes=50_000,
        redundancy=1.0,
        node_mtbf=units.years(5),
        alpha=0.2,
        base_time=units.hours(128),
        checkpoint_cost=units.minutes(8),
        restart_cost=units.minutes(12),
    )
    params.update(overrides)
    return CombinedModel(**params)


class TestSweeps:
    def test_paper_grid_has_nine_degrees(self):
        assert PAPER_REDUNDANCY_GRID == (1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0)

    def test_sweep_covers_grid(self):
        points = sweep_redundancy(model())
        assert [p.redundancy for p in points] == list(PAPER_REDUNDANCY_GRID)

    def test_divergent_points_marked(self):
        doomed = model(virtual_processes=1_000_000, node_mtbf=units.days(120))
        points = sweep_redundancy(doomed, grid=[1.0, 3.0])
        assert points[0].diverged
        assert math.isinf(points[0].total_time)
        assert not points[1].diverged

    def test_optimal_redundancy_is_min(self):
        best = optimal_redundancy(model())
        points = sweep_redundancy(model())
        assert best.total_time == min(p.total_time for p in points)

    def test_optimal_at_scale_is_2x(self):
        assert optimal_redundancy(model()).redundancy == 2.0

    def test_all_divergent_raises(self):
        doomed = model(virtual_processes=10_000_000, node_mtbf=units.hours(5))
        with pytest.raises(ModelDivergence):
            optimal_redundancy(doomed, grid=[1.0])

    def test_sweep_processes(self):
        points = sweep_processes(model(), 2.0, [100, 1000, 10_000])
        times = [p.total_time for p in points]
        assert times == sorted(times)  # weak scaling: more procs, more time


class TestOptimalInterval:
    def test_daly_near_numeric_optimum(self):
        configuration = model(redundancy=2.0)
        daly = configuration.evaluate().checkpoint_interval
        numeric = optimal_interval(configuration)
        assert numeric == pytest.approx(daly, rel=0.25)

    def test_bad_bracket(self):
        with pytest.raises(ConfigurationError):
            optimal_interval(model(), bracket_factor=1.0)


class TestCrossovers:
    def test_fig13_crossover_ordering(self):
        cross_2x = find_crossover(model(), 1.0, 2.0)
        cross_3x = find_crossover(model(), 1.0, 3.0)
        assert cross_2x.processes < cross_3x.processes

    def test_fig13_crossover_band(self):
        # Paper: 4,351 and 12,551; ours must land in the same bands.
        cross_2x = find_crossover(model(), 1.0, 2.0)
        cross_3x = find_crossover(model(), 1.0, 3.0)
        assert 1_000 < cross_2x.processes < 20_000
        assert 5_000 < cross_3x.processes < 50_000

    def test_crossover_is_tight(self):
        cross = find_crossover(model(), 1.0, 2.0)
        below = model().with_processes(cross.processes - 1)
        at = model().with_processes(cross.processes)
        assert below.with_redundancy(2.0).total_time_or_inf() > (
            below.with_redundancy(1.0).total_time_or_inf()
        )
        assert at.with_redundancy(2.0).total_time_or_inf() <= (
            at.with_redundancy(1.0).total_time_or_inf()
        )

    def test_never_crossing_raises(self):
        # 2.5x never beats 2x at these settings within the cap.
        with pytest.raises(ModelDivergence):
            find_crossover(model(), 2.0, 2.5, max_processes=100_000)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            find_crossover(model(), 1.0, 2.0, max_processes=10, min_processes=10)

    def test_min_processes_boundary_hit_exactly(self):
        # When the high degree already wins at the search floor, the
        # floor itself is reported — no probe below it.
        cross = find_crossover(model(), 1.0, 2.0)
        floor = cross.processes + 1_000
        clamped = find_crossover(model(), 1.0, 2.0, min_processes=floor)
        assert clamped.processes == floor

    def test_crossover_found_at_max_processes_itself(self):
        # Capping the search exactly at the true crossover still finds it.
        cross = find_crossover(model(), 1.0, 2.0)
        capped = find_crossover(
            model(), 1.0, 2.0, max_processes=cross.processes
        )
        assert capped.processes == cross.processes
        assert capped.high_time <= capped.low_time

    def test_cap_one_below_crossover_raises(self):
        cross = find_crossover(model(), 1.0, 2.0)
        with pytest.raises(ModelDivergence):
            find_crossover(
                model(), 1.0, 2.0, max_processes=cross.processes - 1
            )

    def test_high_degree_never_winning_raises(self):
        # Partial 2.5x pays 2.5x communication but only ceil-level spheres
        # protect; it never beats plain 2x within the cap.
        with pytest.raises(ModelDivergence) as excinfo:
            find_crossover(model(), 2.0, 2.5, max_processes=50_000)
        assert "never beats" in str(excinfo.value)


class TestEvaluationCache:
    def test_cache_hits_accumulate(self):
        clear_model_cache()
        find_crossover(model(), 1.0, 2.0)
        first = model_cache_info()
        find_crossover(model(), 1.0, 2.0)
        second = model_cache_info()
        # Re-running the same search answers entirely from the memo.
        assert second.hits > first.hits
        assert second.misses == first.misses

    def test_cached_values_match_direct_evaluation(self):
        clear_model_cache()
        cross = find_crossover(model(), 1.0, 2.0)
        direct = (
            model()
            .with_processes(cross.processes)
            .with_redundancy(2.0)
            .total_time_or_inf()
        )
        assert cross.high_time == direct

    def test_clear_resets_statistics(self):
        find_crossover(model(), 1.0, 2.0)
        clear_model_cache()
        info = model_cache_info()
        assert info.hits == 0 and info.misses == 0 and info.currsize == 0


class TestThroughputBreakEven:
    def test_fig14_band(self):
        point = throughput_break_even(model(), redundancy=2.0, jobs=2)
        # Paper: 78,536; same order of magnitude required.
        assert 20_000 < point.processes < 300_000

    def test_two_jobs_fit(self):
        point = throughput_break_even(model(), redundancy=2.0, jobs=2)
        plain = model().with_processes(point.processes).total_time_or_inf()
        redundant = (
            model()
            .with_processes(point.processes)
            .with_redundancy(2.0)
            .total_time_or_inf()
        )
        assert 2 * redundant <= plain

    def test_more_jobs_need_more_processes(self):
        two = throughput_break_even(model(), jobs=2)
        three = throughput_break_even(model(), jobs=3)
        assert three.processes > two.processes

    def test_jobs_validation(self):
        with pytest.raises(ConfigurationError):
            throughput_break_even(model(), jobs=0)

    def test_never_fitting_raises(self):
        # 50 back-to-back 2x jobs can't fit in one 1x job at small scale.
        with pytest.raises(ModelDivergence):
            throughput_break_even(model(), jobs=50, max_processes=10_000)
