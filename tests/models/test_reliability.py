"""Tests for Eqs. 2-4 (node and sphere reliability)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.models import node_failure_probability, node_reliability, sphere_reliability

positive_time = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
mtbf = st.floats(min_value=1e-3, max_value=1e12, allow_nan=False)


class TestNodeFailureProbability:
    def test_linearised_form(self):
        assert node_failure_probability(1.0, 10.0) == pytest.approx(0.1)

    def test_exact_form(self):
        expected = 1.0 - math.exp(-0.1)
        assert node_failure_probability(1.0, 10.0, exact=True) == pytest.approx(expected)

    def test_linearised_clamped_at_one(self):
        assert node_failure_probability(100.0, 1.0) == 1.0

    def test_exact_below_one_for_moderate_exposure(self):
        assert node_failure_probability(5.0, 1.0, exact=True) < 1.0

    def test_zero_exposure(self):
        assert node_failure_probability(0.0, 5.0) == 0.0
        assert node_failure_probability(0.0, 5.0, exact=True) == 0.0

    def test_linearisation_accurate_for_large_theta(self):
        linear = node_failure_probability(1.0, 1e6)
        exact = node_failure_probability(1.0, 1e6, exact=True)
        assert linear == pytest.approx(exact, rel=1e-5)

    @given(positive_time, mtbf)
    def test_probability_in_unit_interval(self, t, theta):
        for exact in (False, True):
            p = node_failure_probability(t, theta, exact=exact)
            assert 0.0 <= p <= 1.0

    @given(positive_time, mtbf)
    def test_linearised_upper_bounds_exact(self, t, theta):
        # 1 - e^-x <= x: the linearisation is pessimistic.
        assert node_failure_probability(t, theta) >= node_failure_probability(
            t, theta, exact=True
        ) - 1e-12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            node_failure_probability(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            node_failure_probability(1.0, 0.0)


class TestNodeReliability:
    @given(positive_time, mtbf)
    def test_complementarity(self, t, theta):
        assert node_reliability(t, theta) + node_failure_probability(
            t, theta
        ) == pytest.approx(1.0)

    def test_decreasing_in_time(self):
        assert node_reliability(1.0, 10.0) > node_reliability(5.0, 10.0)


class TestSphereReliability:
    def test_eq4_formula(self):
        # R = 1 - (t/theta)^k
        assert sphere_reliability(1.0, 10.0, k=2) == pytest.approx(1 - 0.01)

    def test_k1_matches_node(self):
        assert sphere_reliability(2.0, 10.0, k=1) == node_reliability(2.0, 10.0)

    @given(
        positive_time,
        mtbf,
        st.integers(min_value=1, max_value=5),
    )
    def test_monotone_in_k(self, t, theta, k):
        assert (
            sphere_reliability(t, theta, k + 1)
            >= sphere_reliability(t, theta, k) - 1e-12
        )

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            sphere_reliability(1.0, 10.0, k=0)
        with pytest.raises(ConfigurationError):
            sphere_reliability(1.0, 10.0, k=1.5)
