"""Tests for Eqs. 12-15 (lost work, restart+rework, total time, Daly)."""

import math

import pytest
from hypothesis import given, settings, strategies as st
from scipy import integrate

from repro import units
from repro.errors import ConfigurationError, ModelDivergence
from repro.models import (
    daly_interval,
    expected_lost_work,
    expected_restart_rework,
    segment_failure_pdf,
    time_breakdown,
    total_time,
    young_interval,
)

intervals = st.floats(min_value=1e-2, max_value=1e5, allow_nan=False)
costs = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
mtbfs = st.floats(min_value=1e-1, max_value=1e8, allow_nan=False)


class TestSegmentPdf:
    def test_integrates_to_one(self):
        delta, c, theta = 3.0, 0.5, 10.0
        value, _err = integrate.quad(
            lambda t: segment_failure_pdf(t, delta, c, theta), 0.0, delta + c
        )
        assert value == pytest.approx(1.0, rel=1e-6)

    def test_decreasing_density(self):
        assert segment_failure_pdf(0.0, 3.0, 0.5, 10.0) > segment_failure_pdf(
            3.0, 3.0, 0.5, 10.0
        )

    def test_out_of_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            segment_failure_pdf(5.0, 3.0, 0.5, 10.0)


class TestLostWork:
    def test_matches_numeric_integral(self):
        delta, c, theta = 4.0, 1.0, 7.0
        work_part, _ = integrate.quad(
            lambda t: t * segment_failure_pdf(t, delta, c, theta), 0.0, delta
        )
        checkpoint_part, _ = integrate.quad(
            lambda t: delta * segment_failure_pdf(t, delta, c, theta),
            delta,
            delta + c,
        )
        assert expected_lost_work(delta, c, theta) == pytest.approx(
            work_part + checkpoint_part, rel=1e-6
        )

    @given(intervals, costs, mtbfs)
    @settings(max_examples=150)
    def test_bounded_by_interval(self, delta, c, theta):
        lost = expected_lost_work(delta, c, theta)
        assert 0.0 <= lost <= delta + 1e-9

    def test_large_mtbf_limit_half_interval(self):
        # theta >> delta: failures uniform in the work phase, plus the
        # checkpoint phase contributing full-delta losses.
        delta, c = 10.0, 0.0
        assert expected_lost_work(delta, c, 1e9) == pytest.approx(delta / 2, rel=1e-3)

    def test_small_mtbf_loses_little(self):
        # Failures arrive almost immediately: little work to lose.
        assert expected_lost_work(10.0, 1.0, 0.01) < 0.1


class TestRestartRework:
    @given(costs, costs, mtbfs)
    @settings(max_examples=150)
    def test_bounded_by_phase_length(self, lost, restart, theta):
        value = expected_restart_rework(lost, restart, theta)
        assert 0.0 <= value <= lost + restart + 1e-9

    def test_zero_phase(self):
        assert expected_restart_rework(0.0, 0.0, 5.0) == 0.0

    def test_reliable_system_pays_full_phase(self):
        assert expected_restart_rework(3.0, 2.0, 1e9) == pytest.approx(5.0, rel=1e-6)

    def test_eq13_hand_check(self):
        # x = 1, theta = 1: t_RR = (1-e^-1)(1 - 2 e^-1) + e^-1.
        x, theta = 1.0, 1.0
        expected = (1 - math.exp(-1)) * (theta - math.exp(-1) * (x + theta)) + math.exp(
            -1
        ) * x
        assert expected_restart_rework(0.5, 0.5, theta) == pytest.approx(expected)


class TestTotalTime:
    def test_failure_free(self):
        assert total_time(100.0, 10.0, 1.0, 0.0, 5.0) == pytest.approx(110.0)

    def test_eq14_fixed_point(self):
        t, delta, c, rate, restart = 100.0, 10.0, 1.0, 1e-3, 5.0
        theta = 1.0 / rate
        t_lw = expected_lost_work(delta, c, theta)
        t_rr = expected_restart_rework(t_lw, restart, theta)
        expected = (t + t * c / delta) / (1 - rate * t_rr)
        assert total_time(t, delta, c, rate, restart) == pytest.approx(expected)

    def test_divergence_raises(self):
        with pytest.raises(ModelDivergence):
            total_time(100.0, 10.0, 1.0, 1.0, 100.0)

    def test_infinite_rate_raises(self):
        with pytest.raises(ModelDivergence):
            total_time(100.0, 10.0, 1.0, math.inf, 5.0)

    @given(
        st.floats(min_value=1.0, max_value=1e6),
        intervals,
        st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=100)
    def test_at_least_base_plus_checkpoints(self, t, delta, c):
        value = total_time(t, delta, c, 0.0, 0.0)
        assert value >= t

    def test_monotone_in_failure_rate(self):
        low = total_time(100.0, 10.0, 1.0, 1e-4, 5.0)
        high = total_time(100.0, 10.0, 1.0, 1e-3, 5.0)
        assert high > low


class TestIntervals:
    def test_young_formula(self):
        assert young_interval(2.0, 100.0) == pytest.approx(math.sqrt(400.0))

    def test_daly_eq15_hand_check(self):
        c, theta = 2.0, 100.0
        ratio = c / (2 * theta)
        expected = math.sqrt(2 * c * theta) * (
            1 + math.sqrt(ratio) / 3 + ratio / 9
        ) - c
        assert daly_interval(c, theta) == pytest.approx(expected)

    def test_daly_guard_for_costly_checkpoints(self):
        assert daly_interval(300.0, 100.0) == 100.0

    def test_daly_close_to_young_for_cheap_checkpoints(self):
        c, theta = 1e-3, 1e6
        assert daly_interval(c, theta) == pytest.approx(
            young_interval(c, theta), rel=1e-2
        )

    def test_paper_sqrt10_magnification(self):
        # Figure 4 vs 6: c differing by 10x scales delta by ~sqrt(10).
        theta = units.hours(1)
        ratio = daly_interval(units.minutes(10), theta) / daly_interval(
            units.minutes(1), theta
        )
        assert ratio == pytest.approx(math.sqrt(10), rel=0.2)

    @given(
        st.floats(min_value=1e-9, max_value=1e4, allow_nan=False),
        mtbfs,
    )
    @settings(max_examples=150)
    def test_daly_positive(self, c, theta):
        assert daly_interval(c, theta) > 0.0

    def test_daly_near_numeric_optimum(self):
        # Eq. 15 should sit near the argmin of Eq. 14 over delta.
        c, theta, restart = 1.0, 500.0, 5.0
        rate = 1.0 / theta
        daly = daly_interval(c, theta)
        t_daly = total_time(1000.0, daly, c, rate, restart)
        for factor in (0.25, 0.5, 2.0, 4.0):
            assert t_daly <= total_time(1000.0, daly * factor, c, rate, restart) * 1.001


class TestBreakdown:
    def test_shares_sum_to_one(self):
        breakdown = time_breakdown(100.0, 10.0, 1.0, 1e-3, 5.0)
        total = (
            breakdown.work
            + breakdown.checkpoint
            + breakdown.recompute
            + breakdown.restart
        )
        assert total == pytest.approx(1.0)

    def test_failure_free_shares(self):
        breakdown = time_breakdown(100.0, 10.0, 1.0, 0.0, 5.0)
        assert breakdown.work == pytest.approx(100.0 / 110.0)
        assert breakdown.restart == 0.0
        assert breakdown.recompute == 0.0
        assert breakdown.expected_failures == 0.0

    def test_checkpoint_count(self):
        breakdown = time_breakdown(100.0, 10.0, 1.0, 0.0, 5.0)
        assert breakdown.checkpoints_taken == pytest.approx(10.0)

    def test_useful_fraction_alias(self):
        breakdown = time_breakdown(100.0, 10.0, 1.0, 1e-3, 5.0)
        assert breakdown.useful_fraction == breakdown.work

    def test_higher_rate_lower_work_share(self):
        quiet = time_breakdown(100.0, 10.0, 1.0, 1e-4, 5.0)
        noisy = time_breakdown(100.0, 10.0, 1.0, 5e-3, 5.0)
        assert noisy.work < quiet.work
