"""Tests for the combined pipeline (Section 4.3)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.errors import ConfigurationError, ModelDivergence
from repro.models import CombinedModel


def paper_model(**overrides):
    params = dict(
        virtual_processes=50_000,
        redundancy=2.0,
        node_mtbf=units.years(5),
        alpha=0.2,
        base_time=units.hours(128),
        checkpoint_cost=units.minutes(10),
        restart_cost=units.minutes(15),
    )
    params.update(overrides)
    return CombinedModel(**params)


class TestPipeline:
    def test_result_fields_consistent(self):
        result = paper_model().evaluate()
        assert result.redundant_time == pytest.approx(
            0.8 * units.hours(128) + 0.2 * units.hours(128) * 2
        )
        assert result.system_mtbf == pytest.approx(1.0 / result.failure_rate)
        assert result.total_time >= result.redundant_time
        assert result.total_processes == 100_000
        assert result.node_seconds == result.total_processes * result.total_time

    def test_expected_counts(self):
        result = paper_model().evaluate()
        assert result.expected_checkpoints == pytest.approx(
            result.redundant_time / result.checkpoint_interval
        )
        assert result.expected_failures == pytest.approx(
            result.total_time * result.failure_rate
        )

    def test_r2_beats_r1_at_scale(self):
        t1 = paper_model(redundancy=1.0).evaluate().total_time
        t2 = paper_model(redundancy=2.0).evaluate().total_time
        assert t2 < t1

    def test_r1_wins_at_small_scale(self):
        t1 = paper_model(virtual_processes=100, redundancy=1.0).evaluate().total_time
        t2 = paper_model(virtual_processes=100, redundancy=2.0).evaluate().total_time
        assert t1 < t2

    def test_interval_override(self):
        fixed = paper_model(checkpoint_interval=units.hours(1.0)).evaluate()
        assert fixed.checkpoint_interval == units.hours(1.0)

    def test_young_rule(self):
        daly = paper_model().evaluate()
        young = paper_model(interval_rule="young").evaluate()
        assert daly.checkpoint_interval != young.checkpoint_interval

    def test_exact_reliability_flag(self):
        linear = paper_model().evaluate()
        exact = paper_model(exact_reliability=True).evaluate()
        assert linear.failure_rate != exact.failure_rate

    def test_divergence_raises(self):
        doomed = paper_model(
            virtual_processes=5_000_000, redundancy=1.0, node_mtbf=units.days(30)
        )
        with pytest.raises(ModelDivergence):
            doomed.evaluate()

    def test_total_time_or_inf(self):
        doomed = paper_model(
            virtual_processes=5_000_000, redundancy=1.0, node_mtbf=units.days(30)
        )
        assert math.isinf(doomed.total_time_or_inf())
        assert paper_model().total_time_or_inf() > 0


class TestBuilders:
    def test_with_redundancy(self):
        derived = paper_model().with_redundancy(3.0)
        assert derived.redundancy == 3.0
        assert derived.virtual_processes == 50_000

    def test_with_processes(self):
        derived = paper_model().with_processes(123)
        assert derived.virtual_processes == 123
        assert derived.redundancy == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paper_model(interval_rule="guess")
        with pytest.raises(ConfigurationError):
            paper_model(checkpoint_interval=0.0)


class TestProperties:
    @given(
        st.integers(min_value=10, max_value=50_000),
        st.sampled_from([1.0, 1.5, 2.0, 2.5, 3.0]),
    )
    @settings(max_examples=60)
    def test_total_time_finite_or_divergence(self, n, r):
        model = paper_model(virtual_processes=n, redundancy=r)
        value = model.total_time_or_inf()
        assert value > 0

    @given(st.sampled_from([1.0, 1.5, 2.0, 2.5, 3.0]))
    def test_reliability_increases_with_redundancy(self, r):
        low = paper_model(redundancy=1.0).evaluate().system_reliability
        high = paper_model(redundancy=r).evaluate().system_reliability
        assert high >= low - 1e-12
