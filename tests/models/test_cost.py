"""Tests for the resource/time cost functions."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.models import CombinedModel, node_hours, weighted_cost


@pytest.fixture
def results():
    base = CombinedModel(
        virtual_processes=50_000,
        redundancy=1.0,
        node_mtbf=units.years(5),
        alpha=0.2,
        base_time=units.hours(128),
        checkpoint_cost=units.minutes(8),
        restart_cost=units.minutes(12),
    )
    return base.evaluate(), base.with_redundancy(2.0).evaluate()


class TestNodeHours:
    def test_definition(self, results):
        plain, _ = results
        assert node_hours(plain) == pytest.approx(
            plain.total_processes * plain.total_time / 3600.0
        )

    def test_redundancy_trades_nodes_for_time(self, results):
        plain, redundant = results
        assert redundant.total_processes == 2 * plain.total_processes
        assert redundant.total_time < plain.total_time


class TestWeightedCost:
    def test_time_only_prefers_redundancy_at_scale(self, results):
        plain, redundant = results
        assert weighted_cost(redundant, 1.0, 0.0) < weighted_cost(plain, 1.0, 0.0)

    def test_resource_only_prefers_plain(self, results):
        plain, redundant = results
        assert weighted_cost(plain, 0.0, 1.0) < weighted_cost(redundant, 0.0, 1.0)

    def test_normalised_reference_is_unit_cost(self, results):
        plain, _ = results
        assert weighted_cost(plain, 0.5, 0.5, reference=plain) == pytest.approx(1.0)

    def test_knob_flips_preference(self, results):
        # The paper's "tuning knob": weights decide which config wins.
        plain, redundant = results
        time_heavy = weighted_cost(redundant, 1.0, 0.1, reference=plain) < weighted_cost(
            plain, 1.0, 0.1, reference=plain
        )
        resource_heavy = weighted_cost(
            redundant, 0.1, 1.0, reference=plain
        ) > weighted_cost(plain, 0.1, 1.0, reference=plain)
        assert time_heavy and resource_heavy

    def test_validation(self, results):
        plain, _ = results
        with pytest.raises(ConfigurationError):
            weighted_cost(plain, -1.0, 0.0)
        with pytest.raises(ConfigurationError):
            weighted_cost(plain, 0.0, 0.0)
