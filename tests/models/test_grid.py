"""Tests for the vectorized combined-model grid (models/grid.py).

The core property: for any single configuration, the NumPy path is
equivalent to ``CombinedModel.evaluate()`` to within 1e-9 relative
error (divergence maps to ``inf`` on both sides).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.errors import ConfigurationError
from repro.models import CombinedModel, PAPER_REDUNDANCY_GRID
from repro.models.grid import evaluate_grid, evaluate_model_grid, total_time_grid

RELATIVE_TOLERANCE = 1e-9


def reference_model(**overrides):
    params = dict(
        virtual_processes=50_000,
        redundancy=1.0,
        node_mtbf=units.years(5),
        alpha=0.2,
        base_time=units.hours(128),
        checkpoint_cost=units.minutes(8),
        restart_cost=units.minutes(12),
    )
    params.update(overrides)
    return CombinedModel(**params)


#: One ULP at 1.0 — the machine epsilon for float64.
EPSILON = math.ulp(1.0)

#: Safety factor on the conditioning-derived error bounds below.
CONDITION_SAFETY = 4.0


def assert_equivalent(model: CombinedModel):
    """Scalar evaluate() and one-cell evaluate_grid agree to 1e-9.

    The flat 1e-9 bound holds wherever the model is well-conditioned.
    Two regimes of Eqs. 10-14 amplify even a one-ULP disagreement in a
    transcendental (``np.log1p`` vs ``math.log1p`` differ in the last
    ULP) beyond any fixed tolerance, so the bound is widened by the
    conditioning the scalar result itself reports:

    * near-reliable systems (``|ln R_sys| << 1``): Eq. 10 recovers the
      failure rate through an ``exp``/``log`` round trip at ``R_sys ~ 1``,
      quantizing ``ln R_sys`` to ULP(1.0) — the rate (and the Daly
      interval with it) is only determined to ``~eps/|ln R_sys|``
      relative;
    * near-divergent systems (``loss -> 1``): the Eq. 14 fixed point
      ``T = useful/(1 - loss)`` amplifies a relative perturbation of the
      loss fraction by ``loss/(1 - loss)``.
    """
    scalar = model.total_time_or_inf()
    grid = evaluate_grid(
        model.virtual_processes,
        model.redundancy,
        model.node_mtbf,
        model.alpha,
        model.base_time,
        model.checkpoint_cost,
        model.restart_cost,
        interval_rule=model.interval_rule,
        checkpoint_interval=model.checkpoint_interval,
        exact_reliability=model.exact_reliability,
    )
    vector = float(grid.total_time)
    if math.isinf(scalar) or math.isinf(vector):
        assert math.isinf(scalar) == math.isinf(vector), (scalar, vector)
        return
    result = model.evaluate()
    # Achievable relative agreement on the failure rate (regime 1).
    log_exposure = result.failure_rate * result.redundant_time  # |ln R_sys|
    if math.isfinite(result.failure_rate) and log_exposure > 0.0:
        rate_error = CONDITION_SAFETY * EPSILON * (1.0 + 1.0 / log_exposure)
    else:
        rate_error = 0.0
    # How the rate error reaches total_time: through the lost-work share
    # (amplified by loss/(1-loss), regime 2) and the checkpoint share.
    live_share = result.breakdown.work + result.breakdown.checkpoint
    loss_ratio = (1.0 - live_share) / live_share if live_share > 0.0 else math.inf
    total_tolerance = RELATIVE_TOLERANCE + rate_error * (
        loss_ratio + result.breakdown.checkpoint
    )
    rate_tolerance = max(RELATIVE_TOLERANCE, rate_error)
    assert vector == pytest.approx(scalar, rel=total_tolerance)
    # Non-divergent cells also agree on the intermediate quantities.
    assert float(grid.redundant_time) == pytest.approx(
        result.redundant_time, rel=RELATIVE_TOLERANCE
    )
    assert float(grid.total_processes) == result.partition.total_processes
    assert float(grid.checkpoint_interval) == pytest.approx(
        result.checkpoint_interval, rel=rate_tolerance
    )
    if math.isfinite(result.failure_rate):
        assert float(grid.failure_rate) == pytest.approx(
            result.failure_rate, rel=rate_tolerance, abs=1e-300
        )


class TestScalarEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=5_000_000),
        r=st.one_of(
            st.floats(min_value=1.0, max_value=3.0),
            st.sampled_from(PAPER_REDUNDANCY_GRID),
        ),
        theta=st.floats(min_value=1e3, max_value=1e9),
        alpha=st.floats(min_value=0.0, max_value=1.0),
        t=st.floats(min_value=1.0, max_value=1e6),
        c=st.floats(min_value=0.1, max_value=5e3),
        rc=st.floats(min_value=0.0, max_value=5e3),
        rule=st.sampled_from(("daly", "young")),
        exact=st.booleans(),
    )
    def test_randomized_configurations(self, n, r, theta, alpha, t, c, rc, rule, exact):
        assert_equivalent(
            CombinedModel(
                virtual_processes=n,
                redundancy=r,
                node_mtbf=theta,
                alpha=alpha,
                base_time=t,
                checkpoint_cost=c,
                restart_cost=rc,
                interval_rule=rule,
                exact_reliability=exact,
            )
        )

    def test_paper_reference_point(self):
        assert_equivalent(reference_model(redundancy=2.0))

    def test_explicit_interval_override(self):
        assert_equivalent(reference_model(checkpoint_interval=units.hours(1)))

    def test_failure_free_limit(self):
        # Enormous MTBF: linearised rate rounds to zero -> failure-free path.
        assert_equivalent(
            reference_model(virtual_processes=1, node_mtbf=1e18, redundancy=2.0)
        )


class TestGridSemantics:
    def test_broadcast_shape(self):
        grid = evaluate_model_grid(
            reference_model(),
            virtual_processes=np.array([100.0, 1000.0, 10_000.0]),
            redundancy=np.asarray(PAPER_REDUNDANCY_GRID)[:, None],
        )
        assert grid.total_time.shape == (len(PAPER_REDUNDANCY_GRID), 3)

    def test_divergence_marked_inf(self):
        doomed = reference_model(
            virtual_processes=1_000_000, node_mtbf=units.days(120)
        )
        grid = evaluate_model_grid(doomed, redundancy=np.array([1.0, 3.0]))
        assert math.isinf(grid.total_time[0])
        assert bool(grid.diverged[0])
        assert math.isfinite(grid.total_time[1])
        assert not bool(grid.diverged[1])
        # Matches the scalar convention exactly.
        assert math.isinf(doomed.total_time_or_inf())

    def test_total_time_grid_matches_with_helpers(self):
        model = reference_model()
        counts = [100, 1_000, 10_000]
        times = total_time_grid(model, processes=np.asarray(counts, dtype=float))
        for count, vector_time in zip(counts, times):
            scalar_time = model.with_processes(count).total_time_or_inf()
            assert float(vector_time) == pytest.approx(
                scalar_time, rel=RELATIVE_TOLERANCE
            )

    def test_expected_checkpoints_property(self):
        model = reference_model(redundancy=2.0)
        grid = evaluate_model_grid(model)
        result = model.evaluate()
        assert float(grid.expected_checkpoints) == pytest.approx(
            result.expected_checkpoints, rel=RELATIVE_TOLERANCE
        )

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_model_grid(reference_model(), shadow_nodes=np.array([1.0]))

    def test_domain_validation(self):
        with pytest.raises(ConfigurationError):
            evaluate_grid(0, 1.0, 1e6, 0.2, 1e3, 10.0, 10.0)
        with pytest.raises(ConfigurationError):
            evaluate_grid(10, 0.5, 1e6, 0.2, 1e3, 10.0, 10.0)
        with pytest.raises(ConfigurationError):
            evaluate_grid(10, 1.0, 1e6, 1.5, 1e3, 10.0, 10.0)
        with pytest.raises(ConfigurationError):
            evaluate_grid(10, 1.0, 1e6, 0.2, 1e3, 10.0, 10.0, interval_rule="magic")
