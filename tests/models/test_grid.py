"""Tests for the vectorized combined-model grid (models/grid.py).

The core property: for any single configuration, the NumPy path is
equivalent to ``CombinedModel.evaluate()`` to within 1e-9 relative
error (divergence maps to ``inf`` on both sides).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.errors import ConfigurationError
from repro.models import CombinedModel, PAPER_REDUNDANCY_GRID
from repro.models.grid import evaluate_grid, evaluate_model_grid, total_time_grid
from repro.models.redundancy import redundant_time, system_failure_rate

RELATIVE_TOLERANCE = 1e-9


def reference_model(**overrides):
    params = dict(
        virtual_processes=50_000,
        redundancy=1.0,
        node_mtbf=units.years(5),
        alpha=0.2,
        base_time=units.hours(128),
        checkpoint_cost=units.minutes(8),
        restart_cost=units.minutes(12),
    )
    params.update(overrides)
    return CombinedModel(**params)


#: One ULP at 1.0 — the machine epsilon for float64.
EPSILON = math.ulp(1.0)

#: Safety factor on the conditioning-derived error bounds below.
CONDITION_SAFETY = 4.0


def assert_equivalent(model: CombinedModel):
    """Scalar evaluate() and one-cell evaluate_grid agree to 1e-9.

    The flat 1e-9 bound holds wherever the model is well-conditioned.
    Two regimes of Eqs. 10-14 amplify even a one-ULP disagreement in a
    transcendental (``np.log1p`` vs ``math.log1p`` differ in the last
    ULP) beyond any fixed tolerance, so the bound is widened by the
    conditioning the scalar result itself reports:

    * near-reliable systems (``|ln R_sys| << 1``): Eq. 10 recovers the
      failure rate through an ``exp``/``log`` round trip at ``R_sys ~ 1``,
      quantizing ``ln R_sys`` to ULP(1.0) — the rate (and the Daly
      interval with it) is only determined to ``~eps/|ln R_sys|``
      relative;
    * near-divergent systems (``loss -> 1``): the Eq. 14 fixed point
      ``T = useful/(1 - loss)`` amplifies a relative perturbation of the
      loss fraction by ``loss/(1 - loss)``.
    """
    scalar = model.total_time_or_inf()
    grid = evaluate_grid(
        model.virtual_processes,
        model.redundancy,
        model.node_mtbf,
        model.alpha,
        model.base_time,
        model.checkpoint_cost,
        model.restart_cost,
        interval_rule=model.interval_rule,
        checkpoint_interval=model.checkpoint_interval,
        exact_reliability=model.exact_reliability,
    )
    vector = float(grid.total_time)
    if math.isinf(scalar) or math.isinf(vector):
        if math.isinf(scalar) != math.isinf(vector):
            # Knife-edge divergence: when the Eq. 14 loss fraction lands
            # within an ULP of 1.0, the scalar and vector
            # transcendentals can disagree on ``loss >= 1`` — one side
            # reports divergence, the other an astronomically large
            # finite time.  The fixed point ``useful / (1 - loss)`` is
            # infinitely ill-conditioned there, so accept the split
            # provided the finite side is beyond any physically
            # meaningful time (i.e. its loss is within ULP slack of 1).
            finite = vector if math.isinf(scalar) else scalar
            t_red = redundant_time(model.base_time, model.alpha, model.redundancy)
            assert finite >= t_red / (1024.0 * EPSILON), (scalar, vector)
        return
    result = model.evaluate()
    # Achievable relative agreement on the failure rate (regime 1).
    log_exposure = result.failure_rate * result.redundant_time  # |ln R_sys|
    if math.isfinite(result.failure_rate) and log_exposure > 0.0:
        rate_error = CONDITION_SAFETY * EPSILON * (1.0 + 1.0 / log_exposure)
    else:
        rate_error = 0.0
    # How the rate error reaches total_time: through the lost-work share
    # (amplified by loss/(1-loss), regime 2) and the checkpoint share.
    live_share = result.breakdown.work + result.breakdown.checkpoint
    loss_ratio = (1.0 - live_share) / live_share if live_share > 0.0 else math.inf
    total_tolerance = RELATIVE_TOLERANCE + rate_error * (
        loss_ratio + result.breakdown.checkpoint
    )
    rate_tolerance = max(RELATIVE_TOLERANCE, rate_error)
    assert vector == pytest.approx(scalar, rel=total_tolerance)
    # Non-divergent cells also agree on the intermediate quantities.
    assert float(grid.redundant_time) == pytest.approx(
        result.redundant_time, rel=RELATIVE_TOLERANCE
    )
    assert float(grid.total_processes) == result.partition.total_processes
    assert float(grid.checkpoint_interval) == pytest.approx(
        result.checkpoint_interval, rel=rate_tolerance
    )
    if math.isfinite(result.failure_rate):
        # At the failure-free boundary one path's rate can underflow to
        # exactly 0.0 while the other keeps an ULP-sized residue: Eq. 10
        # recovers the rate as -ln(R_sys)/t_Red and ln R_sys at
        # R_sys ~ 1 is only determined to ULP(1.0), i.e. the rate to
        # ~eps/t_Red absolute.  Since the interval clamp (see
        # CombinedModel.evaluate) makes total_time continuous across
        # that boundary, the rates only need to agree to the quantum.
        rate_quantum = CONDITION_SAFETY * EPSILON / result.redundant_time
        assert float(grid.failure_rate) == pytest.approx(
            result.failure_rate, rel=rate_tolerance, abs=rate_quantum
        )


class TestScalarEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=5_000_000),
        r=st.one_of(
            st.floats(min_value=1.0, max_value=3.0),
            st.sampled_from(PAPER_REDUNDANCY_GRID),
        ),
        theta=st.floats(min_value=1e3, max_value=1e9),
        alpha=st.floats(min_value=0.0, max_value=1.0),
        t=st.floats(min_value=1.0, max_value=1e6),
        c=st.floats(min_value=0.1, max_value=5e3),
        rc=st.floats(min_value=0.0, max_value=5e3),
        rule=st.sampled_from(("daly", "young")),
        exact=st.booleans(),
    )
    def test_randomized_configurations(self, n, r, theta, alpha, t, c, rc, rule, exact):
        assert_equivalent(
            CombinedModel(
                virtual_processes=n,
                redundancy=r,
                node_mtbf=theta,
                alpha=alpha,
                base_time=t,
                checkpoint_cost=c,
                restart_cost=rc,
                interval_rule=rule,
                exact_reliability=exact,
            )
        )

    def test_paper_reference_point(self):
        assert_equivalent(reference_model(redundancy=2.0))

    def test_explicit_interval_override(self):
        assert_equivalent(reference_model(checkpoint_interval=units.hours(1)))

    def test_failure_free_limit(self):
        # Enormous MTBF: linearised rate rounds to zero -> failure-free path.
        assert_equivalent(
            reference_model(virtual_processes=1, node_mtbf=1e18, redundancy=2.0)
        )


class TestFailureFreeBoundary:
    """The scalar/grid discontinuity at the rate-underflow boundary.

    When the linearised system failure rate underflows to exactly 0.0
    the scalar path takes the failure-free branch (``delta = t_Red``)
    while an ULP-nonzero rate used to select a huge Daly interval; the
    two paths then disagreed by exactly one checkpoint cost.  The fix
    clamps the derived interval to ``min(rule_delta, t_Red)`` in both
    paths, which converges continuously to the failure-free branch.
    """

    #: The hypothesis falsifying example that exposed the bug (pinned
    #: deterministically; scalar used to give 2.2265625, grid 1.2265625).
    PINNED = dict(
        virtual_processes=32,
        redundancy=2.8125,
        node_mtbf=435560442.0,
        alpha=0.125,
        base_time=1.0,
        checkpoint_cost=1.0,
        restart_cost=0.0,
        interval_rule="daly",
        exact_reliability=False,
    )

    def test_pinned_falsifying_example(self):
        assert_equivalent(CombinedModel(**self.PINNED))

    def test_pinned_example_takes_clamped_interval(self):
        result = CombinedModel(**self.PINNED).evaluate()
        # One nominal checkpoint, not a huge unclamped Daly interval.
        assert result.checkpoint_interval == result.redundant_time
        assert result.total_time == pytest.approx(
            result.redundant_time + self.PINNED["checkpoint_cost"],
            rel=1e-9,
        )

    @staticmethod
    def _bracket_boundary(rate_of, lo=1e3, hi=1e300):
        """Bisect node_mtbf to the exact rate-underflow boundary.

        Returns ``(theta_lo, theta_hi)`` with rate(theta_lo) > 0,
        rate(theta_hi) == 0 and the two thetas adjacent to ~1e-13
        relative — any model discontinuity at the boundary shows up as
        a jump between the two total times.
        """
        assert rate_of(lo) > 0.0
        assert rate_of(hi) == 0.0
        for _ in range(200):
            mid = math.sqrt(lo * hi)
            if rate_of(mid) > 0.0:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-13 * lo:
                break
        return lo, hi

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=100_000),
        r=st.one_of(
            st.floats(min_value=1.0, max_value=3.0),
            st.sampled_from(PAPER_REDUNDANCY_GRID),
        ),
        alpha=st.floats(min_value=0.0, max_value=1.0),
        t=st.floats(min_value=1.0, max_value=1e4),
        c=st.floats(min_value=0.1, max_value=1e3),
        rc=st.floats(min_value=0.0, max_value=1e3),
        rule=st.sampled_from(("daly", "young")),
    )
    def test_total_time_continuous_in_node_mtbf(self, n, r, alpha, t, c, rc, rule):
        def make_model(theta):
            return CombinedModel(
                virtual_processes=n,
                redundancy=r,
                node_mtbf=theta,
                alpha=alpha,
                base_time=t,
                checkpoint_cost=c,
                restart_cost=rc,
                interval_rule=rule,
            )

        t_red = redundant_time(t, alpha, r)

        def rate_of(theta):
            # Probe the Eq. 10 rate alone: the full pipeline diverges
            # far below the boundary, where we only bisect through.
            return system_failure_rate(n, r, t_red, theta)

        theta_lo, theta_hi = self._bracket_boundary(rate_of)
        below = make_model(theta_lo).evaluate().total_time
        above = make_model(theta_hi).evaluate().total_time
        # Continuity: pre-fix the jump here was a full checkpoint cost.
        assert below == pytest.approx(above, rel=1e-9)
        # The grid path agrees with the scalar on both sides.
        thetas = np.array([theta_lo, theta_hi])
        grid = evaluate_grid(n, r, thetas, alpha, t, c, rc, interval_rule=rule)
        assert float(grid.total_time[0]) == pytest.approx(below, rel=1e-9)
        assert float(grid.total_time[1]) == pytest.approx(above, rel=1e-9)

    def test_grid_continuous_across_dense_theta_sweep(self):
        # A dense sweep spanning the pinned example's boundary: adjacent
        # cells must never again fork by ~one checkpoint cost.
        thetas = np.geomspace(1e7, 1e10, 400)
        grid = evaluate_grid(32, 2.8125, thetas, 0.125, 1.0, 1.0, 0.0)
        total = grid.total_time
        assert np.all(np.isfinite(total))
        jumps = np.abs(np.diff(total))
        assert float(jumps.max()) < 1e-3  # a full checkpoint cost is 1.0


class TestPaperParameterCells:
    """Grid-vs-scalar agreement over the paper's Table 4/5 cells."""

    #: Table 4 testbed: NPB CG, 128 processes, 46 min failure-free,
    #: alpha ~ 0.2, c = 120 s, R = 500 s, node MTBF 6-30 h.
    TABLE4_MTBF_HOURS = (6.0, 12.0, 18.0, 24.0, 30.0)

    def test_table4_cells_agree(self):
        for hours in self.TABLE4_MTBF_HOURS:
            for degree in PAPER_REDUNDANCY_GRID:
                assert_equivalent(
                    CombinedModel(
                        virtual_processes=128,
                        redundancy=degree,
                        node_mtbf=hours * 3600.0,
                        alpha=0.2,
                        base_time=46.0 * 60.0,
                        checkpoint_cost=120.0,
                        restart_cost=500.0,
                    )
                )

    def test_table5_failure_free_cells_agree(self):
        # Table 5 runs with no injected failures: model it as an
        # effectively failure-free node MTBF at every paper degree.
        for degree in PAPER_REDUNDANCY_GRID:
            assert_equivalent(
                CombinedModel(
                    virtual_processes=128,
                    redundancy=degree,
                    node_mtbf=1e18,
                    alpha=0.2,
                    base_time=46.0 * 60.0,
                    checkpoint_cost=120.0,
                    restart_cost=500.0,
                )
            )

    def test_diverged_cells_report_inf_expected_checkpoints(self):
        doomed = reference_model(
            virtual_processes=1_000_000, node_mtbf=units.days(120)
        )
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # silent NaN came via RuntimeWarning
            grid = evaluate_model_grid(doomed, redundancy=np.array([1.0, 3.0]))
            counts = grid.expected_checkpoints
        assert math.isinf(counts[0])
        assert not np.isnan(counts).any()
        assert math.isfinite(counts[1])


class TestGridSemantics:
    def test_broadcast_shape(self):
        grid = evaluate_model_grid(
            reference_model(),
            virtual_processes=np.array([100.0, 1000.0, 10_000.0]),
            redundancy=np.asarray(PAPER_REDUNDANCY_GRID)[:, None],
        )
        assert grid.total_time.shape == (len(PAPER_REDUNDANCY_GRID), 3)

    def test_divergence_marked_inf(self):
        doomed = reference_model(
            virtual_processes=1_000_000, node_mtbf=units.days(120)
        )
        grid = evaluate_model_grid(doomed, redundancy=np.array([1.0, 3.0]))
        assert math.isinf(grid.total_time[0])
        assert bool(grid.diverged[0])
        assert math.isfinite(grid.total_time[1])
        assert not bool(grid.diverged[1])
        # Matches the scalar convention exactly.
        assert math.isinf(doomed.total_time_or_inf())

    def test_total_time_grid_matches_with_helpers(self):
        model = reference_model()
        counts = [100, 1_000, 10_000]
        times = total_time_grid(model, processes=np.asarray(counts, dtype=float))
        for count, vector_time in zip(counts, times):
            scalar_time = model.with_processes(count).total_time_or_inf()
            assert float(vector_time) == pytest.approx(
                scalar_time, rel=RELATIVE_TOLERANCE
            )

    def test_expected_checkpoints_property(self):
        model = reference_model(redundancy=2.0)
        grid = evaluate_model_grid(model)
        result = model.evaluate()
        assert float(grid.expected_checkpoints) == pytest.approx(
            result.expected_checkpoints, rel=RELATIVE_TOLERANCE
        )

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_model_grid(reference_model(), shadow_nodes=np.array([1.0]))

    def test_domain_validation(self):
        with pytest.raises(ConfigurationError):
            evaluate_grid(0, 1.0, 1e6, 0.2, 1e3, 10.0, 10.0)
        with pytest.raises(ConfigurationError):
            evaluate_grid(10, 0.5, 1e6, 0.2, 1e3, 10.0, 10.0)
        with pytest.raises(ConfigurationError):
            evaluate_grid(10, 1.0, 1e6, 1.5, 1e3, 10.0, 10.0)
        with pytest.raises(ConfigurationError):
            evaluate_grid(10, 1.0, 1e6, 0.2, 1e3, 10.0, 10.0, interval_rule="magic")
