"""Tests for Eq. 1 and Eqs. 5-10 (redundant time, partition, system)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.errors import ConfigurationError
from repro.models import (
    birthday_collision_probability,
    partition_processes,
    redundant_time,
    system_failure_rate,
    system_mtbf,
    system_reliability,
)
from repro.models.redundancy import shadow_hit_probability

degrees = st.floats(min_value=1.0, max_value=4.0, allow_nan=False)
process_counts = st.integers(min_value=1, max_value=10**6)


class TestRedundantTime:
    def test_eq1(self):
        # t_Red = (1 - a) t + a t r
        assert redundant_time(100.0, 0.2, 2.0) == pytest.approx(80.0 + 40.0)

    def test_r1_identity(self):
        assert redundant_time(100.0, 0.3, 1.0) == 100.0

    def test_alpha_zero_immune_to_r(self):
        assert redundant_time(100.0, 0.0, 3.0) == 100.0

    def test_alpha_one_scales_fully(self):
        assert redundant_time(100.0, 1.0, 3.0) == 300.0

    def test_paper_cg_numbers(self):
        # 46 min, alpha 0.2, 3x -> 64.4 min (paper's expected-linear row).
        expected = units.minutes(64.4)
        assert redundant_time(units.minutes(46), 0.2, 3.0) == pytest.approx(expected)

    @given(degrees)
    def test_monotone_in_r(self, r):
        assert redundant_time(10.0, 0.5, r + 0.1) > redundant_time(10.0, 0.5, r)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            redundant_time(-1.0, 0.2, 2.0)
        with pytest.raises(ConfigurationError):
            redundant_time(1.0, 1.5, 2.0)
        with pytest.raises(ConfigurationError):
            redundant_time(1.0, 0.2, 0.5)


class TestPartition:
    def test_integer_r_homogeneous(self):
        part = partition_processes(10, 2.0)
        assert part.floor_count == 0
        assert part.ceil_count == 10
        assert part.total_processes == 20

    def test_eq6_eq7_fractional(self):
        part = partition_processes(4, 1.5)
        # N_floor = floor((2 - 1.5) * 4) = 2; N_ceil = 2.
        assert part.floor_count == 2
        assert part.ceil_count == 2
        assert part.total_processes == 2 * 1 + 2 * 2

    def test_paper_grid_25x_over_128(self):
        part = partition_processes(128, 2.5)
        assert part.floor_count == 64 and part.ceil_count == 64
        assert part.total_processes == 64 * 2 + 64 * 3

    def test_effective_redundancy_bounded(self):
        part = partition_processes(7, 1.3)
        assert part.effective_redundancy <= 1.3 + 1.0 / 7

    def test_replication_of_block_convention(self):
        part = partition_processes(4, 1.25)
        levels = [part.replication_of(v) for v in range(4)]
        assert sorted(levels, reverse=True) == levels  # ceil first
        assert levels.count(2) == part.ceil_count

    def test_replication_of_bad_rank(self):
        part = partition_processes(4, 1.5)
        with pytest.raises(ConfigurationError):
            part.replication_of(4)

    @given(process_counts, degrees)
    def test_invariants(self, n, r):
        part = partition_processes(n, r)
        # Eq. 5: the two sets cover N.
        assert part.floor_count + part.ceil_count == n
        # Eq. 8: N_total <= N * r (fraction of a process is nonexistent).
        assert part.total_processes <= math.ceil(n * r)
        assert part.total_processes >= n
        # Levels are floor/ceil of r.
        assert part.floor_level == math.floor(r)
        assert part.ceil_level == math.ceil(r)

    @given(process_counts, st.integers(min_value=1, max_value=3))
    def test_integer_special_case(self, n, r):
        part = partition_processes(n, float(r))
        assert part.floor_count == 0
        assert part.total_processes == n * r


class TestSystemReliability:
    def test_eq9_small_case_by_hand(self):
        # N=2, r=2, p = t/theta = 0.1: R = (1 - 0.01)^2.
        r_sys = system_reliability(2, 2.0, exposure_time=1.0, node_mtbf=10.0)
        assert r_sys == pytest.approx(0.99**2)

    def test_partial_by_hand(self):
        # N=2, r=1.5: one rank at 1 replica, one at 2; p=0.1.
        r_sys = system_reliability(2, 1.5, exposure_time=1.0, node_mtbf=10.0)
        assert r_sys == pytest.approx(0.9 * 0.99)

    def test_no_underflow_at_scale(self):
        r_sys = system_reliability(
            1_000_000, 1.0, exposure_time=units.hours(128),
            node_mtbf=units.years(5),
        )
        assert r_sys >= 0.0  # must not raise / NaN

    @given(
        st.integers(min_value=1, max_value=1000),
        degrees,
    )
    def test_bounded_and_monotone_in_integer_r(self, n, r):
        t, theta = 1.0, 100.0
        value = system_reliability(n, r, t, theta)
        assert 0.0 <= value <= 1.0
        assert system_reliability(n, 2.0, t, theta) >= system_reliability(
            n, 1.0, t, theta
        )

    def test_exact_flag(self):
        linear = system_reliability(10, 2.0, 5.0, 10.0)
        exact = system_reliability(10, 2.0, 5.0, 10.0, exact=True)
        assert linear != exact


class TestSystemRates:
    def test_failure_rate_r1_linear_limit(self):
        # For r=1 linearised, lambda ~= N/theta for small t/theta.
        rate = system_failure_rate(100, 1.0, 1.0, 1e6)
        assert rate == pytest.approx(100 / 1e6, rel=1e-3)

    def test_mtbf_is_reciprocal(self):
        rate = system_failure_rate(10, 2.0, 1.0, 100.0)
        theta = system_mtbf(10, 2.0, 1.0, 100.0)
        assert theta == pytest.approx(1.0 / rate)

    def test_divergence_returns_inf(self):
        rate = system_failure_rate(10, 1.0, exposure_time=50.0, node_mtbf=10.0)
        assert math.isinf(rate)
        assert system_mtbf(10, 1.0, 50.0, 10.0) == 0.0

    def test_redundancy_extends_mtbf(self):
        theta_1x = system_mtbf(1000, 1.0, 10.0, 1e5)
        theta_2x = system_mtbf(1000, 2.0, 10.0, 1e5)
        assert theta_2x > theta_1x * 10

    def test_exposure_validation(self):
        with pytest.raises(ConfigurationError):
            system_failure_rate(10, 1.0, 0.0, 100.0)


class TestBirthday:
    def test_printed_formula_value(self):
        # Hand-check at n=4: 1 - (2/4)^6 = 1 - 1/64.
        assert birthday_collision_probability(4) == pytest.approx(1 - 0.5**6)

    def test_printed_formula_tends_to_one(self):
        # The printed expression is a some-collision probability; it
        # grows toward 1 (see the docstring for the discrepancy note).
        assert birthday_collision_probability(10**6) > birthday_collision_probability(10)

    def test_shadow_hit_vanishes(self):
        # The quantity the paper's argument actually needs: hitting one
        # specific shadow among n-1 nodes becomes ever less likely.
        assert shadow_hit_probability(10**6) < shadow_hit_probability(100) < 0.02
        assert shadow_hit_probability(10**6) == pytest.approx(1e-6, rel=1e-3)

    def test_shadow_hit_nonzero(self):
        # ... yet never zero: checkpointing stays necessary (Sec. 4.3).
        assert shadow_hit_probability(10**9) > 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            birthday_collision_probability(2)
        with pytest.raises(ConfigurationError):
            shadow_hit_probability(1)
