"""Tests for the trace report: phase folding and reconciliation."""

from repro.obs import ObsSession, build_report, render_report


def job_records(label, attempts, restarts, checkpoints, failures=0):
    """Synthesize a consistent job trace: spans tile the clock."""
    records = []
    now = 0.0
    total_checkpoint = 0.0
    for index, (duration, ckpt) in enumerate(zip(attempts, checkpoints)):
        records.append({
            "job": label, "type": "span", "name": "attempt",
            "t0": now, "t1": now + duration, "wall0": now, "wall1": now,
            "attempt": index + 1,
        })
        records.append({
            "job": label, "type": "span", "name": "checkpoint",
            "t0": now, "t1": now + ckpt, "wall0": now, "wall1": now,
        })
        total_checkpoint += ckpt
        now += duration
        if index < len(restarts):
            records.append({
                "job": label, "type": "span", "name": "restart",
                "t0": now, "t1": now + restarts[index],
                "wall0": now, "wall1": now,
            })
            now += restarts[index]
    for _ in range(failures):
        records.append({
            "job": label, "type": "event", "name": "failure", "t": 1.0,
            "wall": 1.0,
        })
    records.append({
        "job": label, "type": "summary", "total_time": now,
        "checkpoint_union_time": total_checkpoint, "completed": True,
        "wall": now,
    })
    return records


class TestBuildReport:
    def test_phase_totals_and_reconciliation(self):
        records = job_records(
            "r1", attempts=[4.0, 6.0], restarts=[1.0],
            checkpoints=[0.5, 0.5], failures=2,
        )
        report = build_report(records)
        (job,) = report.jobs
        assert job.attempts == 10.0
        assert job.restart == 1.0
        assert job.checkpoint == 1.0
        assert job.total == 11.0
        assert job.work == 9.0
        assert job.attempt_count == 2
        assert job.failures == 2
        assert job.completed is True
        assert job.discrepancy() == 0.0
        assert report.ok

    def test_fractions_sum_to_one(self):
        report = build_report(
            job_records("r1", [4.0, 6.0], [1.0], [0.5, 0.5])
        )
        work, ckpt, restart = report.jobs[0].fractions()
        assert abs(work + ckpt + restart - 1.0) < 1e-12

    def test_torn_trace_is_detected(self):
        records = job_records("r1", [4.0, 6.0], [1.0], [0.5, 0.5])
        torn = [
            r for r in records
            if not (r.get("type") == "span" and r.get("name") == "restart")
        ]
        report = build_report(torn)
        assert not report.ok
        assert report.failed_jobs[0].job == "r1"
        assert "FAILED" in render_report(report)
        assert "torn" in render_report(report)

    def test_tolerance_is_respected(self):
        records = job_records("r1", [4.0, 6.0], [1.0], [0.5, 0.5])
        records[-1]["total_time"] = 11.05  # 0.45% off
        assert build_report(records, tolerance=0.01).ok
        assert not build_report(records, tolerance=0.001).ok

    def test_multiple_jobs_sorted_and_totalled(self):
        records = job_records("b", [2.0], [], [0.0]) + job_records(
            "a", [3.0], [], [0.0]
        )
        report = build_report(records)
        assert [job.job for job in report.jobs] == ["a", "b"]
        text = render_report(report)
        assert "TOTAL" in text

    def test_parent_records_become_executor_counts(self):
        records = [
            {"job": "__parent__", "type": "span", "name": "campaign",
             "wall0": 0.0, "wall1": 1.0},
            {"job": "__parent__", "type": "event", "name": "cell_timeout",
             "wall": 0.5},
        ]
        report = build_report(records)
        assert report.parent_events == {"campaign": 1, "cell_timeout": 1}
        assert report.jobs == []
        assert "executor: campaign=1, cell_timeout=1" in render_report(report)

    def test_campaign_manifest_is_surfaced(self):
        records = [{
            "type": "manifest", "kind": "campaign", "label": "table4",
            "versions": {"repro": "1.0.0", "numpy": "2.0.0"}, "job": "",
        }]
        report = build_report(records)
        assert report.manifest is not None
        assert "campaign: table4" in render_report(report)

    def test_open_spans_contribute_nothing(self):
        records = [{
            "job": "r1", "type": "span", "name": "attempt",
            "t0": 0.0, "t1": None, "wall0": 0.0, "wall1": None,
        }]
        job = build_report(records).jobs[0]
        assert job.attempts == 0.0
        assert job.attempt_count == 1


class TestObsSession:
    def test_disabled_session_is_inert(self):
        session = ObsSession()
        assert not session.enabled
        assert session.tracer.enabled is False
        assert session.parts_dir is None
        assert session.stamp("table4") is None
        assert session.finalize(cells=0) == 0

    def test_metrics_only_session(self):
        session = ObsSession(metrics=True)
        assert session.enabled
        assert session.trace is None
        assert session.metrics is not None
        assert session.finalize(cells=1) == 0

    def test_traced_session_writes_manifest_head(self, tmp_path):
        from repro.obs import read_trace

        path = str(tmp_path / "run.jsonl")
        session = ObsSession(trace_path=path)
        assert session.enabled and session.parts_dir == path + ".parts"
        session.stamp("table4", params={"quick": True}, base_seed=1)
        session.tracer.event("cell_timeout")
        count = session.finalize(cells=15)
        assert count == 2
        records = read_trace(path)
        assert records[0]["type"] == "manifest"
        assert records[0]["outcome"] == {"cells": 15}
        assert records[1]["name"] == "cell_timeout"
