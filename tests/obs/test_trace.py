"""Tests for the tracing substrate: records, null object, part merging."""

import json
import os

from repro.obs import (
    NULL_TRACER,
    Tracer,
    TraceSession,
    merge_trace_parts,
    read_trace,
    write_jsonl,
)


class FakeClock:
    """A deterministic wall clock for record-shape tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestTracer:
    def test_event_record_shape(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("failure", sim_time=2.5, slot=3)
        (record,) = tracer.records
        assert record == {
            "type": "event", "name": "failure", "t": 2.5, "wall": 1.0, "slot": 3,
        }

    def test_span_open_then_end(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.begin("attempt", sim_time=0.0, attempt=1)
        (open_record,) = tracer.records
        assert open_record["t1"] is None and open_record["wall1"] is None
        span.end(sim_time=4.0, completed=True)
        (record,) = tracer.records
        assert record["t0"] == 0.0 and record["t1"] == 4.0
        assert record["wall1"] > record["wall0"]
        assert record["completed"] is True

    def test_span_end_is_idempotent(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.begin("attempt", sim_time=0.0)
        span.end(sim_time=1.0)
        span.end(sim_time=2.0)
        (record,) = tracer.records
        assert record["t1"] == 2.0

    def test_span_annotate(self):
        tracer = Tracer()
        span = tracer.begin("cell", sim_time=None)
        span.annotate(index=7)
        assert tracer.records[0]["index"] == 7

    def test_common_fields_merged_at_read(self):
        tracer = Tracer(common={"job": "r1-seed0"})
        tracer.event("x")
        assert tracer.records[0]["job"] == "r1-seed0"

    def test_record_raw(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("summary", total_time=9.0)
        (record,) = tracer.records
        assert record["type"] == "summary" and record["total_time"] == 9.0

    def test_len(self):
        tracer = Tracer()
        tracer.event("a")
        tracer.event("b")
        assert len(tracer) == 2


class TestNullTracer:
    def test_everything_is_a_noop(self, tmp_path):
        span = NULL_TRACER.begin("attempt", sim_time=0.0)
        span.annotate(x=1)
        span.end(sim_time=1.0)
        NULL_TRACER.event("failure", sim_time=0.5)
        NULL_TRACER.record("summary", total=1.0)
        assert NULL_TRACER.records == ()
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.write(str(tmp_path / "t.jsonl")) == 0
        assert NULL_TRACER.write_part(str(tmp_path)) is None
        assert not os.path.exists(tmp_path / "t.jsonl")

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True


class TestFiles:
    def test_write_then_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        records = [{"type": "event", "name": "a", "wall": 1.0}]
        assert write_jsonl(path, records) == 1
        assert read_trace(path) == records

    def test_write_appends(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(path, [{"n": 1}])
        write_jsonl(path, [{"n": 2}])
        assert [r["n"] for r in read_trace(path)] == [1, 2]

    def test_unserializable_values_fall_back_to_repr(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(path, [{"obj": object()}])
        (record,) = read_trace(path)
        assert "object" in record["obj"]

    def test_part_names_never_collide(self, tmp_path):
        parts_dir = str(tmp_path / "parts")
        names = set()
        for _ in range(3):
            tracer = Tracer()
            tracer.event("x")
            names.add(tracer.write_part(parts_dir, label="same-label"))
        assert len(names) == 3

    def test_part_label_is_sanitised(self, tmp_path):
        tracer = Tracer()
        tracer.event("x")
        part = tracer.write_part(str(tmp_path), label="a/b c")
        assert "/" not in os.path.basename(part).split(".part")[0].replace(
            "-", ""
        ) and os.path.exists(part)

    def test_empty_tracer_writes_no_part(self, tmp_path):
        assert Tracer().write_part(str(tmp_path)) is None


class TestMerge:
    def test_merge_orders_by_wall_and_removes_parts(self, tmp_path):
        parts_dir = str(tmp_path / "parts")
        os.makedirs(parts_dir)
        write_jsonl(
            os.path.join(parts_dir, "b-1-0.part.jsonl"),
            [{"name": "late", "wall": 5.0}],
        )
        write_jsonl(
            os.path.join(parts_dir, "a-2-1.part.jsonl"),
            [{"name": "early", "wall": 1.0}, {"name": "span", "wall0": 3.0}],
        )
        out = str(tmp_path / "merged.jsonl")
        head = [{"type": "manifest", "kind": "campaign"}]
        count = merge_trace_parts(parts_dir, out, head=head)
        assert count == 4
        merged = read_trace(out)
        assert merged[0]["type"] == "manifest"
        assert [r.get("name") for r in merged[1:]] == ["early", "span", "late"]
        assert not os.path.exists(parts_dir)

    def test_merge_overwrites_stale_output(self, tmp_path):
        out = str(tmp_path / "merged.jsonl")
        write_jsonl(out, [{"stale": True}])
        merge_trace_parts(str(tmp_path / "nothing"), out)
        assert read_trace(out) == []

    def test_records_without_stamps_sort_last(self, tmp_path):
        parts_dir = str(tmp_path / "parts")
        write_jsonl_dir = os.path.join(parts_dir, "x-1-0.part.jsonl")
        os.makedirs(parts_dir)
        write_jsonl(write_jsonl_dir, [{"name": "unstamped"}, {"name": "a", "wall": 1.0}])
        out = str(tmp_path / "merged.jsonl")
        merge_trace_parts(parts_dir, out)
        assert [r["name"] for r in read_trace(out)] == ["a", "unstamped"]


class TestTraceSession:
    def test_finalize_merges_parent_and_worker_parts(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        session = TraceSession(path)
        session.tracer.event("pool_breakage")
        worker = Tracer(common={"job": "r1-seed7"})
        worker.event("failure", sim_time=1.0)
        worker.write_part(session.parts_dir, label="r1-seed7")
        count = session.finalize(head=[{"type": "manifest", "kind": "campaign"}])
        assert count == 3
        records = read_trace(path)
        assert records[0]["kind"] == "campaign"
        jobs = {record.get("job") for record in records[1:]}
        assert jobs == {"__parent__", "r1-seed7"}
        assert not os.path.exists(session.parts_dir)
