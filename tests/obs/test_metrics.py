"""Tests for the metrics registry and its substrate primitives."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import DEFAULT_BUCKETS, CounterBag, MetricsRegistry, TimeSeries
from repro.obs.metrics import Histogram


class TestCounterAndGauge:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("cells").inc()
        registry.counter("cells").inc(2.0)
        assert registry.counter("cells").value == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("x").inc(-1.0)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("utilization").set(0.5)
        registry.gauge("utilization").set(0.9)
        assert registry.gauge("utilization").value == 0.9


class TestHistogram:
    def test_default_buckets_strictly_increasing(self):
        assert all(
            b2 > b1 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )

    def test_observation_lands_in_le_bucket(self):
        histogram = Histogram("t", buckets=(1.0, 2.0, 4.0))
        histogram.observe(1.5)
        assert histogram.counts == [0, 1, 0, 0]
        histogram.observe(2.0)  # le semantics: lands in the 2.0 bucket
        assert histogram.counts == [0, 2, 0, 0]
        histogram.observe(100.0)  # overflow bucket
        assert histogram.counts == [0, 2, 0, 1]

    def test_mean_and_percentiles(self):
        histogram = Histogram("t", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            histogram.observe(value)
        assert histogram.mean == pytest.approx(2.125)
        assert histogram.percentile(50) == 2.0
        assert histogram.percentile(100) == 4.0

    def test_percentile_edge_cases(self):
        histogram = Histogram("t", buckets=(1.0,))
        assert math.isnan(histogram.percentile(50))
        histogram.observe(9.0)
        assert histogram.percentile(50) == math.inf
        with pytest.raises(ConfigurationError):
            histogram.percentile(101)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("t", buckets=())
        with pytest.raises(ConfigurationError):
            Histogram("t", buckets=(1.0, 1.0))


class TestSnapshotMerge:
    def build(self, values):
        registry = MetricsRegistry()
        registry.counter("cells").inc(len(values))
        registry.gauge("workers").set(4)
        for value in values:
            registry.histogram("wall", buckets=(1.0, 2.0, 4.0)).observe(value)
        return registry

    def test_merge_equals_single_registry(self):
        merged = self.build([0.5, 1.5])
        merged.merge(self.build([3.0, 9.0]).snapshot())
        direct = self.build([0.5, 1.5, 3.0, 9.0])
        assert merged.snapshot()["histograms"] == direct.snapshot()["histograms"]
        assert merged.counter("cells").value == 4.0
        # Percentiles merge exactly because the buckets are fixed.
        assert merged.histogram("wall").percentile(50) == direct.histogram(
            "wall"
        ).percentile(50)

    def test_merge_rejects_mismatched_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("wall", buckets=(1.0, 2.0))
        other = MetricsRegistry()
        other.histogram("wall", buckets=(5.0,)).observe(1.0)
        with pytest.raises(ConfigurationError):
            registry.merge(other.snapshot())

    def test_snapshot_is_json_friendly(self):
        import json

        json.dumps(self.build([1.0]).snapshot())


class TestRender:
    def test_empty(self):
        assert MetricsRegistry().render() == "(no metrics recorded)"

    def test_lists_every_metric_kind(self):
        registry = MetricsRegistry()
        registry.counter("cells").inc(15)
        registry.gauge("utilization").set(0.91)
        registry.histogram("wall", buckets=(1.0, 10.0)).observe(2.0)
        registry.histogram("empty", buckets=(1.0,))
        text = registry.render()
        assert "counter   cells = 15" in text
        assert "gauge     utilization = 0.91" in text
        assert "histogram wall: count=1" in text and "p95<=10" in text
        assert "histogram empty: empty" in text


class TestTimeSeries:
    def test_samples_and_stats(self):
        series = TimeSeries("queue")
        series.sample(0.0, 1)
        series.sample(1.0, 3)
        assert series.samples == [(0.0, 1.0), (1.0, 3.0)]
        assert series.values == [1.0, 3.0]
        assert series.mean() == 2.0
        assert series.total() == 4.0
        assert len(series) == 2

    def test_empty_mean(self):
        assert TimeSeries().mean() == 0.0


class TestCounterBag:
    def test_into_registry(self):
        bag = CounterBag()
        bag.add("sends", 3)
        bag.add("recvs")
        registry = MetricsRegistry()
        bag.into_registry(registry, prefix="mpi.")
        assert registry.counter("mpi.sends").value == 3.0
        assert registry.counter("mpi.recvs").value == 1.0


class TestSimkitAliases:
    def test_monitor_is_timeseries_and_counter_is_bag(self):
        from repro.simkit import Counter, Monitor

        assert issubclass(Monitor, TimeSeries)
        assert issubclass(Counter, CounterBag)
