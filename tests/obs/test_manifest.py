"""Tests for run manifests and their provenance snapshots."""

import json
from dataclasses import dataclass
from functools import partial

from repro.obs import RunManifest, collect_versions, config_snapshot
from repro.orchestration import JobConfig
from repro.workloads import SyntheticWorkload


@dataclass(frozen=True)
class _Nested:
    depth: int = 2


@dataclass(frozen=True)
class _Setup:
    steps: int = 10
    scale: float = 0.5
    nested: _Nested = _Nested()


class TestSnapshots:
    def test_versions_cover_toolchain(self):
        versions = collect_versions()
        assert {"repro", "python", "numpy"} <= set(versions)

    def test_dataclass_snapshot_recurses(self):
        snapshot = config_snapshot(_Setup())
        assert snapshot == {
            "steps": 10, "scale": 0.5, "nested": {"depth": 2},
        }

    def test_opaque_values_degrade_to_repr(self):
        factory = partial(SyntheticWorkload, total_steps=5)
        snapshot = config_snapshot({"factory": factory})
        assert "SyntheticWorkload" in snapshot["factory"]

    def test_job_config_snapshot_is_json_serializable(self):
        config = JobConfig(
            workload_factory=partial(SyntheticWorkload, total_steps=5),
            virtual_processes=4,
        )
        json.dumps(config_snapshot(config))


class TestRunManifest:
    def test_for_job_captures_seed(self):
        config = JobConfig(
            workload_factory=partial(SyntheticWorkload, total_steps=5),
            virtual_processes=4,
            seed=99,
        )
        manifest = RunManifest.for_job(config, label="r1-seed99")
        assert manifest.kind == "job"
        assert manifest.seeds == {"job": 99}
        assert manifest.config["virtual_processes"] == 4

    def test_for_campaign(self):
        manifest = RunManifest.for_campaign(
            "table4", params={"quick": True}, base_seed=20120612
        )
        assert manifest.kind == "campaign"
        assert manifest.label == "table4"
        assert manifest.seeds == {"base": 20120612}
        assert manifest.config == {"quick": True}

    def test_finish_merges_outcome(self):
        manifest = RunManifest.for_campaign("table4")
        manifest.finish(cells=15).finish(elapsed=2.0)
        assert manifest.outcome == {"cells": 15, "elapsed": 2.0}

    def test_as_record_is_a_manifest_record(self):
        record = RunManifest.for_campaign("chaos").as_record()
        assert record["type"] == "manifest"
        assert record["kind"] == "campaign"

    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = RunManifest.for_campaign("table5", base_seed=7)
        manifest.finish(cells=9)
        manifest.write(path)
        loaded = RunManifest.read(path)
        assert loaded == manifest
