"""Tests for ResilientJob: the full fault-tolerance stack."""

import pytest

from repro.errors import ConfigurationError
from repro.orchestration import JobConfig, ResilientJob
from repro.workloads import ConjugateGradientWorkload, SyntheticWorkload


def synthetic_config(**overrides):
    params = dict(
        workload_factory=lambda: SyntheticWorkload(
            total_steps=40, compute_seconds=0.02, message_bytes=2048
        ),
        virtual_processes=4,
        checkpointing=False,
    )
    params.update(overrides)
    return JobConfig(**params)


class TestFailureFree:
    def test_completes_without_faults(self):
        report = ResilientJob(synthetic_config()).run()
        assert report.completed
        assert report.attempts == 1
        assert report.failures_injected == 0
        assert report.rollbacks == 0
        assert report.result["iterations"] == 40

    def test_redundancy_overhead_monotone(self):
        times = {
            r: ResilientJob(synthetic_config(redundancy=r)).run().total_time
            for r in (1.0, 2.0, 3.0)
        }
        assert times[1.0] < times[2.0] < times[3.0]

    def test_redundancy_preserves_answer(self):
        plain = ResilientJob(synthetic_config(redundancy=1.0)).run()
        redundant = ResilientJob(synthetic_config(redundancy=2.5)).run()
        assert plain.result == redundant.result

    def test_physical_process_count(self):
        report = ResilientJob(synthetic_config(redundancy=2.5)).run()
        assert report.physical_processes == 10

    def test_report_minutes(self):
        report = ResilientJob(synthetic_config()).run()
        assert report.total_minutes == pytest.approx(report.total_time / 60.0)


class TestCheckpointingAndFaults:
    def fault_config(self, **overrides):
        params = dict(
            workload_factory=lambda: SyntheticWorkload(
                total_steps=60, compute_seconds=0.05, message_bytes=2048
            ),
            virtual_processes=4,
            node_mtbf=8.0,
            checkpoint_interval=0.4,
            checkpoint_cost=0.04,
            restart_cost=0.2,
            seed=3,
        )
        params.update(overrides)
        return JobConfig(**params)

    def test_completes_under_failures(self):
        report = ResilientJob(self.fault_config()).run()
        assert report.completed
        assert report.failures_injected > 0
        assert report.result["iterations"] == 60

    def test_result_identical_to_failure_free(self):
        faulty = ResilientJob(self.fault_config()).run()
        clean = ResilientJob(synthetic_config(
            workload_factory=self.fault_config().workload_factory
        )).run()
        assert faulty.result == clean.result

    def test_rollbacks_counted_for_unreplicated(self):
        report = ResilientJob(self.fault_config(redundancy=1.0)).run()
        # r=1: every injected failure that lands mid-attempt kills the job.
        assert report.rollbacks > 0
        assert report.attempts == report.rollbacks + 1

    def test_redundancy_reduces_rollbacks(self):
        plain = ResilientJob(self.fault_config(redundancy=1.0)).run()
        dual = ResilientJob(self.fault_config(redundancy=2.0)).run()
        assert dual.rollbacks < plain.rollbacks

    def test_checkpoints_committed(self):
        report = ResilientJob(self.fault_config()).run()
        assert report.checkpoints_committed > 0
        assert report.time_in_checkpoints > 0

    def test_deterministic_given_seed(self):
        first = ResilientJob(self.fault_config(seed=9)).run()
        second = ResilientJob(self.fault_config(seed=9)).run()
        assert first.total_time == second.total_time
        assert first.failures_injected == second.failures_injected

    def test_seed_changes_failure_trace(self):
        first = ResilientJob(self.fault_config(seed=1)).run()
        second = ResilientJob(self.fault_config(seed=2)).run()
        assert (
            first.total_time != second.total_time
            or first.failures_injected != second.failures_injected
        )

    def test_max_restarts_bounds_attempts(self):
        report = ResilientJob(
            self.fault_config(node_mtbf=0.3, max_restarts=3)
        ).run()
        if not report.completed:
            assert report.attempts == 4

    def test_derived_daly_interval(self):
        config = self.fault_config(
            checkpoint_interval=None,
            expected_base_time=3.0,
            alpha_estimate=0.2,
        )
        report = ResilientJob(config).run()
        assert report.checkpoint_interval is not None
        assert report.checkpoint_interval > 0

    def test_cg_recovers_bit_exact_numerics(self):
        def factory():
            return ConjugateGradientWorkload(
                grid=8, total_steps=30, cycle_length=25, flops_per_second=2e4
            )

        faulty = ResilientJob(
            JobConfig(
                workload_factory=factory,
                virtual_processes=4,
                redundancy=1.5,
                node_mtbf=20.0,
                checkpoint_interval=1.0,
                checkpoint_cost=0.05,
                restart_cost=0.2,
                seed=5,
            )
        ).run()
        clean = ResilientJob(
            JobConfig(
                workload_factory=factory, virtual_processes=4, checkpointing=False
            )
        ).run()
        assert faulty.completed
        assert faulty.result["checksum"] == pytest.approx(
            clean.result["checksum"], abs=1e-12
        )


class TestTimeline:
    def fault_config(self, **overrides):
        params = dict(
            workload_factory=lambda: SyntheticWorkload(
                total_steps=50, compute_seconds=0.05, message_bytes=2048
            ),
            virtual_processes=4,
            node_mtbf=6.0,
            checkpoint_interval=0.4,
            checkpoint_cost=0.04,
            restart_cost=0.2,
            seed=3,
        )
        params.update(overrides)
        return JobConfig(**params)

    def test_timeline_is_time_ordered(self):
        report = ResilientJob(self.fault_config()).run()
        times = [event.time for event in report.timeline]
        assert times == sorted(times)

    def test_timeline_event_counts_match_report(self):
        report = ResilientJob(self.fault_config()).run()
        kinds = [event.kind for event in report.timeline]
        assert kinds.count("failure") == report.failures_injected
        assert kinds.count("rollback") == report.rollbacks
        assert kinds.count("checkpoint_commit") == report.checkpoints_committed
        assert kinds.count("attempt_start") == report.attempts
        assert kinds.count("completed") == (1 if report.completed else 0)

    def test_rollback_follows_failure(self):
        report = ResilientJob(self.fault_config(redundancy=1.0)).run()
        kinds = [event.kind for event in report.timeline]
        if "rollback" in kinds:
            first_rollback = kinds.index("rollback")
            assert "failure" in kinds[:first_rollback]

    def test_failure_free_timeline_minimal(self):
        report = ResilientJob(
            self.fault_config(node_mtbf=None, checkpointing=False,
                              checkpoint_interval=None)
        ).run()
        kinds = {event.kind for event in report.timeline}
        assert kinds == {"attempt_start", "completed"}


class TestConfigValidation:
    def test_bad_processes(self):
        with pytest.raises(ConfigurationError):
            synthetic_config(virtual_processes=0)

    def test_bad_redundancy(self):
        with pytest.raises(ConfigurationError):
            synthetic_config(redundancy=0.5)

    def test_bad_mode(self):
        with pytest.raises(ConfigurationError):
            synthetic_config(mode="psychic")

    def test_bad_mtbf(self):
        with pytest.raises(ConfigurationError):
            synthetic_config(node_mtbf=0.0)

    def test_daly_needs_estimates(self):
        config = synthetic_config(checkpointing=True, node_mtbf=10.0)
        with pytest.raises(ConfigurationError):
            config.resolve_interval()

    def test_no_checkpointing_no_interval(self):
        assert synthetic_config().resolve_interval() is None

    def test_bad_failure_distribution(self):
        with pytest.raises(ConfigurationError):
            synthetic_config(failure_distribution="uniform")


class TestFailureDistributions:
    @pytest.mark.parametrize("distribution", ["exponential", "weibull", "lognormal"])
    def test_runs_complete_under_any_distribution(self, distribution):
        config = JobConfig(
            workload_factory=lambda: SyntheticWorkload(
                total_steps=40, compute_seconds=0.03, message_bytes=2048
            ),
            virtual_processes=4,
            redundancy=2.0,
            node_mtbf=5.0,
            checkpoint_interval=0.3,
            checkpoint_cost=0.03,
            restart_cost=0.15,
            failure_distribution=distribution,
            seed=17,
        )
        report = ResilientJob(config).run()
        assert report.completed
        assert report.result["iterations"] == 40
