"""Tests for campaign sweeps."""

import pytest

from repro.errors import ConfigurationError
from repro.orchestration import (
    JobConfig,
    run_failure_free_sweep,
    run_redundancy_sweep,
)
from repro.orchestration.campaign import cells_to_matrix
from repro.workloads import SyntheticWorkload


def base_config():
    return JobConfig(
        workload_factory=lambda: SyntheticWorkload(
            total_steps=30, compute_seconds=0.02, message_bytes=2048
        ),
        virtual_processes=4,
        checkpoint_interval=0.3,
        checkpoint_cost=0.02,
        restart_cost=0.1,
        seed=1,
    )


class TestRedundancySweep:
    def test_grid_coverage(self):
        cells = run_redundancy_sweep(
            base_config(), node_mtbfs=[5.0, 10.0], degrees=[1.0, 2.0]
        )
        assert len(cells) == 4
        assert {(c.node_mtbf, c.redundancy) for c in cells} == {
            (5.0, 1.0), (5.0, 2.0), (10.0, 1.0), (10.0, 2.0),
        }

    def test_all_cells_complete(self):
        cells = run_redundancy_sweep(
            base_config(), node_mtbfs=[8.0], degrees=[1.0, 1.5, 2.0]
        )
        assert all(cell.report.completed for cell in cells)

    def test_common_random_numbers_within_row(self):
        cells = run_redundancy_sweep(
            base_config(), node_mtbfs=[5.0, 10.0], degrees=[1.0]
        )
        # Different rows use different seeds (by design).
        seeds_differ = (
            cells[0].report.failures_injected != cells[1].report.failures_injected
            or cells[0].report.total_time != cells[1].report.total_time
        )
        assert seeds_differ or True  # stochastic; just ensure both ran
        assert all(c.report.completed for c in cells)

    def test_progress_callback(self):
        seen = []
        run_redundancy_sweep(
            base_config(), node_mtbfs=[8.0], degrees=[1.0], progress=seen.append
        )
        assert len(seen) == 1

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            run_redundancy_sweep(base_config(), node_mtbfs=[], degrees=[1.0])


class TestFailureFreeSweep:
    def test_no_failures_no_checkpoints(self):
        cells = run_failure_free_sweep(base_config(), degrees=[1.0, 2.0])
        for cell in cells:
            assert cell.node_mtbf is None
            assert cell.report.failures_injected == 0
            assert cell.report.checkpoints_committed == 0

    def test_overhead_monotone_at_integers(self):
        cells = run_failure_free_sweep(base_config(), degrees=[1.0, 2.0, 3.0])
        times = [cell.report.total_time for cell in cells]
        assert times == sorted(times)

    def test_minutes_property(self):
        cells = run_failure_free_sweep(base_config(), degrees=[1.0])
        assert cells[0].minutes == pytest.approx(cells[0].report.total_time / 60)

    def test_empty_degrees_rejected(self):
        with pytest.raises(ConfigurationError):
            run_failure_free_sweep(base_config(), degrees=[])


class TestMatrix:
    def test_pivot(self):
        cells = run_redundancy_sweep(
            base_config(), node_mtbfs=[5.0], degrees=[1.0, 2.0]
        )
        matrix = cells_to_matrix(cells)
        assert set(matrix) == {5.0}
        assert set(matrix[5.0]) == {1.0, 2.0}
