"""Tests for the parallel campaign executor.

Covers worker-count resolution (argument > ``REPRO_WORKERS`` > serial),
ordered result collection, progress marshalling, per-cell error capture,
the serial fallback for unpicklable configs, and the determinism
regression: a pooled campaign is bit-identical to a serial one.
"""

import os
import signal
import time
from functools import partial

import pytest

from repro.errors import ConfigurationError
from repro.faults import StorageFaultConfig
from repro.orchestration import (
    CampaignExecutionError,
    CampaignExecutor,
    CellSpec,
    JobConfig,
    resolve_cell_retries,
    resolve_cell_timeout,
    resolve_workers,
    run_failure_free_sweep,
    run_redundancy_sweep,
)
from repro.orchestration.campaign import redundancy_sweep_specs
from repro.workloads import SyntheticWorkload


#: PID of the pytest process: the suicide workloads below must never
#: fire in the parent (e.g. on the serial-fallback path) — only in a
#: forked pool worker, whose PID differs.
_PARENT_PID = os.getpid()


def _kill_current_worker(delay):
    if os.getpid() == _PARENT_PID:
        raise RuntimeError("refusing to kill the test process itself")
    if delay:
        time.sleep(delay)
    os.kill(os.getpid(), signal.SIGKILL)


class KamikazeWorkload(SyntheticWorkload):
    """Kills its host pool worker once; a sentinel file marks it done.

    Module-level (picklable by reference) so pool workers can build it.
    The delay lets sibling cells finish first, making the mid-campaign
    breakage deterministic rather than a pool-creation failure.
    """

    def __init__(self, sentinel, delay=0.0, **kwargs):
        super().__init__(**kwargs)
        self._sentinel = sentinel
        self._delay = delay

    def configure(self, rank, size, rng):
        if not os.path.exists(self._sentinel):
            with open(self._sentinel, "w"):
                pass
            _kill_current_worker(self._delay)
        return super().configure(rank, size, rng)


class PoisonWorkload(SyntheticWorkload):
    """Kills its host pool worker every single time (retry exhaustion)."""

    def __init__(self, delay=0.0, **kwargs):
        super().__init__(**kwargs)
        self._delay = delay

    def configure(self, rank, size, rng):
        _kill_current_worker(self._delay)
        return super().configure(rank, size, rng)


class GlacialWorkload(SyntheticWorkload):
    """Burns wall-clock time in the worker (for the cell-timeout tests)."""

    def __init__(self, sleep_seconds, **kwargs):
        super().__init__(**kwargs)
        self._sleep_seconds = sleep_seconds

    def configure(self, rank, size, rng):
        time.sleep(self._sleep_seconds)
        return super().configure(rank, size, rng)


def special_config(factory_cls, **factory_kwargs):
    """A picklable config around one of the wall-clock test workloads."""
    return picklable_config(
        workload_factory=partial(
            factory_cls,
            total_steps=12,
            compute_seconds=0.02,
            message_bytes=2048,
            **factory_kwargs,
        )
    )


def picklable_config(**overrides):
    """A small, picklable job config (factory is a partial, not a lambda)."""
    params = dict(
        workload_factory=partial(
            SyntheticWorkload,
            total_steps=12,
            compute_seconds=0.02,
            message_bytes=2048,
        ),
        virtual_processes=4,
        checkpoint_interval=0.3,
        checkpoint_cost=0.02,
        restart_cost=0.1,
        seed=7,
    )
    params.update(overrides)
    return JobConfig(**params)


def lambda_config(**overrides):
    """Same job, but with an unpicklable (closure) factory."""
    params = dict(
        workload_factory=lambda: SyntheticWorkload(
            total_steps=12, compute_seconds=0.02, message_bytes=2048
        ),
        virtual_processes=4,
        checkpoint_interval=0.3,
        checkpoint_cost=0.02,
        restart_cost=0.1,
        seed=7,
    )
    params.update(overrides)
    return JobConfig(**params)


def broken_config():
    """Passes __post_init__ but raises at run time (derive-Daly w/o MTBF)."""
    return picklable_config(
        node_mtbf=None, checkpointing=True, checkpoint_interval=None
    )


def report_signature(report):
    """The bit-exact comparable core of a JobReport."""
    return (
        report.completed,
        report.total_time,
        report.attempts,
        report.failures_injected,
        report.rollbacks,
        report.checkpoints_committed,
        report.time_in_checkpoints,
        tuple(sorted(report.counters.items())),
        report.checkpoint_interval,
        report.physical_processes,
        tuple((e.time, e.kind, e.detail) for e in report.timeline),
    )


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            resolve_workers(None)

    def test_nonpositive_clamped_to_serial(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1


class TestSerialExecution:
    def test_ordered_outcomes(self):
        specs = redundancy_sweep_specs(
            picklable_config(), node_mtbfs=[5.0, 10.0], degrees=[1.0, 2.0]
        )
        executor = CampaignExecutor(workers=1)
        outcomes = executor.run(specs)
        assert executor.last_mode == "serial"
        assert [(o.spec.node_mtbf, o.spec.redundancy) for o in outcomes] == [
            (5.0, 1.0), (5.0, 2.0), (10.0, 1.0), (10.0, 2.0),
        ]
        assert all(o.ok for o in outcomes)

    def test_progress_callback_per_cell(self):
        specs = redundancy_sweep_specs(
            picklable_config(), node_mtbfs=[5.0], degrees=[1.0, 2.0]
        )
        seen = []
        CampaignExecutor(workers=1).run(specs, progress=seen.append)
        assert len(seen) == 2
        assert all(o.ok for o in seen)

    def test_error_captured_not_raised(self):
        specs = [
            CellSpec(node_mtbf=None, redundancy=1.0, config=broken_config()),
            CellSpec(node_mtbf=None, redundancy=2.0, config=picklable_config()),
        ]
        outcomes = CampaignExecutor(workers=1).run(specs)
        assert not outcomes[0].ok
        assert outcomes[0].error_type == "ConfigurationError"
        assert "node_mtbf" in outcomes[0].error
        assert outcomes[1].ok  # the campaign survived the broken cell


class TestPoolExecution:
    def test_pool_matches_serial_bit_identical(self):
        """Determinism regression: workers=4 == workers=1, bit for bit."""
        base = picklable_config(node_mtbf=2.0)  # failures + rollbacks active
        kwargs = dict(node_mtbfs=[2.0, 4.0], degrees=[1.0, 2.0])
        serial = run_redundancy_sweep(base, workers=1, **kwargs)
        pooled = run_redundancy_sweep(base, workers=4, **kwargs)
        assert len(serial) == len(pooled) == 4
        for left, right in zip(serial, pooled):
            assert left.node_mtbf == right.node_mtbf
            assert left.redundancy == right.redundancy
            assert report_signature(left.report) == report_signature(right.report)

    def test_pool_error_capture_keeps_campaign_alive(self):
        specs = [
            CellSpec(node_mtbf=None, redundancy=1.0, config=picklable_config()),
            CellSpec(node_mtbf=None, redundancy=1.5, config=broken_config()),
            CellSpec(node_mtbf=None, redundancy=2.0, config=picklable_config()),
        ]
        executor = CampaignExecutor(workers=2)
        outcomes = executor.run(specs)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error_type == "ConfigurationError"

    def test_unpicklable_config_falls_back_to_serial(self):
        specs = redundancy_sweep_specs(
            lambda_config(), node_mtbfs=[5.0], degrees=[1.0, 2.0]
        )
        executor = CampaignExecutor(workers=2)
        outcomes = executor.run(specs)
        assert executor.last_mode == "serial"
        assert all(o.ok for o in outcomes)

    def test_single_cell_stays_serial(self):
        specs = redundancy_sweep_specs(
            picklable_config(), node_mtbfs=[5.0], degrees=[1.0]
        )
        executor = CampaignExecutor(workers=4)
        outcomes = executor.run(specs)
        assert executor.last_mode == "serial"
        assert outcomes[0].ok


class TestSweepErrorPolicy:
    def broken_sweep_config(self):
        # Derive-Daly checkpointing without expected_base_time: passes
        # construction, raises once the sweep fills in node_mtbf and runs.
        return picklable_config(checkpoint_interval=None, expected_base_time=None)

    def test_strict_raises_aggregate_error(self):
        with pytest.raises(CampaignExecutionError) as excinfo:
            run_redundancy_sweep(
                self.broken_sweep_config(), node_mtbfs=[5.0], degrees=[1.0, 2.0]
            )
        assert len(excinfo.value.failures) == 2

    def test_lenient_drops_failed_cells(self):
        cells = run_redundancy_sweep(
            self.broken_sweep_config(),
            node_mtbfs=[5.0],
            degrees=[1.0, 2.0],
            strict=False,
        )
        assert cells == []

    def test_env_workers_used_by_sweep(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        cells = run_failure_free_sweep(picklable_config(), degrees=[1.0, 2.0])
        assert len(cells) == 2
        assert all(cell.report.completed for cell in cells)


class TestResolveHardeningKnobs:
    def test_timeout_default_is_unlimited(self, monkeypatch):
        monkeypatch.delenv("REPRO_CELL_TIMEOUT", raising=False)
        assert resolve_cell_timeout(None) is None

    def test_timeout_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "7.5")
        assert resolve_cell_timeout(None) == 7.5

    def test_timeout_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "7.5")
        assert resolve_cell_timeout(3.0) == 3.0

    def test_timeout_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "soon")
        with pytest.raises(ConfigurationError):
            resolve_cell_timeout(None)
        with pytest.raises(ConfigurationError):
            resolve_cell_timeout(0.0)

    def test_retries_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CELL_RETRIES", raising=False)
        assert resolve_cell_retries(None) == 2

    def test_retries_env_and_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_RETRIES", "5")
        assert resolve_cell_retries(None) == 5
        assert resolve_cell_retries(0) == 0

    def test_retries_invalid_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_cell_retries(-1)


class TestChaosNoOp:
    def test_zero_prob_fault_model_bit_identical(self):
        """Acceptance: an all-zero chaos config must not perturb output."""
        plain = picklable_config(node_mtbf=2.0)
        disarmed = picklable_config(
            node_mtbf=2.0, storage_faults=StorageFaultConfig()
        )
        kwargs = dict(node_mtbfs=[2.0, 4.0], degrees=[1.0, 2.0])
        baseline = run_redundancy_sweep(plain, workers=1, **kwargs)
        chaos = run_redundancy_sweep(disarmed, workers=1, **kwargs)
        for left, right in zip(baseline, chaos):
            assert report_signature(left.report) == report_signature(right.report)
        assert all(c.report.storage_fault_counts == {} for c in baseline)


class TestSelfHealing:
    def test_killed_worker_loses_zero_cells(self, tmp_path):
        """Acceptance: a SIGKILLed pool worker mid-campaign loses nothing."""
        sentinel = str(tmp_path / "killed-once")
        specs = [
            CellSpec(node_mtbf=None, redundancy=1.0, config=picklable_config()),
            CellSpec(
                node_mtbf=None,
                redundancy=1.5,
                config=special_config(KamikazeWorkload, sentinel=sentinel, delay=1.0),
            ),
            CellSpec(node_mtbf=None, redundancy=2.0, config=picklable_config()),
        ]
        executor = CampaignExecutor(workers=2)
        outcomes = executor.run(specs)
        assert len(outcomes) == len(specs)
        assert all(o.ok for o in outcomes), [
            (o.error_type, o.error) for o in outcomes if not o.ok
        ]
        assert executor.pool_breakages >= 1
        assert os.path.exists(sentinel)

    def test_poison_cell_synthesized_after_retries(self):
        """A cell that kills its worker every time is eventually declared
        lost instead of rebuilding pools forever — and the healthy cells
        still all complete."""
        specs = [
            CellSpec(node_mtbf=None, redundancy=1.0, config=picklable_config()),
            CellSpec(
                node_mtbf=None,
                redundancy=1.5,
                config=special_config(PoisonWorkload, delay=0.3),
            ),
            CellSpec(node_mtbf=None, redundancy=2.0, config=picklable_config()),
        ]
        executor = CampaignExecutor(workers=2, cell_retries=1)
        outcomes = executor.run(specs)
        assert len(outcomes) == len(specs)
        statuses = [o.ok for o in outcomes]
        # The poison cell must come back as a synthesized failure (pool
        # path) or a captured error (serial fallback); never dropped.
        assert statuses[0] and statuses[2]
        assert not statuses[1]
        assert outcomes[1].error_type is not None

    def test_cell_timeout_fails_slow_cell_only(self):
        specs = [
            CellSpec(node_mtbf=None, redundancy=1.0, config=picklable_config()),
            CellSpec(
                node_mtbf=None,
                redundancy=1.5,
                config=special_config(GlacialWorkload, sleep_seconds=30.0),
            ),
        ]
        executor = CampaignExecutor(workers=2, cell_timeout=1.5)
        start = time.monotonic()
        outcomes = executor.run(specs)
        elapsed = time.monotonic() - start
        assert elapsed < 15.0  # the 30 s sleeper was reclaimed, not awaited
        assert len(outcomes) == 2
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert outcomes[1].error_type == "CellTimeout"
        assert executor.cells_timed_out == 1

    def test_timeout_survivors_move_to_fresh_pool(self):
        specs = [
            CellSpec(
                node_mtbf=None,
                redundancy=1.0,
                config=special_config(GlacialWorkload, sleep_seconds=30.0),
            ),
            CellSpec(node_mtbf=None, redundancy=1.5, config=picklable_config()),
            CellSpec(node_mtbf=None, redundancy=2.0, config=picklable_config()),
            CellSpec(node_mtbf=None, redundancy=2.5, config=picklable_config()),
        ]
        executor = CampaignExecutor(workers=2, cell_timeout=2.0)
        outcomes = executor.run(specs)
        assert len(outcomes) == 4
        assert [o.ok for o in outcomes] == [False, True, True, True]
        assert outcomes[0].error_type == "CellTimeout"

    def test_no_timeout_means_no_deadline_bookkeeping(self):
        specs = redundancy_sweep_specs(
            picklable_config(), node_mtbfs=[5.0], degrees=[1.0, 2.0]
        )
        executor = CampaignExecutor(workers=2, cell_timeout=None)
        outcomes = executor.run(specs)
        assert all(o.ok for o in outcomes)
        assert executor.cells_timed_out == 0
