"""Tests for the parallel campaign executor.

Covers worker-count resolution (argument > ``REPRO_WORKERS`` > serial),
ordered result collection, progress marshalling, per-cell error capture,
the serial fallback for unpicklable configs, and the determinism
regression: a pooled campaign is bit-identical to a serial one.
"""

from functools import partial

import pytest

from repro.errors import ConfigurationError
from repro.orchestration import (
    CampaignExecutionError,
    CampaignExecutor,
    CellSpec,
    JobConfig,
    resolve_workers,
    run_failure_free_sweep,
    run_redundancy_sweep,
)
from repro.orchestration.campaign import redundancy_sweep_specs
from repro.workloads import SyntheticWorkload


def picklable_config(**overrides):
    """A small, picklable job config (factory is a partial, not a lambda)."""
    params = dict(
        workload_factory=partial(
            SyntheticWorkload,
            total_steps=12,
            compute_seconds=0.02,
            message_bytes=2048,
        ),
        virtual_processes=4,
        checkpoint_interval=0.3,
        checkpoint_cost=0.02,
        restart_cost=0.1,
        seed=7,
    )
    params.update(overrides)
    return JobConfig(**params)


def lambda_config(**overrides):
    """Same job, but with an unpicklable (closure) factory."""
    params = dict(
        workload_factory=lambda: SyntheticWorkload(
            total_steps=12, compute_seconds=0.02, message_bytes=2048
        ),
        virtual_processes=4,
        checkpoint_interval=0.3,
        checkpoint_cost=0.02,
        restart_cost=0.1,
        seed=7,
    )
    params.update(overrides)
    return JobConfig(**params)


def broken_config():
    """Passes __post_init__ but raises at run time (derive-Daly w/o MTBF)."""
    return picklable_config(
        node_mtbf=None, checkpointing=True, checkpoint_interval=None
    )


def report_signature(report):
    """The bit-exact comparable core of a JobReport."""
    return (
        report.completed,
        report.total_time,
        report.attempts,
        report.failures_injected,
        report.rollbacks,
        report.checkpoints_committed,
        report.time_in_checkpoints,
        tuple(sorted(report.counters.items())),
        report.checkpoint_interval,
        report.physical_processes,
        tuple((e.time, e.kind, e.detail) for e in report.timeline),
    )


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            resolve_workers(None)

    def test_nonpositive_clamped_to_serial(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1


class TestSerialExecution:
    def test_ordered_outcomes(self):
        specs = redundancy_sweep_specs(
            picklable_config(), node_mtbfs=[5.0, 10.0], degrees=[1.0, 2.0]
        )
        executor = CampaignExecutor(workers=1)
        outcomes = executor.run(specs)
        assert executor.last_mode == "serial"
        assert [(o.spec.node_mtbf, o.spec.redundancy) for o in outcomes] == [
            (5.0, 1.0), (5.0, 2.0), (10.0, 1.0), (10.0, 2.0),
        ]
        assert all(o.ok for o in outcomes)

    def test_progress_callback_per_cell(self):
        specs = redundancy_sweep_specs(
            picklable_config(), node_mtbfs=[5.0], degrees=[1.0, 2.0]
        )
        seen = []
        CampaignExecutor(workers=1).run(specs, progress=seen.append)
        assert len(seen) == 2
        assert all(o.ok for o in seen)

    def test_error_captured_not_raised(self):
        specs = [
            CellSpec(node_mtbf=None, redundancy=1.0, config=broken_config()),
            CellSpec(node_mtbf=None, redundancy=2.0, config=picklable_config()),
        ]
        outcomes = CampaignExecutor(workers=1).run(specs)
        assert not outcomes[0].ok
        assert outcomes[0].error_type == "ConfigurationError"
        assert "node_mtbf" in outcomes[0].error
        assert outcomes[1].ok  # the campaign survived the broken cell


class TestPoolExecution:
    def test_pool_matches_serial_bit_identical(self):
        """Determinism regression: workers=4 == workers=1, bit for bit."""
        base = picklable_config(node_mtbf=2.0)  # failures + rollbacks active
        kwargs = dict(node_mtbfs=[2.0, 4.0], degrees=[1.0, 2.0])
        serial = run_redundancy_sweep(base, workers=1, **kwargs)
        pooled = run_redundancy_sweep(base, workers=4, **kwargs)
        assert len(serial) == len(pooled) == 4
        for left, right in zip(serial, pooled):
            assert left.node_mtbf == right.node_mtbf
            assert left.redundancy == right.redundancy
            assert report_signature(left.report) == report_signature(right.report)

    def test_pool_error_capture_keeps_campaign_alive(self):
        specs = [
            CellSpec(node_mtbf=None, redundancy=1.0, config=picklable_config()),
            CellSpec(node_mtbf=None, redundancy=1.5, config=broken_config()),
            CellSpec(node_mtbf=None, redundancy=2.0, config=picklable_config()),
        ]
        executor = CampaignExecutor(workers=2)
        outcomes = executor.run(specs)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error_type == "ConfigurationError"

    def test_unpicklable_config_falls_back_to_serial(self):
        specs = redundancy_sweep_specs(
            lambda_config(), node_mtbfs=[5.0], degrees=[1.0, 2.0]
        )
        executor = CampaignExecutor(workers=2)
        outcomes = executor.run(specs)
        assert executor.last_mode == "serial"
        assert all(o.ok for o in outcomes)

    def test_single_cell_stays_serial(self):
        specs = redundancy_sweep_specs(
            picklable_config(), node_mtbfs=[5.0], degrees=[1.0]
        )
        executor = CampaignExecutor(workers=4)
        outcomes = executor.run(specs)
        assert executor.last_mode == "serial"
        assert outcomes[0].ok


class TestSweepErrorPolicy:
    def broken_sweep_config(self):
        # Derive-Daly checkpointing without expected_base_time: passes
        # construction, raises once the sweep fills in node_mtbf and runs.
        return picklable_config(checkpoint_interval=None, expected_base_time=None)

    def test_strict_raises_aggregate_error(self):
        with pytest.raises(CampaignExecutionError) as excinfo:
            run_redundancy_sweep(
                self.broken_sweep_config(), node_mtbfs=[5.0], degrees=[1.0, 2.0]
            )
        assert len(excinfo.value.failures) == 2

    def test_lenient_drops_failed_cells(self):
        cells = run_redundancy_sweep(
            self.broken_sweep_config(),
            node_mtbfs=[5.0],
            degrees=[1.0, 2.0],
            strict=False,
        )
        assert cells == []

    def test_env_workers_used_by_sweep(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        cells = run_failure_free_sweep(picklable_config(), degrees=[1.0, 2.0])
        assert len(cells) == 2
        assert all(cell.report.completed for cell in cells)
