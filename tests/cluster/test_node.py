"""Tests for the node state machine."""

import pytest

from repro.cluster import Node, NodeState
from repro.errors import ConfigurationError, NodeStateError


class TestConstruction:
    def test_defaults(self):
        node = Node(0)
        assert node.state is NodeState.UP
        assert node.is_up
        assert node.cores == 16

    def test_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            Node(-1)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            Node(0, cores=0)

    def test_rejects_nonpositive_mtbf(self):
        with pytest.raises(ConfigurationError):
            Node(0, mtbf=0.0)


class TestTransitions:
    def test_fail(self):
        node = Node(1)
        node.fail(now=12.5)
        assert node.state is NodeState.DOWN
        assert node.failed_at == 12.5
        assert not node.is_up

    def test_repair(self):
        node = Node(1)
        node.fail(now=1.0)
        node.repair()
        assert node.is_up
        assert node.failed_at is None

    def test_retire(self):
        node = Node(1)
        node.fail(now=1.0)
        node.retire()
        assert node.state is NodeState.RETIRED

    def test_double_fail_rejected(self):
        node = Node(1)
        node.fail(now=1.0)
        with pytest.raises(NodeStateError):
            node.fail(now=2.0)

    def test_repair_up_node_rejected(self):
        with pytest.raises(NodeStateError):
            Node(1).repair()

    def test_retire_up_node_rejected(self):
        with pytest.raises(NodeStateError):
            Node(1).retire()

    def test_fail_retired_node_rejected(self):
        node = Node(1)
        node.fail(now=1.0)
        node.retire()
        with pytest.raises(NodeStateError):
            node.fail(now=3.0)
