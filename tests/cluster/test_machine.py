"""Tests for the machine inventory."""

import pytest

from repro.cluster import Machine, NodeState
from repro.errors import AllocationError, ConfigurationError


class TestInventory:
    def test_len(self):
        assert len(Machine(node_count=5)) == 5

    def test_node_lookup(self):
        machine = Machine(node_count=3)
        assert machine.node(2).index == 2

    def test_bad_index(self):
        with pytest.raises(ConfigurationError):
            Machine(node_count=3).node(99)

    def test_rejects_empty_machine(self):
        with pytest.raises(ConfigurationError):
            Machine(node_count=0)

    def test_up_nodes(self):
        machine = Machine(node_count=4)
        machine.fail_node(1, now=0.0)
        assert [node.index for node in machine.up_nodes()] == [0, 2, 3]


class TestFailureHandling:
    def test_fail_node_notifies_watchers(self):
        machine = Machine(node_count=2)
        deaths = []
        machine.on_node_death(lambda node: deaths.append(node.index))
        machine.fail_node(0, now=5.0)
        assert deaths == [0]

    def test_replace_mints_spare(self):
        machine = Machine(node_count=2, cores_per_node=8)
        machine.fail_node(0, now=1.0)
        spare = machine.replace_node(0)
        assert spare.index == 2
        assert spare.cores == 8
        assert machine.node(0).state is NodeState.RETIRED
        assert len(machine) == 3

    def test_replace_up_node_rejected(self):
        machine = Machine(node_count=2)
        with pytest.raises(AllocationError):
            machine.replace_node(0)

    def test_spare_pool_limit(self):
        machine = Machine(node_count=2, spares=1)
        machine.fail_node(0, now=0.0)
        machine.replace_node(0)
        machine.fail_node(1, now=1.0)
        with pytest.raises(AllocationError):
            machine.replace_node(1)

    def test_unlimited_spares_by_default(self):
        machine = Machine(node_count=1)
        for step in range(5):
            index = len(machine) - 1
            machine.fail_node(index, now=float(step))
            machine.replace_node(index)
        assert len(machine) == 6


class TestStatistics:
    def test_failure_count(self):
        machine = Machine(node_count=3)
        machine.fail_node(0, now=0.0)
        assert machine.failure_count() == 1

    def test_summary(self):
        machine = Machine(node_count=3)
        machine.fail_node(0, now=0.0)
        machine.replace_node(0)
        summary = machine.summary()
        assert summary == {"up": 3, "down": 0, "retired": 1}
