"""Tests for placement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import (
    Machine,
    packed_placement,
    replica_exclusive_placement,
    spread_placement,
)
from repro.errors import AllocationError, ConfigurationError


class TestSpread:
    def test_one_rank_per_node(self):
        machine = Machine(node_count=4)
        placement = spread_placement(machine, 4)
        assert sorted(placement.values()) == [0, 1, 2, 3]

    def test_skips_down_nodes(self):
        machine = Machine(node_count=4)
        machine.fail_node(1, now=0.0)
        placement = spread_placement(machine, 3)
        assert 1 not in placement.values()

    def test_insufficient_nodes(self):
        with pytest.raises(AllocationError):
            spread_placement(Machine(node_count=2), 3)

    def test_rejects_zero_ranks(self):
        with pytest.raises(ConfigurationError):
            spread_placement(Machine(node_count=2), 0)


class TestPacked:
    def test_fills_cores_first(self):
        machine = Machine(node_count=2, cores_per_node=4)
        placement = packed_placement(machine, 6)
        assert [placement[r] for r in range(6)] == [0, 0, 0, 0, 1, 1]

    def test_needs_enough_nodes(self):
        machine = Machine(node_count=1, cores_per_node=2)
        with pytest.raises(AllocationError):
            packed_placement(machine, 3)

    @given(st.integers(min_value=1, max_value=64))
    def test_every_rank_placed(self, ranks):
        machine = Machine(node_count=8, cores_per_node=16)
        placement = packed_placement(machine, ranks)
        assert set(placement) == set(range(ranks))


class TestReplicaExclusive:
    def test_replicas_on_distinct_nodes(self):
        machine = Machine(node_count=4, cores_per_node=16)
        groups = [[0, 1], [2, 3], [4]]
        placement = replica_exclusive_placement(machine, groups)
        for group in groups:
            nodes = [placement[rank] for rank in group]
            assert len(set(nodes)) == len(nodes)

    def test_group_wider_than_machine_rejected(self):
        machine = Machine(node_count=2)
        with pytest.raises(AllocationError):
            replica_exclusive_placement(machine, [[0, 1, 2]])

    def test_core_exhaustion_detected(self):
        machine = Machine(node_count=2, cores_per_node=1)
        with pytest.raises(AllocationError):
            replica_exclusive_placement(machine, [[0, 1], [2, 3]])

    def test_empty_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            replica_exclusive_placement(Machine(node_count=2), [])

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=3))
    def test_all_ranks_placed(self, virtuals, replicas):
        machine = Machine(node_count=8, cores_per_node=16)
        rank = 0
        groups = []
        for _ in range(virtuals):
            groups.append(list(range(rank, rank + replicas)))
            rank += replicas
        placement = replica_exclusive_placement(machine, groups)
        assert set(placement) == set(range(rank))
