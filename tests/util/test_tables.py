"""Tests for table rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.util import render_series, render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "b"], [[1, 2.5]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-+-" in lines[2]
        assert "2.50" in lines[3]

    def test_no_title(self):
        text = render_table(["x"], [[1]])
        assert not text.startswith("\n")
        assert text.splitlines()[0].strip() == "x"

    def test_large_numbers_compact(self):
        text = render_table(["n"], [[123456.789]])
        assert "1.23e+05" in text

    def test_inf_and_nan(self):
        text = render_table(["v"], [[float("inf")], [float("nan")]])
        assert "inf" in text and "nan" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])

    def test_empty_rows_ok(self):
        text = render_table(["only", "headers"], [])
        assert "only" in text


class TestRenderSeries:
    def test_pairs(self):
        text = render_series("y", [1, 2], [10, 20])
        assert "10" in text and "20" in text

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            render_series("y", [1], [1, 2])
