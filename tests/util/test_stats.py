"""Tests for fit statistics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util import mean_abs_pct_error, pearson, qq_points


class TestQQ:
    def test_sorted_pairs(self):
        points = qq_points([3.0, 1.0, 2.0], [30.0, 10.0, 20.0])
        assert points == [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]

    def test_identical_distributions_on_diagonal(self):
        data = [5.0, 1.0, 3.0]
        assert all(a == b for a, b in qq_points(data, list(reversed(data))))

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            qq_points([1.0], [1.0, 2.0])


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_noise_reduces_correlation(self):
        rng = np.random.default_rng(0)
        x = np.arange(100.0)
        y = x + rng.normal(0, 30, size=100)
        assert 0.4 < pearson(x, y) < 1.0

    def test_constant_series_rejected(self):
        with pytest.raises(ConfigurationError):
            pearson([1, 1, 1], [1, 2, 3])

    def test_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            pearson([1], [2])


class TestMAPE:
    def test_exact_fit_zero(self):
        assert mean_abs_pct_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert mean_abs_pct_error([10.0, 10.0], [11.0, 9.0]) == pytest.approx(0.1)

    def test_zero_observed_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_abs_pct_error([0.0, 1.0], [1.0, 1.0])
