"""Tests for the ASCII plotter."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.util.plot import ascii_plot


class TestPlot:
    def test_basic_structure(self):
        text = ascii_plot({"a": ([0, 1, 2], [0.0, 1.0, 2.0])}, width=20, height=6)
        lines = text.splitlines()
        assert any("*" in line for line in lines)
        assert "*=a" in lines[-1]
        assert "+--" in text

    def test_title(self):
        text = ascii_plot({"a": ([0, 1], [0, 1])}, title="My Plot")
        assert text.splitlines()[0] == "My Plot"

    def test_extremes_on_grid_edges(self):
        text = ascii_plot({"a": ([0, 10], [5.0, 50.0])}, width=20, height=6)
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("50")  # top y label
        assert "5" in lines[5]  # bottom label row

    def test_two_series_two_glyphs(self):
        text = ascii_plot(
            {"up": ([0, 1], [0, 1]), "down": ([0, 1], [1, 0])}, width=16, height=5
        )
        assert "*" in text and "o" in text
        assert "*=up" in text and "o=down" in text

    def test_infinite_values_skipped(self):
        text = ascii_plot({"a": ([0, 1, 2], [1.0, math.inf, 2.0])})
        assert "inf" not in text.splitlines()[0]

    def test_log_x(self):
        text = ascii_plot({"a": ([10, 100, 1000], [1, 2, 3])}, logx=True)
        assert "10" in text and "1e+03" in text

    def test_flat_series_ok(self):
        text = ascii_plot({"a": ([0, 1], [5.0, 5.0])})
        assert "5" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_plot({})
        with pytest.raises(ConfigurationError):
            ascii_plot({"a": ([1], [1, 2])})
        with pytest.raises(ConfigurationError):
            ascii_plot({"a": ([1], [1])}, width=4)
        with pytest.raises(ConfigurationError):
            ascii_plot({"a": ([1], [math.inf])})


class TestHeatmap:
    def test_basic(self):
        from repro.util.plot import ascii_heatmap

        text = ascii_heatmap([[1, 2], [3, 4]], ["r1", "r2"], ["c1", "c2"])
        assert "r1" in text and "c2" in text
        assert "scale:" in text

    def test_extremes_use_ramp_ends(self):
        from repro.util.plot import HEAT_RAMP, ascii_heatmap

        text = ascii_heatmap([[0.0, 100.0]], ["r"], ["lo", "hi"])
        assert HEAT_RAMP[-1] in text

    def test_inf_cells_labelled(self):
        import math

        from repro.util.plot import ascii_heatmap

        text = ascii_heatmap([[1.0, math.inf]], ["r"], ["a", "b"])
        assert "inf" in text

    def test_validation(self):
        import math

        import pytest as _pytest

        from repro.errors import ConfigurationError
        from repro.util.plot import ascii_heatmap

        with _pytest.raises(ConfigurationError):
            ascii_heatmap([], [], [])
        with _pytest.raises(ConfigurationError):
            ascii_heatmap([[1]], ["a", "b"], ["c"])
        with _pytest.raises(ConfigurationError):
            ascii_heatmap([[math.inf]], ["a"], ["c"])
