"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.simkit import Environment


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


def drive(env: Environment, generator):
    """Run a single generator process to completion; return its value."""
    process = env.process(generator)
    env.run(until=process)
    return process.value


@pytest.fixture
def run_process():
    """Fixture alias for :func:`drive`."""
    return drive
