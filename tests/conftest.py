"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.simkit import Environment

# Falsifying examples must be reproducible from a CI log alone:
# ``print_blob=True`` makes every hypothesis failure print an
# ``@reproduce_failure`` blob, the ``.hypothesis/examples`` database is
# uploaded as a CI artifact on failure, and the run header below echoes
# the ``--hypothesis-seed`` in effect.
settings.register_profile("repro", print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


def pytest_report_header(config):
    """Print the hypothesis derandomization seed for this run."""
    seed = getattr(config.option, "hypothesis_seed", None)
    shown = seed if seed is not None else "random (per test)"
    return (
        f"hypothesis: profile=repro, seed={shown} — rerun a failure "
        "deterministically with --hypothesis-seed=<seed from CI log> or "
        "the printed @reproduce_failure blob"
    )


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


def drive(env: Environment, generator):
    """Run a single generator process to completion; return its value."""
    process = env.process(generator)
    env.run(until=process)
    return process.value


@pytest.fixture
def run_process():
    """Fixture alias for :func:`drive`."""
    return drive
