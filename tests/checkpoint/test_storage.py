"""Tests for stable storage."""

import pytest

from repro.errors import CheckpointError, CorruptImageError, NoCheckpointError
from repro.checkpoint import StableStorage
from repro.simkit import Environment


class TestTimedIO:
    def test_write_charges_time(self, env, run_process):
        storage = StableStorage(env, write_bandwidth=1000.0, latency=0.5)

        def body():
            yield from storage.write("s1", "k", b"x" * 1000)

        run_process(env, body())
        assert env.now == pytest.approx(0.5 + 1.0)

    def test_read_charges_time(self, env, run_process):
        storage = StableStorage(env, read_bandwidth=500.0, latency=0.0)

        def body():
            yield from storage.write("s1", "k", b"y" * 500)
            storage.commit_set("s1")
            data = yield from storage.read("k")
            return data

        assert run_process(env, body()) == b"y" * 500

    def test_channel_contention_serialises(self, env):
        storage = StableStorage(env, write_bandwidth=100.0, latency=0.0, channels=1)
        finish_times = []

        def writer(key):
            yield from storage.write("s", key, b"z" * 100)
            finish_times.append(env.now)

        env.process(writer("a"))
        env.process(writer("b"))
        env.run()
        assert finish_times == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_parallel_channels(self, env):
        storage = StableStorage(env, write_bandwidth=100.0, latency=0.0, channels=2)
        finish_times = []

        def writer(key):
            yield from storage.write("s", key, b"z" * 100)
            finish_times.append(env.now)

        env.process(writer("a"))
        env.process(writer("b"))
        env.run()
        assert finish_times == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_bytes_accounting(self, env, run_process):
        storage = StableStorage(env)

        def body():
            yield from storage.write("s", "k", b"12345")

        run_process(env, body())
        assert storage.bytes_written == 5


class TestSetLifecycle:
    def _staged(self, env, run_process):
        storage = StableStorage(env)

        def body():
            yield from storage.write("set-a", "k1", b"one")
            yield from storage.write("set-a", "k2", b"two")

        run_process(env, body())
        return storage

    def test_commit_promotes(self, env, run_process):
        storage = self._staged(env, run_process)
        storage.commit_set("set-a")
        assert storage.committed_set == "set-a"
        assert storage.committed_keys() == ["k1", "k2"]

    def test_uncommitted_not_readable(self, env, run_process):
        storage = self._staged(env, run_process)
        with pytest.raises(NoCheckpointError):
            storage.peek("k1")

    def test_commit_unknown_set_rejected(self, env):
        storage = StableStorage(env)
        with pytest.raises(CheckpointError):
            storage.commit_set("ghost")

    def test_abort_discards(self, env, run_process):
        storage = self._staged(env, run_process)
        storage.abort_set("set-a")
        with pytest.raises(CheckpointError):
            storage.commit_set("set-a")

    def test_new_commit_replaces_old(self, env, run_process):
        storage = self._staged(env, run_process)
        storage.commit_set("set-a")

        def body():
            yield from storage.write("set-b", "k1", b"newer")

        run_process(env, body())
        storage.commit_set("set-b")
        assert storage.committed_keys() == ["k1"]
        assert storage.peek("k1").data == b"newer"

    def test_stage_untimed(self, env):
        storage = StableStorage(env)
        storage.stage_untimed("s", "k", b"fast")
        storage.commit_set("s")
        assert env.now == 0.0
        assert storage.peek("k").data == b"fast"


class TestIntegrity:
    def test_verify_passes_for_clean_blob(self, env):
        storage = StableStorage(env)
        storage.stage_untimed("s", "k", b"sound")
        storage.commit_set("s")
        storage.peek("k").verify()

    def test_corrupt_detected_on_read(self, env, run_process):
        storage = StableStorage(env)
        storage.stage_untimed("s", "k", b"will-break")
        storage.commit_set("s")
        storage.corrupt("k")

        def body():
            yield from storage.read("k")

        with pytest.raises(CorruptImageError):
            run_process(env, body())

    def test_read_missing_key(self, env, run_process):
        storage = StableStorage(env)

        def body():
            yield from storage.read("nothing")

        with pytest.raises(NoCheckpointError):
            run_process(env, body())

    def test_corrupt_empty_blob_rejected(self, env):
        storage = StableStorage(env)
        storage.stage_untimed("s", "k", b"")
        storage.commit_set("s")
        with pytest.raises(CheckpointError):
            storage.corrupt("k")
