"""Tests for process images."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as npst

from repro.checkpoint import capture_image, restore_image
from repro.checkpoint.image import image_from_bytes
from repro.errors import CorruptImageError


class TestRoundTrip:
    def test_dict_state(self):
        state = {"step": 3, "x": [1.0, 2.0], "name": "cg"}
        assert restore_image(capture_image(state)) == state

    def test_numpy_state_bit_exact(self):
        state = {"x": np.linspace(0, 1, 100), "r": np.random.default_rng(0).random(50)}
        restored = restore_image(capture_image(state))
        assert np.array_equal(restored["x"], state["x"])
        assert np.array_equal(restored["r"], state["r"])

    def test_nbytes(self):
        image = capture_image({"k": 1})
        assert image.nbytes == len(image.data) > 0

    def test_image_from_bytes_roundtrip(self):
        original = capture_image([1, 2, 3])
        rebuilt = image_from_bytes(original.data)
        assert restore_image(rebuilt) == [1, 2, 3]

    @given(
        npst.arrays(
            dtype=np.float64,
            shape=npst.array_shapes(max_dims=2, max_side=16),
            elements=st.floats(allow_nan=False, width=64),
        )
    )
    def test_arbitrary_arrays_roundtrip(self, array):
        restored = restore_image(capture_image({"a": array}))
        assert np.array_equal(restored["a"], array)


class TestIntegrity:
    def test_tampered_image_detected(self):
        image = capture_image({"secret": 42})
        damaged = image_from_bytes(image.data)
        tampered = type(image)(data=image.data + b"x", crc=image.crc)
        with pytest.raises(CorruptImageError):
            restore_image(tampered)
        # But a clean rebuild still restores.
        assert restore_image(damaged) == {"secret": 42}
