"""Tests for the coordinated checkpoint service and restart manager."""

import pytest

from repro.checkpoint import (
    CheckpointConfig,
    CheckpointService,
    RestartManager,
    StableStorage,
)
from repro.errors import ConfigurationError, NoCheckpointError
from repro.mpi import SimMPI
from repro.simkit import Environment
from repro.workloads import SyntheticWorkload, WorkShell


def run_with_service(size, steps, config, compute_seconds=0.05):
    env = Environment()
    world = SimMPI(env, size=size)
    storage = StableStorage(env)
    manager = RestartManager(storage)
    service = CheckpointService(world, storage, manager, config)
    states = {}

    def program(ctx):
        workload = SyntheticWorkload(
            total_steps=steps, compute_seconds=compute_seconds, message_bytes=256
        )
        import numpy as np

        workload.configure(ctx.rank, ctx.size, np.random.default_rng(0))
        shell = WorkShell(ctx, ctx.comm)
        for step in range(steps):
            yield from workload.step(shell, step)
            yield from service.at_step_boundary(ctx.comm, workload, step)
        states[ctx.rank] = workload.state()

    world.spawn(program)
    world.run()
    return env, world, storage, manager, service, states


class TestConfig:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(interval=0.0)

    def test_rejects_negative_fixed_cost(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(interval=1.0, fixed_cost=-1.0)

    def test_forked_excludes_fixed_cost(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(interval=1.0, fixed_cost=1.0, forked=True)


class TestCheckpointPath:
    def test_checkpoints_taken_at_interval(self):
        config = CheckpointConfig(interval=0.2, fixed_cost=0.01)
        env, _, _, manager, service, _ = run_with_service(2, 20, config)
        assert manager.commits >= 3
        assert service.checkpoints_taken == manager.commits

    def test_fixed_cost_charged(self):
        cheap = CheckpointConfig(interval=0.2, fixed_cost=0.0)
        costly = CheckpointConfig(interval=0.2, fixed_cost=0.5)
        env_cheap, *_ = run_with_service(2, 20, cheap)
        env_costly, *_ = run_with_service(2, 20, costly)
        assert env_costly.now > env_cheap.now

    def test_emergent_cost_from_storage(self):
        config = CheckpointConfig(interval=0.2)
        env, _, storage, manager, _, _ = run_with_service(2, 10, config)
        assert manager.commits >= 1
        assert storage.bytes_written > 0

    def test_recovery_line_matches_states(self):
        config = CheckpointConfig(interval=0.2, fixed_cost=0.0)
        _, _, _, manager, _, final_states = run_with_service(2, 20, config)
        line = manager.line
        assert 0 < line.step <= 20
        images = manager.peek_states([0, 1])
        for rank in (0, 1):
            assert images[rank]["step"] == line.step

    def test_no_checkpoint_before_interval(self):
        config = CheckpointConfig(interval=1e9, fixed_cost=0.0)
        _, _, _, manager, _, _ = run_with_service(2, 5, config)
        assert manager.commits == 0
        assert not manager.has_checkpoint
        with pytest.raises(NoCheckpointError):
            manager.line

    def test_bookmark_exchange_adds_traffic(self):
        plain = CheckpointConfig(interval=0.2, fixed_cost=0.0)
        with_bookmarks = CheckpointConfig(
            interval=0.2, fixed_cost=0.0, bookmark_exchange=True
        )
        _, world_plain, *_ = run_with_service(3, 10, plain)
        _, world_marked, *_ = run_with_service(3, 10, with_bookmarks)
        assert (
            world_marked.counters["p2p_messages"]
            > world_plain.counters["p2p_messages"]
        )

    def test_forked_mode_commits_after_background_write(self):
        config = CheckpointConfig(interval=0.2, forked=True, fork_cost=0.01)
        _, _, _, manager, _, _ = run_with_service(2, 15, config)
        assert manager.commits >= 1

    def test_forked_cheaper_than_synchronous(self):
        synchronous = CheckpointConfig(interval=0.2)
        forked = CheckpointConfig(interval=0.2, forked=True, fork_cost=0.0)
        env_sync, *_ = run_with_service(2, 15, synchronous, compute_seconds=0.05)
        env_forked, *_ = run_with_service(2, 15, forked, compute_seconds=0.05)
        assert env_forked.now <= env_sync.now


class TestRestartManager:
    def test_read_state_roundtrip(self, env, run_process):
        storage = StableStorage(env)
        manager = RestartManager(storage)
        storage.stage_untimed("s1", manager.key_for(0), _image_bytes({"step": 2}))
        manager.note_commit("s1", 2, now=1.0)

        def body():
            state = yield from manager.read_state(0)
            return state

        assert run_process(env, body()) == {"step": 2}

    def test_rollback_counter(self, env):
        manager = RestartManager(StableStorage(env))
        manager.note_rollback()
        manager.note_rollback()
        assert manager.rollbacks == 2

    def test_peek_states_bulk(self, env):
        storage = StableStorage(env)
        manager = RestartManager(storage)
        for rank in range(3):
            storage.stage_untimed(
                "s", manager.key_for(rank), _image_bytes({"rank": rank})
            )
        manager.note_commit("s", 1, now=0.0)
        states = manager.peek_states(range(3))
        assert states[2] == {"rank": 2}


def _image_bytes(state):
    from repro.checkpoint import capture_image

    return capture_image(state).data
