"""Tests for the bookmark coordinator."""

import pytest

from repro.checkpoint import BookmarkCoordinator
from repro.errors import ConfigurationError
from repro.mpi import SimMPI
from repro.simkit import Environment


class TestQuiesce:
    def test_quiet_world_returns_immediately(self, env):
        world = SimMPI(env, size=2)
        coordinator = BookmarkCoordinator(world)

        def program(ctx):
            if ctx.rank == 0:
                yield from coordinator.quiesce()
                return env.now
            yield ctx.compute(0.0)

        world.spawn(program)
        world.run()
        assert world.result_of(0) == 0.0
        assert coordinator.rounds_waited == 0

    def test_waits_for_in_flight_message(self, env):
        world = SimMPI(env, size=2)
        coordinator = BookmarkCoordinator(world, poll_interval=1e-7)

        def program(ctx):
            if ctx.rank == 0:
                request = ctx.comm.isend(b"x" * 100_000, dest=1)
                yield from request.wait()
                # Sender done, but the wire may still carry the message.
                yield from coordinator.quiesce()
                assert world.channels_quiet()
                return "quiet"
            payload, _ = yield from ctx.comm.recv(source=0)
            return len(payload)

        world.spawn(program)
        world.run()
        assert world.result_of(0) == "quiet"

    def test_rejects_bad_poll(self, env):
        world = SimMPI(env, size=1)
        with pytest.raises(ConfigurationError):
            BookmarkCoordinator(world, poll_interval=0.0)


class TestBookmarkExchange:
    def test_exchange_runs_alltoall(self, env):
        world = SimMPI(env, size=3)
        coordinator = BookmarkCoordinator(world)

        def program(ctx):
            totals = yield from coordinator.exchange_bookmarks(ctx.comm)
            return len(totals)

        world.spawn(program)
        before = world.counters["p2p_messages"]
        world.run()
        assert all(world.result_of(r) == 3 for r in range(3))
        assert world.counters["p2p_messages"] > before
