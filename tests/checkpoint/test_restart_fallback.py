"""Tests for the multi-line restore: CRC fallback across recovery sets."""

import pytest

from repro.checkpoint import RestartManager, StableStorage
from repro.checkpoint.image import capture_image
from repro.errors import NoCheckpointError
from repro.faults import ReadVerdict, StorageFaultConfig, StorageFaultModel

from .test_storage_chaos import ScriptedFaults

RANKS = (0, 1)


def commit_line(storage, manager, set_id, step, now=0.0):
    """Stage one image per rank (payload encodes the step) and commit."""
    for rank in RANKS:
        payload = {"step": step, "state": f"{set_id}-r{rank}"}
        storage.stage_untimed(set_id, RestartManager.key_for(rank), capture_image(payload).data)
    manager.note_commit(set_id, step, now)


def build_history(env, lines=3, keep_sets=3, faults=None):
    storage = StableStorage(env, faults=faults, keep_sets=keep_sets)
    manager = RestartManager(storage)
    for index in range(lines):
        commit_line(storage, manager, f"set{index}", step=10 * (index + 1))
    return storage, manager


class TestHappyPath:
    def test_restores_newest_line_at_depth_one(self, env):
        _, manager = build_history(env)
        line, images = manager.restore_states(RANKS)
        assert line.set_id == "set2"
        assert manager.last_rollback_depth == 1
        assert images[0]["state"] == "set2-r0"
        assert images[1]["state"] == "set2-r1"

    def test_retained_lines_newest_first(self, env):
        _, manager = build_history(env, lines=4, keep_sets=2)
        assert [line.set_id for line in manager.retained_lines()] == ["set3", "set2"]


class TestCorruptionFallback:
    def test_falls_back_one_line_on_corrupt_image(self, env):
        storage, manager = build_history(env)
        storage.corrupt(RestartManager.key_for(0), set_id="set2")
        line, images = manager.restore_states(RANKS)
        assert line.set_id == "set1"
        assert manager.last_rollback_depth == 2
        assert manager.max_rollback_depth == 2
        assert manager.corrupt_lines_skipped == 1
        assert images[1]["state"] == "set1-r1"
        # The recovery line rebinds so rework accounting sees the truth.
        assert manager.line.set_id == "set1"

    def test_falls_back_to_oldest_line(self, env):
        storage, manager = build_history(env)
        storage.corrupt(RestartManager.key_for(0), set_id="set2")
        storage.corrupt(RestartManager.key_for(1), set_id="set1")
        line, _ = manager.restore_states(RANKS)
        assert line.set_id == "set0"
        assert manager.last_rollback_depth == 3
        assert manager.corrupt_lines_skipped == 2

    def test_all_lines_bad_raises_for_cold_start(self, env):
        storage, manager = build_history(env)
        for set_id in ("set0", "set1", "set2"):
            storage.corrupt(RestartManager.key_for(0), set_id=set_id)
        with pytest.raises(NoCheckpointError):
            manager.restore_states(RANKS)
        assert manager.corrupt_lines_skipped == 3

    def test_depth_resets_per_restore(self, env):
        storage, manager = build_history(env)
        storage.corrupt(RestartManager.key_for(0), set_id="set2")
        manager.restore_states(RANKS)
        assert manager.last_rollback_depth == 2
        # A later commit heals the head; the next restore is depth 1
        # while max_rollback_depth remembers the worst case.
        commit_line(storage, manager, "set3", step=40)
        manager.restore_states(RANKS)
        assert manager.last_rollback_depth == 1
        assert manager.max_rollback_depth == 2


class TestUnreadableFallback:
    def test_injected_read_failure_condemns_the_line(self, env):
        faults = ScriptedFaults(reads=[ReadVerdict(fail=True)])
        _, manager = build_history(env, faults=faults)
        line, _ = manager.restore_states(RANKS)
        assert line.set_id == "set1"
        assert manager.unreadable_lines_skipped == 1
        assert manager.corrupt_lines_skipped == 0

    def test_trimmed_history_not_consulted(self, env):
        # keep_sets=2 retains only set2/set1; the manager's history still
        # remembers set0 but restore must not try the evicted set.
        storage, manager = build_history(env, lines=3, keep_sets=2)
        storage.corrupt(RestartManager.key_for(0), set_id="set2")
        storage.corrupt(RestartManager.key_for(0), set_id="set1")
        with pytest.raises(NoCheckpointError):
            manager.restore_states(RANKS)


class TestNoHistory:
    def test_no_commit_raises(self, env):
        storage = StableStorage(env)
        manager = RestartManager(storage)
        with pytest.raises(NoCheckpointError):
            manager.restore_states(RANKS)

    def test_zero_prob_model_never_blocks_restore(self, env):
        faults = StorageFaultModel(StorageFaultConfig())
        _, manager = build_history(env, faults=faults)
        line, _ = manager.restore_states(RANKS)
        assert line.set_id == "set2"
        assert manager.last_rollback_depth == 1
