"""Tests for incremental / compressed checkpointing variants."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.checkpoint.incremental import (
    IncrementalCheckpointer,
    compress_image,
    decompress_image,
)
from repro.errors import CheckpointError, ConfigurationError


class TestIncremental:
    def test_first_capture_is_full(self):
        inc = IncrementalCheckpointer()
        image = inc.capture({"a": 1})
        assert image.is_full

    def test_unchanged_state_yields_tiny_delta(self):
        inc = IncrementalCheckpointer(full_every=10)
        state = {"big": np.zeros(10_000), "step": 0}
        full = inc.capture(state)
        delta = inc.capture(state)
        assert not delta.is_full
        assert delta.nbytes < full.nbytes / 100

    def test_changed_key_captured(self):
        inc = IncrementalCheckpointer(full_every=10)
        inc.capture({"a": 1, "b": 2})
        inc.capture({"a": 1, "b": 3})
        assert inc.restore() == {"a": 1, "b": 3}

    def test_deleted_key_tombstoned(self):
        inc = IncrementalCheckpointer(full_every=10)
        inc.capture({"a": 1, "b": 2})
        inc.capture({"a": 1})
        assert inc.restore() == {"a": 1}

    def test_periodic_full_resets_chain(self):
        inc = IncrementalCheckpointer(full_every=2)
        inc.capture({"a": 0})
        inc.capture({"a": 1})
        image = inc.capture({"a": 2})
        assert image.is_full
        assert inc.chain_length == 1

    def test_restore_requires_full_base(self):
        inc = IncrementalCheckpointer(full_every=4)
        inc.capture({"a": 0})
        delta = inc.capture({"a": 1})
        with pytest.raises(CheckpointError):
            inc.restore([delta])

    def test_excluded_keys_not_persisted(self):
        inc = IncrementalCheckpointer(excluded={"scratch"})
        inc.capture({"a": 1, "scratch": np.zeros(1000)})
        assert inc.restore() == {"a": 1}

    def test_non_dict_state_rejected(self):
        with pytest.raises(CheckpointError):
            IncrementalCheckpointer().capture([1, 2])

    def test_bad_full_every(self):
        with pytest.raises(ConfigurationError):
            IncrementalCheckpointer(full_every=0)

    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from(["a", "b", "c", "d"]),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_restore_always_equals_last_state(self, states):
        inc = IncrementalCheckpointer(full_every=3)
        for state in states:
            inc.capture(state)
        assert inc.restore() == states[-1]


class TestCompression:
    def test_roundtrip(self):
        data = b"abc" * 10_000
        compressed, _cost = compress_image(data)
        assert decompress_image(compressed) == data

    def test_compressible_data_shrinks(self):
        data = b"\x00" * 100_000
        compressed, _ = compress_image(data)
        assert len(compressed) < len(data) / 10

    def test_cpu_cost_scales_with_input(self):
        _, small_cost = compress_image(b"x" * 1000, cpu_bytes_per_second=1000)
        _, big_cost = compress_image(b"x" * 2000, cpu_bytes_per_second=1000)
        assert big_cost == pytest.approx(2 * small_cost)

    def test_level_validation(self):
        with pytest.raises(ConfigurationError):
            compress_image(b"x", level=10)

    def test_cpu_rate_validation(self):
        with pytest.raises(ConfigurationError):
            compress_image(b"x", cpu_bytes_per_second=0)
