"""Tests for the chaos-hardened storage: versioned sets + injected faults."""

import pytest

from repro.checkpoint import StableStorage
from repro.errors import (
    ConfigurationError,
    CorruptImageError,
    NoCheckpointError,
    StorageReadError,
    StorageWriteError,
)
from repro.faults import ReadVerdict, StorageFaultConfig, StorageFaultModel, WriteVerdict


class ScriptedFaults(StorageFaultModel):
    """Fault model whose verdicts come from explicit scripts (FIFO)."""

    def __init__(self, writes=(), reads=()):
        # Any positive probability flips ``enabled``; verdicts below
        # never consult the RNG.
        super().__init__(StorageFaultConfig(write_fail_prob=1e-9))
        self.write_script = list(writes)
        self.read_script = list(reads)

    def on_write(self):
        return self.write_script.pop(0) if self.write_script else WriteVerdict()

    def on_read(self):
        return self.read_script.pop(0) if self.read_script else ReadVerdict()


class TestVersionedSets:
    def _commit(self, storage, set_id, payload):
        storage.stage_untimed(set_id, "k", payload)
        storage.commit_set(set_id)

    def test_retains_last_k_sets_newest_first(self, env):
        storage = StableStorage(env, keep_sets=2)
        for index in range(4):
            self._commit(storage, f"s{index}", b"data%d" % index)
        assert storage.committed_sets() == ["s3", "s2"]
        assert storage.committed_set == "s3"

    def test_trimmed_set_unreachable(self, env):
        storage = StableStorage(env, keep_sets=2)
        for index in range(3):
            self._commit(storage, f"s{index}", b"x")
        with pytest.raises(NoCheckpointError):
            storage.fetch("s0", "k")

    def test_fetch_reads_from_named_older_set(self, env):
        storage = StableStorage(env, keep_sets=3)
        self._commit(storage, "old", b"old-data")
        self._commit(storage, "new", b"new-data")
        assert storage.fetch("old", "k").data == b"old-data"
        assert storage.fetch("new", "k").data == b"new-data"
        assert storage.peek("k").data == b"new-data"

    def test_read_from_older_set_timed(self, env, run_process):
        storage = StableStorage(env, keep_sets=2)
        self._commit(storage, "old", b"old-data")
        self._commit(storage, "new", b"new-data")

        def body():
            return (yield from storage.read_from("old", "k"))

        assert run_process(env, body()) == b"old-data"

    def test_keep_sets_must_be_positive(self, env):
        with pytest.raises(ConfigurationError):
            StableStorage(env, keep_sets=0)

    def test_committed_keys_for_named_set(self, env):
        storage = StableStorage(env, keep_sets=2)
        storage.stage_untimed("a", "k1", b"1")
        storage.stage_untimed("a", "k2", b"2")
        storage.commit_set("a")
        self._commit(storage, "b", b"3")
        assert storage.committed_keys("a") == ["k1", "k2"]
        assert storage.committed_keys() == ["k"]


class TestFaultsActive:
    def test_no_model_is_inactive(self, env):
        assert not StableStorage(env).faults_active

    def test_all_zero_model_is_inactive(self, env):
        faults = StorageFaultModel(StorageFaultConfig())
        assert not StableStorage(env, faults=faults).faults_active

    def test_enabled_model_is_active(self, env):
        faults = StorageFaultModel(StorageFaultConfig(corrupt_prob=0.5))
        assert StableStorage(env, faults=faults).faults_active


class TestInjectedWriteFaults:
    def test_timed_write_failure_charges_time_first(self, env, run_process):
        faults = ScriptedFaults(writes=[WriteVerdict(fail=True)])
        storage = StableStorage(
            env, write_bandwidth=1000.0, latency=0.5, faults=faults
        )

        def body():
            yield from storage.write("s", "k", b"x" * 1000)

        with pytest.raises(StorageWriteError):
            run_process(env, body())
        # The failure surfaces at the end of the transfer, not before.
        assert env.now == pytest.approx(0.5 + 1.0)

    def test_failed_write_stages_nothing(self, env, run_process):
        faults = ScriptedFaults(writes=[WriteVerdict(fail=True)])
        storage = StableStorage(env, faults=faults)

        def body():
            yield from storage.write("s", "k", b"doomed")

        with pytest.raises(StorageWriteError):
            run_process(env, body())
        with pytest.raises(Exception):
            storage.commit_set("s")

    def test_untimed_stage_failure(self, env):
        faults = ScriptedFaults(writes=[WriteVerdict(fail=True)])
        storage = StableStorage(env, faults=faults)
        with pytest.raises(StorageWriteError):
            storage.stage_untimed("s", "k", b"doomed")

    def test_latency_spike_extends_write(self, env, run_process):
        faults = ScriptedFaults(writes=[WriteVerdict(extra_latency=2.0)])
        storage = StableStorage(
            env, write_bandwidth=1000.0, latency=0.5, faults=faults
        )

        def body():
            yield from storage.write("s", "k", b"x" * 1000)

        run_process(env, body())
        assert env.now == pytest.approx(0.5 + 1.0 + 2.0)

    def test_corrupt_write_keeps_pristine_crc(self, env, run_process):
        """At-rest rot: damaged payload, original digest — silent until read."""
        faults = StorageFaultModel(StorageFaultConfig(corrupt_prob=1.0, seed=1))
        storage = StableStorage(env, faults=faults)

        def body():
            yield from storage.write("s", "k", b"pristine-payload")

        run_process(env, body())
        storage.commit_set("s")
        blob = storage.peek("k")
        assert blob.data != b"pristine-payload"
        with pytest.raises(CorruptImageError):
            blob.verify()


class TestInjectedReadFaults:
    def _committed(self, env, faults):
        storage = StableStorage(env, faults=faults)
        storage.stage_untimed("s", "k", b"payload")
        storage.commit_set("s")
        return storage

    def test_timed_read_failure(self, env, run_process):
        faults = ScriptedFaults(reads=[ReadVerdict(fail=True)])
        storage = self._committed(env, faults)

        def body():
            yield from storage.read("k")

        with pytest.raises(StorageReadError):
            run_process(env, body())

    def test_fetch_applies_read_faults(self, env):
        faults = ScriptedFaults(reads=[ReadVerdict(fail=True), ReadVerdict()])
        storage = self._committed(env, faults)
        with pytest.raises(StorageReadError):
            storage.fetch("s", "k")
        assert storage.fetch("s", "k").data == b"payload"

    def test_peek_is_fault_free(self, env):
        faults = ScriptedFaults(reads=[ReadVerdict(fail=True)])
        storage = self._committed(env, faults)
        assert storage.peek("k").data == b"payload"
        # The scripted failure is still queued: peek never consulted it.
        assert faults.read_script

    def test_read_spike_extends_transfer(self, env, run_process):
        faults = ScriptedFaults(reads=[ReadVerdict(extra_latency=3.0)])
        storage = StableStorage(
            env, read_bandwidth=1000.0, latency=0.0, faults=faults
        )
        storage.stage_untimed("s", "k", b"y" * 1000)
        storage.commit_set("s")

        def body():
            return (yield from storage.read("k"))

        assert run_process(env, body()) == b"y" * 1000
        assert env.now == pytest.approx(1.0 + 3.0)
