"""Tests for checkpoint retry/skip under injected write failures."""

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointConfig,
    CheckpointService,
    RestartManager,
    StableStorage,
)
from repro.errors import ConfigurationError
from repro.mpi import SimMPI
from repro.simkit import Environment
from repro.workloads import SyntheticWorkload, WorkShell

from .test_storage_chaos import ScriptedFaults, WriteVerdict


def run_chaos_service(size, steps, config, faults=None, compute_seconds=0.05):
    """The test_service harness, with an optional fault model attached."""
    env = Environment()
    world = SimMPI(env, size=size)
    storage = StableStorage(env, faults=faults)
    manager = RestartManager(storage)
    service = CheckpointService(world, storage, manager, config)

    def program(ctx):
        workload = SyntheticWorkload(
            total_steps=steps, compute_seconds=compute_seconds, message_bytes=256
        )
        workload.configure(ctx.rank, ctx.size, np.random.default_rng(0))
        shell = WorkShell(ctx, ctx.comm)
        for step in range(steps):
            yield from workload.step(shell, step)
            yield from service.at_step_boundary(ctx.comm, workload, step)

    world.spawn(program)
    world.run()
    return env, storage, manager, service


def failing_writes(count):
    """A script that fails the first ``count`` writes, then succeeds."""
    return [WriteVerdict(fail=True)] * count


class TestConfigValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(interval=1.0, max_retries=-1)

    def test_backoff_cap_must_cover_initial(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(interval=1.0, retry_backoff=2.0, max_backoff=1.0)


class TestRetrySuccess:
    def test_transient_failure_retried_and_committed(self):
        config = CheckpointConfig(
            interval=0.2, fixed_cost=0.01, max_retries=2, retry_backoff=0.001
        )
        # One rank's first persist fails once; its retry succeeds.
        faults = ScriptedFaults(writes=failing_writes(1))
        env, _, manager, service = run_chaos_service(2, 20, config, faults)
        assert service.checkpoint_write_failures == 1
        assert service.checkpoint_retries == 1
        assert service.checkpoints_skipped == 0
        assert manager.commits == service.checkpoints_taken
        assert manager.commits >= 3

    def test_emergent_cost_path_retries_too(self):
        config = CheckpointConfig(interval=0.2, max_retries=2, retry_backoff=0.001)
        faults = ScriptedFaults(writes=failing_writes(1))
        env, storage, manager, service = run_chaos_service(2, 10, config, faults)
        assert service.checkpoint_retries == 1
        assert service.checkpoints_skipped == 0
        assert manager.commits >= 1


class TestRetryExhaustion:
    def test_exhausted_rank_skips_the_interval(self):
        config = CheckpointConfig(
            interval=0.2, fixed_cost=0.01, max_retries=1, retry_backoff=0.001
        )
        # Both ranks exhaust every attempt of the first interval:
        # 2 ranks x (1 + max_retries) attempts = 4 scripted failures.
        faults = ScriptedFaults(writes=failing_writes(4))
        env, storage, manager, service = run_chaos_service(2, 20, config, faults)
        assert service.checkpoints_skipped == 1
        assert service.checkpoint_write_failures == 4
        # Later intervals checkpoint normally; the job degrades gracefully.
        assert manager.commits >= 1
        assert service.checkpoints_taken == manager.commits
        # The abandoned set never became a recovery line.
        assert len(storage.committed_sets()) == min(manager.commits, storage.keep_sets)

    def test_single_exhausted_rank_condemns_the_set(self):
        config = CheckpointConfig(
            interval=0.2, fixed_cost=0.01, max_retries=0, retry_backoff=0.0
        )
        # Only one rank fails (once, with zero retries allowed) — the
        # collective verdict must still abandon the whole set.
        faults = ScriptedFaults(writes=failing_writes(1))
        _, _, manager, service = run_chaos_service(2, 20, config, faults)
        assert service.checkpoints_skipped == 1
        assert service.checkpoint_retries == 0
        assert manager.commits >= 1


class TestFaultFreeNoOp:
    def test_zero_prob_model_keeps_timeline_identical(self):
        """The acceptance criterion at the service level: an attached but
        all-zero fault model must not change the simulated clock at all."""
        config = CheckpointConfig(interval=0.2, fixed_cost=0.01)
        from repro.faults import StorageFaultConfig, StorageFaultModel

        plain_env, _, plain_manager, plain_service = run_chaos_service(
            2, 20, config, faults=None
        )
        chaos_env, _, chaos_manager, chaos_service = run_chaos_service(
            2, 20, config, faults=StorageFaultModel(StorageFaultConfig())
        )
        assert chaos_env.now == plain_env.now
        assert chaos_manager.commits == plain_manager.commits
        assert chaos_service.time_in_checkpoints == plain_service.time_in_checkpoints
