"""Chandy-Lamport snapshot consistency on a token-passing ring.

The classic validation: N ranks circulate tokens; a snapshot taken
mid-flight must satisfy conservation — tokens recorded in states plus
tokens recorded in channels equals the true total.
"""

import pytest

from repro.checkpoint.chandy_lamport import MARKER, ChandyLamport
from repro.errors import CoordinationError
from repro.mpi import SimMPI
from repro.simkit import Environment

TOTAL_TOKENS = 60
APP_TAG = 5


def run_ring_snapshot(size, rounds, initiate_at_round):
    """Token ring; rank 0 initiates a snapshot mid-run."""
    env = Environment()
    world = SimMPI(env, size=size)
    snapshots = {}

    def program(ctx):
        left = (ctx.rank - 1) % size
        right = (ctx.rank + 1) % size
        tokens = TOTAL_TOKENS // size
        snap = ChandyLamport(
            ctx.comm,
            app_tag=APP_TAG,
            in_channels=[left],
            out_channels=[right],
            get_state=lambda: tokens,
        )
        for round_index in range(rounds):
            if ctx.rank == 0 and round_index == initiate_at_round:
                yield from snap.initiate()
            # Pass one token right, receive one from the left.
            send_amount = 1 if tokens > 0 else 0
            tokens -= send_amount
            yield from snap.send(send_amount, right)
            received = yield from snap.recv(left)
            tokens += received
        # Finish the snapshot on quiet channels.
        yield from snap.drain(left)
        snapshots[ctx.rank] = (snap.recorded_state, snap.channel_messages, snap.complete)
        return tokens

    world.spawn(program)
    world.run()
    final_tokens = sum(world.result_of(r) for r in range(size))
    return snapshots, final_tokens


class TestConservation:
    @pytest.mark.parametrize("size", [2, 3, 4, 6])
    @pytest.mark.parametrize("initiate_at", [0, 2, 5])
    def test_snapshot_conserves_tokens(self, size, initiate_at):
        snapshots, final_total = run_ring_snapshot(
            size, rounds=8, initiate_at_round=initiate_at
        )
        assert final_total == TOTAL_TOKENS  # sanity: app conserves
        recorded = sum(state for state, _, _ in snapshots.values())
        in_flight = sum(
            sum(sum(msgs) for msgs in channels.values())
            for _, channels, _ in snapshots.values()
        )
        assert recorded + in_flight == TOTAL_TOKENS

    def test_every_rank_completes(self):
        snapshots, _ = run_ring_snapshot(4, rounds=6, initiate_at_round=1)
        assert all(complete for _, _, complete in snapshots.values())


class TestProtocolGuards:
    def test_marker_payload_rejected(self, env):
        world = SimMPI(env, size=2)
        errors = []

        def program(ctx):
            snap = ChandyLamport(
                ctx.comm, APP_TAG, in_channels=[1 - ctx.rank],
                out_channels=[1 - ctx.rank], get_state=lambda: 0,
            )
            if ctx.rank == 0:
                try:
                    yield from snap.send(MARKER, 1)
                except CoordinationError:
                    errors.append(ctx.rank)
            yield ctx.env.timeout(0)

        world.spawn(program)
        world.run()
        assert errors == [0]

    def test_recv_from_undeclared_channel_rejected(self, env):
        world = SimMPI(env, size=3)
        errors = []

        def program(ctx):
            snap = ChandyLamport(
                ctx.comm, APP_TAG, in_channels=[0], out_channels=[0],
                get_state=lambda: 0,
            )
            if ctx.rank == 1:
                try:
                    yield from snap.recv(2)
                except CoordinationError:
                    errors.append(1)
            yield ctx.env.timeout(0)

        world.spawn(program)
        world.run()
        assert errors == [1]
