"""Tests for the named deterministic RNG streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.rng import StreamRegistry, exponential_interarrivals


class TestStreamRegistry:
    def test_same_name_same_object(self):
        registry = StreamRegistry(seed=1)
        assert registry.stream("a") is registry.stream("a")

    def test_reproducible_across_registries(self):
        first = StreamRegistry(seed=9).stream("faults").random(8)
        second = StreamRegistry(seed=9).stream("faults").random(8)
        assert np.array_equal(first, second)

    def test_streams_independent_of_draw_order(self):
        registry_a = StreamRegistry(seed=5)
        registry_a.stream("x").random(100)  # consume from another stream
        value_a = registry_a.stream("y").random()
        registry_b = StreamRegistry(seed=5)
        value_b = registry_b.stream("y").random()
        assert value_a == value_b

    def test_different_names_differ(self):
        registry = StreamRegistry(seed=3)
        assert registry.stream("a").random() != registry.stream("b").random()

    def test_different_seeds_differ(self):
        a = StreamRegistry(seed=1).stream("s").random()
        b = StreamRegistry(seed=2).stream("s").random()
        assert a != b

    def test_fork_is_deterministic(self):
        one = StreamRegistry(seed=4).fork("child").stream("z").random()
        two = StreamRegistry(seed=4).fork("child").stream("z").random()
        assert one == two

    def test_fork_differs_from_parent(self):
        parent = StreamRegistry(seed=4)
        child = parent.fork("child")
        assert parent.stream("z").random() != child.stream("z").random()

    def test_names_lists_created_streams(self):
        registry = StreamRegistry(seed=0)
        registry.stream("b")
        registry.stream("a")
        assert list(registry.names()) == ["a", "b"]

    def test_rejects_non_int_seed(self):
        with pytest.raises(ConfigurationError):
            StreamRegistry(seed="nope")

    def test_seed_property(self):
        assert StreamRegistry(seed=11).seed == 11


class TestExponentialInterarrivals:
    def test_mean_is_respected(self):
        rng = StreamRegistry(seed=2).stream("t")
        draws = exponential_interarrivals(rng, mean=10.0, count=20000)
        assert draws.mean() == pytest.approx(10.0, rel=0.05)

    def test_all_positive(self):
        rng = StreamRegistry(seed=2).stream("t")
        assert (exponential_interarrivals(rng, 1.0, 1000) > 0).all()

    def test_count_zero(self):
        rng = StreamRegistry(seed=2).stream("t")
        assert len(exponential_interarrivals(rng, 1.0, 0)) == 0

    @given(st.floats(max_value=0, allow_nan=False))
    def test_rejects_nonpositive_mean(self, mean):
        rng = StreamRegistry(seed=2).stream("t")
        with pytest.raises(ConfigurationError):
            exponential_interarrivals(rng, mean, 1)

    def test_rejects_negative_count(self):
        rng = StreamRegistry(seed=2).stream("t")
        with pytest.raises(ConfigurationError):
            exponential_interarrivals(rng, 1.0, -1)
