"""Acceptance tests for the pure-model experiments (fast to run).

Each test asserts the *shape* criteria DESIGN.md defines for the
corresponding paper artifact — who wins, monotonicity, where
crossovers fall — not absolute numbers.
"""

import math

import pytest

from repro.experiments import run_experiment


class TestTable1:
    def test_implied_node_mtbfs_in_years_range(self):
        result = run_experiment("table1")
        implied = [row[3] for row in result.rows]
        # Most systems land in single-digit years (BG/L's optimistic
        # estimate is the documented outlier).
        assert sum(1 for value in implied if value < 40) >= 4


class TestTable2:
    def test_work_share_decays_with_scale(self):
        result = run_experiment("table2")
        assert result.findings["work_share_monotone_decreasing"]

    def test_100k_row_matches_paper_regime(self):
        result = run_experiment("table2")
        last_row = result.rows[-1]
        work_share = float(last_row[1].rstrip("%")) / 100.0
        assert 0.25 <= work_share <= 0.45  # paper: 35%

    def test_small_machine_mostly_working(self):
        result = run_experiment("table2")
        first_row = result.rows[0]
        assert float(first_row[1].rstrip("%")) >= 90.0


class TestTable3:
    def test_one_year_mtbf_work_vanishes(self):
        result = run_experiment("table3")
        assert result.findings["one_year_mtbf_work_share"] < 0.10

    def test_five_year_row_matches_table2(self):
        result = run_experiment("table3")
        assert result.findings["five_year_mtbf_work_share"] == pytest.approx(
            0.35, abs=0.10
        )


class TestFig2:
    def test_monotone_and_ordering(self):
        result = run_experiment("fig2")
        assert result.findings["monotone_at_integer_degrees"]
        assert result.findings["lower_mtbf_needs_more_redundancy"]

    def test_dual_redundancy_restores_reliability(self):
        result = run_experiment("fig2")
        # At 100k nodes / 5 y MTBF, r=1 survival is ~1e-127; r=2 lifts
        # it to a usable fraction — yet below 1, which is exactly why
        # the paper still checkpoints (Section 4.3).
        r2 = result.findings["r2_reliability_theta5"]
        assert 0.1 < r2 < 1.0
        r1 = result.rows[0][1]  # first row is r=1.0, first config column
        assert r2 > r1 * 1e50


class TestFigs4to6:
    def test_r2_minimises_all_configurations(self):
        result = run_experiment("figs4to6")
        for name in ("config1", "config2", "config3"):
            assert result.findings[f"{name}/r_at_min"] == 2.0

    def test_partial_steps_above_integers_are_worse(self):
        result = run_experiment("figs4to6")
        for row_125, row_100 in [(1, 0), (5, 4)]:  # 1.25 vs 1.0, 2.25 vs 2.0
            for column in (1, 2, 3):
                assert result.rows[row_125][column] > 0

    def test_daly_sqrt10_scaling(self):
        result = run_experiment("figs4to6")
        ratio = result.findings["delta_ratio_config1_over_config3"]
        assert 2.0 < ratio < 3.5  # "roughly magnified by sqrt(10)"

    def test_worse_mtbf_worse_times(self):
        result = run_experiment("figs4to6")
        t1 = result.findings["config1/T_r1_hours"]
        t2 = result.findings["config2/T_r1_hours"]
        assert t2 > t1  # config2 has theta=2.5y vs 5y


class TestFig11:
    def test_argmin_shifts_with_mtbf(self):
        result = run_experiment("fig11")
        minima = result.findings["argmin_degree_per_mtbf"]
        # Paper: 3x at 6h, 2x at 18-30h (12h sits on the boundary).
        assert minima["6h"] >= 2.5
        assert minima["18h"] == 2.0
        assert minima["24h"] == 2.0
        assert minima["30h"] == 2.0

    def test_higher_mtbf_faster_everywhere(self):
        result = run_experiment("fig11")
        first = [float(x) for x in result.rows[0][1:]]
        last = [float(x) for x in result.rows[-1][1:]]
        assert all(low <= high for low, high in zip(last, first))

    def test_r1_cell_magnitude_reasonable(self):
        result = run_experiment("fig11")
        # Paper's 6h/1x cell: 275 min measured, ~220 modeled here.
        six_hour_r1 = float(result.rows[0][1])
        assert 100 < six_hour_r1 < 500


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig13", samples=8)

    def test_crossover_ordering(self, result):
        c2 = result.findings["crossover_1x_to_2x_processes"]
        c3 = result.findings["crossover_1x_to_3x_processes"]
        assert c2 is not None and c3 is not None
        assert c2 < c3

    def test_crossover_bands_match_paper(self, result):
        c2 = result.findings["crossover_1x_to_2x_processes"]
        c3 = result.findings["crossover_1x_to_3x_processes"]
        # Paper: 4,351 and 12,551 — require the same decade.
        assert 1_000 <= c2 <= 20_000
        assert 5_000 <= c3 <= 50_000

    def test_partial_never_optimal(self, result):
        assert result.findings["partial_redundancy_never_optimal"]

    def test_small_scale_prefers_1x(self, result):
        first = result.rows[0]
        assert first[1] == min(first[1:])


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig14", samples=10)

    def test_throughput_break_even_band(self, result):
        point = result.findings["two_2x_jobs_fit_in_one_1x_job_at"]
        # Paper: 78,536 — require the same decade.
        assert 20_000 <= point <= 300_000

    def test_3x_takes_over_eventually(self, result):
        takeover = result.findings["3x_beats_2x_beyond"]
        assert takeover is not None
        assert takeover > 100_000  # paper: 771,251

    def test_1x_blowup_past_ten_thousands(self, result):
        blowup = result.findings["1x_blowup_processes"]
        assert blowup is None or blowup >= 30_000

    def test_2x_stays_flat(self, result):
        # Weak scaling: 2x's time at 200k procs is within 25% of small scale.
        first = float(result.rows[0][3])
        last = float(result.rows[-1][3])
        assert last < first * 1.4
