"""Tests for the experiment registry and result records."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

EXPECTED_IDS = {
    "table1", "table2", "table3", "table4", "table5",
    "fig2", "figs4to6", "fig11", "fig12", "fig13", "fig14",
    "chaos",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(list_experiments()) == EXPECTED_IDS

    def test_get_experiment_imports_module(self):
        module = get_experiment("table2")
        assert callable(module.run)

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("table99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("table1")
        assert isinstance(result, ExperimentResult)
        assert result.experiment == "table1"


class TestResultRendering:
    def test_render_contains_all_parts(self):
        result = ExperimentResult(
            experiment="x",
            title="A Title",
            headers=["h1"],
            rows=[[1.0]],
            notes=["a note"],
            findings={"key": 7},
        )
        text = result.render()
        assert "A Title" in text
        assert "h1" in text
        assert "key: 7" in text
        assert "note: a note" in text

    def test_render_without_extras(self):
        result = ExperimentResult("x", "T", ["h"], [[1]])
        assert "note" not in result.render()
