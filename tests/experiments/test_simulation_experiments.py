"""Smoke tests for the simulation-backed experiments at tiny scale.

The full campaigns live in ``benchmarks/``; these tests run
miniaturised grids so the simulation experiment plumbing (scaling,
pivoting, findings, plots) stays covered by the fast suite.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.table4 import ScaledSetup


@pytest.fixture(scope="module")
def tiny_setup():
    return ScaledSetup(
        virtual_processes=4,
        steps=30,
        compute_seconds=0.03,
        message_bytes=32 * 1024,
        expected_base_time=1.2,
    )


class TestTable4Tiny:
    @pytest.fixture(scope="class")
    def result(self, tiny_setup):
        return run_experiment(
            "table4",
            setup=tiny_setup,
            mtbf_hours=(6.0, 30.0),
            degrees=(1.0, 2.0, 3.0),
        )

    def test_grid_shape(self, result):
        assert len(result.rows) == 2
        assert result.headers == ["MTBF", "1.0x", "2.0x", "3.0x"]

    def test_cells_are_positive_minutes(self, result):
        for row in result.rows:
            for cell in row[1:]:
                assert float(cell) > 0

    def test_findings_present(self, result):
        assert set(result.findings["argmin_degree_per_mtbf"]) == {"6h", "30h"}

    def test_plot_attached(self, result):
        assert "Fig. 8" in result.plot and "Fig. 9" in result.plot

    def test_redundancy_beats_plain_at_6h(self, result):
        row = result.rows[0]
        assert min(float(row[2]), float(row[3])) < float(row[1])


class TestTable5Tiny:
    @pytest.fixture(scope="class")
    def result(self, tiny_setup):
        return run_experiment(
            "table5", setup=tiny_setup, degrees=(1.0, 1.25, 2.0, 3.0)
        )

    def test_two_series(self, result):
        assert [row[0] for row in result.rows] == ["observed", "expected linear"]

    def test_observed_monotone(self, result):
        observed = [float(x) for x in result.rows[0][1:]]
        assert observed == sorted(observed)

    def test_first_jump_positive(self, result):
        assert result.findings["first_step_relative_jump"] > 0


class TestFig12Tiny:
    def test_fit_statistics_produced(self, tiny_setup):
        result = run_experiment(
            "fig12",
            setup=tiny_setup,
            mtbf_hours=(6.0, 30.0),
            degrees=(1.0, 2.0, 3.0),
        )
        assert -1.0 <= result.findings["pearson_correlation"] <= 1.0
        assert result.findings["mean_abs_pct_error"] >= 0.0
        assert len(result.rows) == 6


class TestQuickMode:
    def test_table4_quick_flag(self, tiny_setup):
        result = run_experiment("table4", setup=tiny_setup, quick=True)
        assert len(result.rows) == 3  # 3 MTBFs
        assert len(result.rows[0]) == 6  # label + 5 degrees
